"""Packaging shim (kept ``setup.py``-based for environments without the
``wheel``/``build`` packages — offline editable installs still work).

The console scripts are the two CLI entry points: ``repro-spatch`` (apply
patches, locally or via ``--server``) and ``repro-spatchd`` (the
persistent patch-application daemon).  Source checkouts need no install:
the repository ``conftest.py`` puts ``src/`` on ``sys.path`` and the
module forms ``python -m repro.cli.spatch`` / ``python -m
repro.cli.spatchd`` are equivalent to the scripts.
"""
import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="repro-spatch",
    version=_VERSION,
    description="Semantic patching for HPC refactorings "
                "(a reproduction of Martone & Lawall, IPPS 2025)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # stdlib-only by design; `watchdog` is feature-detected at runtime and
    # never required (see repro/server/watch.py)
    install_requires=[],
    extras_require={"watch": ["watchdog"]},
    entry_points={
        "console_scripts": [
            "repro-spatch = repro.cli.spatch:main",
            "repro-spatchd = repro.cli.spatchd:main",
        ],
    },
)
