"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. running ``pytest`` straight from a fresh checkout in an offline
environment where ``pip install -e .`` is not possible).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
