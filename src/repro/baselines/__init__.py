"""Textual / line-oriented baseline tools the paper contrasts with."""

from .textual import (
    BaselineResult, HipifyTextual, AccToOmpTextual, SedReroll, TextualTool,
)

__all__ = ["BaselineResult", "HipifyTextual", "AccToOmpTextual", "SedReroll",
           "TextualTool"]
