"""Line/regex-oriented baseline tools.

The paper repeatedly contrasts AST/CFG-level matching with the text-oriented
tools commonly used for the same tasks:

* ``hipify-perl`` — "exactly how hipify-perl does it, albeit without using an
  AST" — token-to-token CUDA→HIP replacement with per-line regular
  expressions (:class:`HipifyTextual`),
* Intel's OpenACC→OpenMP migration script — "the script provided by Intel
  lacks a proper parser or AST representation"; in particular the paper notes
  Coccinelle "does not break on line continuations, as an ad-hoc line-oriented
  script may do" (:class:`AccToOmpTextual`),
* ad-hoc sed-style scripts for structural edits such as removing manual
  unrolling (:class:`SedReroll`), which cannot check that the deleted
  statements really are copies of the first one.

These baselines are intentionally competent — they do what a careful shell
script would do — so that the robustness experiment (Q2) measures the failure
modes inherent to text-level matching (content inside strings, constructs
split across physical lines, context-dependent edits), not strawman bugs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..api import CodeBase
from ..cookbook.cuda_hip import CONSTANT_MAP, FUNCTION_MAP, HEADER_MAP, TYPE_MAP
from ..cookbook.openacc_openmp import CLAUSE_MAP, DIRECTIVE_MAP


@dataclass
class BaselineResult:
    """Outcome of running a textual baseline over a code base."""

    codebase: CodeBase
    replacements: int = 0
    notes: list[str] = field(default_factory=list)

    def text(self, name: str) -> str:
        return self.codebase[name]


class TextualTool:
    """Base class: apply a per-file textual transformation."""

    name = "textual"

    def transform_text(self, text: str) -> tuple[str, int]:  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, codebase: CodeBase) -> BaselineResult:
        out: dict[str, str] = {}
        total = 0
        for name, text in codebase.items():
            new_text, count = self.transform_text(text)
            out[name] = new_text
            total += count
        return BaselineResult(codebase=CodeBase.from_files(out), replacements=total)


# ---------------------------------------------------------------------------
# reference exact search/replace (the frontend differential oracle)
# ---------------------------------------------------------------------------

class ReferencePatcher(TextualTool):
    """Exact-string search/replace, the way ``str.replace`` or a dumb shell
    loop would do it: each ``(search, replacement)`` pair rewrites the first
    exact occurrence, in order, over the evolving text.

    This is the differential oracle for the machine-patch frontends
    (:mod:`repro.frontends`): on a well-formed corpus — every snippet
    present verbatim and unambiguous — the frontend engine must produce
    byte-identical output to this tool; on a *reformatted* corpus the
    oracle goes blind (exact match fails) while the frontends' resilient
    locator still applies, which is precisely the robustness delta the
    tests measure.
    """

    name = "reference-patcher"

    def __init__(self, pairs: list[tuple[str, str]]):
        self.pairs = list(pairs)

    def transform_text(self, text: str) -> tuple[str, int]:
        count = 0
        for search, replacement in self.pairs:
            if search in text:
                text = text.replace(search, replacement, 1)
                count += 1
        return text, count


# ---------------------------------------------------------------------------
# hipify-perl-like CUDA -> HIP
# ---------------------------------------------------------------------------

class HipifyTextual(TextualTool):
    """Word-boundary regex replacement of CUDA identifiers plus a single-line
    kernel-launch rewrite, the way ``hipify-perl`` operates."""

    name = "hipify-textual"

    #: single-line triple-chevron launch
    _LAUNCH_RE = re.compile(
        r"(?P<kernel>[A-Za-z_]\w*)\s*<<<\s*(?P<config>[^>]*?)\s*>>>\s*\((?P<args>[^;]*)\)")

    def __init__(self, function_map: dict[str, str] | None = None,
                 type_map: dict[str, str] | None = None,
                 header_map: dict[str, str] | None = None):
        table: dict[str, str] = {}
        table.update(FUNCTION_MAP if function_map is None else function_map)
        table.update(TYPE_MAP if type_map is None else type_map)
        table.update(CONSTANT_MAP)
        self.table = table
        self.header_map = HEADER_MAP if header_map is None else header_map
        names = sorted(self.table, key=len, reverse=True)
        self._word_re = re.compile(r"\b(" + "|".join(re.escape(n) for n in names) + r")\b")

    def transform_text(self, text: str) -> tuple[str, int]:
        count = 0
        out_lines: list[str] = []
        for line in text.splitlines(keepends=True):
            # headers
            for cuda_header, hip_header in self.header_map.items():
                if f"<{cuda_header}>" in line:
                    line = line.replace(f"<{cuda_header}>", f"<{hip_header}>")
                    count += 1
            # identifier table — applied everywhere on the line, including
            # comments and string literals (the textual tool cannot tell)
            line, n = self._word_re.subn(lambda m: self.table[m.group(1)], line)
            count += n
            # kernel launches: only when the whole construct sits on one line
            match = self._LAUNCH_RE.search(line)
            if match:
                replacement = (f"hipLaunchKernelGGL({match.group('kernel')}, "
                               f"{match.group('config')}, {match.group('args')})")
                line = line[:match.start()] + replacement + line[match.end():]
                count += 1
            out_lines.append(line)
        return "".join(out_lines), count


# ---------------------------------------------------------------------------
# Intel-script-like OpenACC -> OpenMP
# ---------------------------------------------------------------------------

class AccToOmpTextual(TextualTool):
    """Line-oriented OpenACC→OpenMP directive rewriting.

    Operates strictly per physical line (like a shell/awk script): a
    ``#pragma acc`` line is translated using the same directive/clause tables
    as the semantic patch, but clauses moved to a continuation line are never
    seen, and the dangling continuation line survives untranslated.
    """

    name = "acc2omp-textual"

    def __init__(self, directive_map: dict[str, str] | None = None,
                 clause_map: dict[str, str] | None = None):
        self.directive_map = DIRECTIVE_MAP if directive_map is None else directive_map
        self.clause_map = CLAUSE_MAP if clause_map is None else clause_map

    def _translate_clauses(self, text: str) -> str:
        clause_re = re.compile(r"([a-z_]+)\s*\(([^)]*)\)|([a-z_]+)")
        pieces: list[str] = []
        pos = 0
        directive_done = False
        remaining = text.strip()
        # directive words first (two-word, then one-word)
        for key in sorted(self.directive_map, key=lambda k: -len(k.split())):
            if remaining.startswith(key):
                pieces.append(self.directive_map[key])
                remaining = remaining[len(key):].strip()
                directive_done = True
                break
        if not directive_done:
            pieces.append("target")
        for m in clause_re.finditer(remaining):
            if m.group(1):
                template = self.clause_map.get(m.group(1))
                if template is None:
                    pieces.append(m.group(0))
                elif template:
                    pieces.append(template.format(args=m.group(2)))
            elif m.group(3):
                template = self.clause_map.get(m.group(3))
                if template is None:
                    pieces.append(m.group(3))
                elif template:
                    pieces.append(template)
        return " ".join(p for p in pieces if p)

    def transform_text(self, text: str) -> tuple[str, int]:
        count = 0
        out_lines: list[str] = []
        for line in text.splitlines(keepends=True):
            stripped = line.lstrip()
            if stripped.startswith("#pragma acc"):
                indent = line[: len(line) - len(stripped)]
                body = stripped[len("#pragma acc"):]
                newline = "\n" if line.endswith("\n") else ""
                trailing_continuation = body.rstrip().endswith("\\")
                body = body.rstrip().rstrip("\\").strip()
                translated = self._translate_clauses(body)
                suffix = " \\" if trailing_continuation else ""
                out_lines.append(f"{indent}#pragma omp {translated}{suffix}{newline}")
                count += 1
            else:
                out_lines.append(line)
        return "".join(out_lines), count


# ---------------------------------------------------------------------------
# sed-style unroll removal
# ---------------------------------------------------------------------------

class SedReroll(TextualTool):
    """Remove manual 4× unrolling with regular expressions only.

    The script mirrors what an ad-hoc sed/awk pass would do: inside every
    ``for`` loop advancing by 4, drop the statements indexing ``i+1``/``i+2``/
    ``i+3``, rewrite the header, and prepend ``#pragma omp unroll``.  Because
    it cannot check that the dropped statements are copies of the kept one,
    it silently changes the behaviour of loops that merely *look* unrolled
    (the impostors in :mod:`repro.workloads.unrolled`).
    """

    name = "sed-reroll"

    _HEADER_RE = re.compile(
        r"for\s*\(\s*(?P<decl>[^;]*?)\s*;\s*(?P<ivar>\w+)\s*\+\s*(?P<k>\d+)\s*-\s*1\s*<"
        r"\s*(?P<bound>\w+)\s*;\s*(?P=ivar)\s*\+=\s*(?P=k)\s*\)")

    def __init__(self, factor: int = 4, add_pragma: bool = True):
        self.factor = factor
        self.add_pragma = add_pragma

    def transform_text(self, text: str) -> tuple[str, int]:
        count = 0
        out_lines: list[str] = []
        lines = text.splitlines(keepends=True)
        active_ivar: str | None = None
        for line in lines:
            header = self._HEADER_RE.search(line)
            if header and int(header.group("k")) == self.factor:
                indent = line[: len(line) - len(line.lstrip())]
                ivar = header.group("ivar")
                new_header = (f"for ({header.group('decl')}; {ivar} < "
                              f"{header.group('bound')}; ++{ivar})")
                newline = "\n" if line.endswith("\n") else ""
                if self.add_pragma:
                    out_lines.append(f"{indent}#pragma omp unroll partial({self.factor}){newline}")
                out_lines.append(line[:header.start()] + new_header + line[header.end():])
                active_ivar = ivar
                count += 1
                continue
            if active_ivar is not None:
                if re.search(rf"\b{re.escape(active_ivar)}\s*\+\s*[1-9]\b", line):
                    count += 1
                    continue  # drop the line entirely
                if line.strip().startswith("}"):
                    active_ivar = None
            out_lines.append(line)
        return "".join(out_lines), count
