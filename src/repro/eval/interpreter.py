"""A mini C interpreter over :mod:`repro.lang` ASTs.

Its purpose is semantics-preservation checking: the paper argues that
semantic-patch-driven refactorings (AoS→SoA, unroll removal, instrumentation)
keep the original behaviour, and the benchmarks verify that claim by running
the original and the transformed workload on this interpreter and comparing
observable results.

Supported subset (enough for every synthetic workload):

* functions, parameters (scalars and pointer/array parameters, passed by
  reference as Python lists),
* declarations with initialisers, multi-dimensional arrays, structs,
* ``if``/``for``/``while``/``do``/``break``/``continue``/``return``,
* arithmetic / comparison / logical / bit operators, compound assignment,
  increment/decrement, ternary, casts, ``sizeof`` (constant 8),
* simple object-like ``#define`` constants,
* a handful of builtins: ``sqrt``, ``fabs``, ``cos``, ``sin``, ``exp``,
  ``printf`` (output captured), ``malloc``/``free``,
  ``omp_get_thread_num``/``omp_get_num_threads``.

Pragmas are ignored (sequential execution), function calls introduced by
instrumentation (``LIKWID_MARKER_*``) are counted, and unknown statements
raise :class:`~repro.errors.InterpreterError`.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Optional

from ..api import CodeBase
from ..errors import InterpreterError
from ..lang import ast_nodes as A
from ..lang.parser import ParseTree, parse_source
from ..options import SpatchOptions, DEFAULT_OPTIONS
from .values import (
    BreakSignal, ContinueSignal, LValue, ReturnSignal, Scope, StructValue,
    binary_op, default_value, make_array, truthy,
)


_DEFINE_RE = re.compile(r"#\s*define\s+(\w+)\s+(.+)$")


@dataclass
class CallRecord:
    """One recorded call to a marker/instrumentation function."""

    name: str
    args: tuple[Any, ...] = ()


class Interpreter:
    """Interpret the functions of one code base."""

    #: calls recorded rather than executed (instrumentation markers)
    RECORDED_CALLS = ("LIKWID_MARKER_START", "LIKWID_MARKER_STOP",
                      "LIKWID_MARKER_INIT", "LIKWID_MARKER_CLOSE",
                      "SCOREP_USER_REGION_BY_NAME_BEGIN", "SCOREP_USER_REGION_BY_NAME_END",
                      "CALI_MARK_BEGIN", "CALI_MARK_END")

    def __init__(self, codebase: "CodeBase | dict[str, str] | str",
                 options: SpatchOptions = DEFAULT_OPTIONS,
                 defines: Optional[dict[str, Any]] = None,
                 max_steps: int = 5_000_000):
        if isinstance(codebase, str):
            files = {"<input.c>": codebase}
        elif isinstance(codebase, CodeBase):
            files = dict(codebase.files)
        else:
            files = dict(codebase)
        self.options = options
        self.max_steps = max_steps
        self.steps = 0
        self.output: list[str] = []
        self.marker_calls: list[CallRecord] = []

        self.trees: dict[str, ParseTree] = {
            name: parse_source(text, name=name, options=options)
            for name, text in files.items()
        }
        self.defines: dict[str, Any] = dict(defines or {})
        self.functions: dict[str, A.FunctionDef] = {}
        self.struct_defs: dict[str, dict[str, tuple[str, list[int]]]] = {}
        self.globals = Scope()
        self._collect_defines()
        self._collect_structs()
        self._collect_functions()
        self._allocate_globals()

    # ------------------------------------------------------------------ setup --

    def _collect_defines(self) -> None:
        for tree in self.trees.values():
            for node in tree.unit.decls:
                if isinstance(node, A.DefineDirective):
                    match = _DEFINE_RE.match(node.raw.replace("# ", "#"))
                    if not match:
                        continue
                    name, value = match.group(1), match.group(2).strip()
                    if name in self.defines:
                        continue
                    try:
                        self.defines[name] = int(value, 0)
                    except ValueError:
                        try:
                            self.defines[name] = float(value)
                        except ValueError:
                            pass  # function-like or non-numeric macro: ignored

    def _collect_structs(self) -> None:
        for tree in self.trees.values():
            for node in tree.unit.decls:
                if isinstance(node, A.StructDef) and node.keyword in ("struct", "union"):
                    fields: dict[str, tuple[str, list[int]]] = {}
                    for member in node.members:
                        mtype = member.type.text if member.type else "double"
                        for d in member.declarators:
                            dims = [self._const_dim(a, tree) for a in d.arrays]
                            fields[d.name] = (mtype, dims)
                    name = node.name or node.typedef_name
                    self.struct_defs[name] = fields
                    if node.typedef_name:
                        self.struct_defs[node.typedef_name] = fields

    def _const_dim(self, expr: Optional[A.Expr], tree: ParseTree) -> int:
        if expr is None:
            return 0
        value = self._eval_const(expr)
        if value is None:
            raise InterpreterError(
                f"array dimension {tree.node_text(expr)!r} is not a constant")
        return int(value)

    def _eval_const(self, expr: A.Expr) -> Optional[float]:
        if isinstance(expr, A.Literal) and expr.category in ("int", "float"):
            return float(expr.value.rstrip("uUlLfF") or 0)
        if isinstance(expr, A.Ident):
            return self.defines.get(expr.name)
        if isinstance(expr, A.BinaryOp):
            left = self._eval_const(expr.left)
            right = self._eval_const(expr.right)
            if left is None or right is None:
                return None
            return binary_op(expr.op, left, right)
        if isinstance(expr, A.Paren):
            return self._eval_const(expr.expr)
        return None

    def _collect_functions(self) -> None:
        for tree in self.trees.values():
            for node in tree.unit.decls:
                if isinstance(node, A.FunctionDef) and node.body is not None:
                    self.functions[node.name] = node

    def _allocate_globals(self) -> None:
        for tree in self.trees.values():
            for node in tree.unit.decls:
                if not isinstance(node, A.Declaration) or node.is_typedef:
                    continue
                if "extern" in node.specifiers and node.declarators and \
                        all(d.init is None for d in node.declarators):
                    # extern declarations only introduce names; the defining
                    # declaration allocates (or we allocate lazily if absent)
                    pass
                type_text = node.type.text if node.type else "double"
                for d in node.declarators:
                    if not d.name or self.globals.has(d.name):
                        continue
                    dims = [self._const_dim(a, tree) if a is not None else 0
                            for a in d.arrays]
                    self.globals.declare(d.name, self._make_object(type_text, dims, d.init))

    def _make_object(self, type_text: str, dims: list[int], init: Optional[A.Expr]) -> Any:
        struct = self._struct_of(type_text)
        if dims and any(dims):
            if struct is not None:
                return [self._new_struct(struct) for _ in range(dims[0])] if len(dims) == 1 \
                    else make_array(dims, 0.0)
            return make_array(dims, default_value(type_text))
        if struct is not None:
            return self._new_struct(struct)
        if init is not None:
            return None  # caller evaluates
        return default_value(type_text)

    def _struct_of(self, type_text: str) -> Optional[str]:
        words = type_text.split()
        if "struct" in words:
            idx = words.index("struct")
            if idx + 1 < len(words):
                return words[idx + 1]
        for word in words:
            if word in self.struct_defs:
                return word
        return None

    def _new_struct(self, struct_name: str) -> StructValue:
        fields = {}
        for fname, (ftype, dims) in self.struct_defs.get(struct_name, {}).items():
            if dims and any(dims):
                fields[fname] = make_array(dims, default_value(ftype))
            else:
                fields[fname] = default_value(ftype)
        return StructValue(struct_name=struct_name, fields=fields)

    # ------------------------------------------------------------------ public --

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def function_names(self) -> list[str]:
        return sorted(self.functions)

    def set_global(self, name: str, value: Any) -> None:
        self.globals.declare(name, value)

    def get_global(self, name: str) -> Any:
        return self.globals.lookup(name)

    def call(self, name: str, *args: Any) -> Any:
        """Call a function defined in the code base with Python values."""
        if name not in self.functions:
            raise InterpreterError(f"no function named {name!r}")
        fn = self.functions[name]
        scope = self.globals.child()
        params = [p for p in (fn.params.params if fn.params else [])
                  if isinstance(p, A.Param) and p.name]
        if len(args) != len(params):
            raise InterpreterError(
                f"{name} expects {len(params)} argument(s), got {len(args)}")
        for param, value in zip(params, args):
            scope.declare(param.name, value)
        try:
            self._exec_stmt(fn.body, scope)
        except ReturnSignal as ret:
            return ret.value
        return None

    # ------------------------------------------------------------------ statements --

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpreterError(f"execution exceeded {self.max_steps} steps")

    def _exec_stmt(self, stmt: A.Node, scope: Scope) -> None:
        self._tick()
        if isinstance(stmt, A.CompoundStmt):
            inner = scope.child()
            for child in stmt.stmts:
                self._exec_stmt(child, inner)
        elif isinstance(stmt, A.ExprStmt):
            self._eval(stmt.expr, scope)
        elif isinstance(stmt, A.DeclStmt):
            self._exec_declaration(stmt.decl, scope)
        elif isinstance(stmt, A.Declaration):
            self._exec_declaration(stmt, scope)
        elif isinstance(stmt, A.IfStmt):
            if truthy(self._eval(stmt.cond, scope)):
                self._exec_stmt(stmt.then, scope)
            elif stmt.orelse is not None:
                self._exec_stmt(stmt.orelse, scope)
        elif isinstance(stmt, A.ForStmt):
            self._exec_for(stmt, scope)
        elif isinstance(stmt, A.RangeForStmt):
            self._exec_range_for(stmt, scope)
        elif isinstance(stmt, A.WhileStmt):
            while truthy(self._eval(stmt.cond, scope)):
                self._tick()
                try:
                    self._exec_stmt(stmt.body, scope)
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue
        elif isinstance(stmt, A.DoWhileStmt):
            while True:
                self._tick()
                try:
                    self._exec_stmt(stmt.body, scope)
                except BreakSignal:
                    break
                except ContinueSignal:
                    pass
                if not truthy(self._eval(stmt.cond, scope)):
                    break
        elif isinstance(stmt, A.ReturnStmt):
            raise ReturnSignal(self._eval(stmt.value, scope) if stmt.value is not None else None)
        elif isinstance(stmt, A.BreakStmt):
            raise BreakSignal()
        elif isinstance(stmt, A.ContinueStmt):
            raise ContinueSignal()
        elif isinstance(stmt, (A.PragmaDirective, A.IncludeDirective, A.DefineDirective,
                               A.OtherDirective, A.EmptyStmt)):
            return
        elif isinstance(stmt, A.RawStmt):
            raise InterpreterError(f"cannot interpret statement: {stmt.text[:60]!r}")
        else:
            raise InterpreterError(f"unsupported statement kind {stmt.kind}")

    def _exec_declaration(self, decl: A.Declaration, scope: Scope) -> None:
        type_text = decl.type.text if decl.type else "double"
        for d in decl.declarators:
            if not d.name:
                continue
            dims = []
            for a in d.arrays:
                dims.append(0 if a is None else int(self._eval(a, scope)))
            if d.init is not None and not dims:
                value = self._eval(d.init, scope)
                if "int" in type_text and isinstance(value, float):
                    value = int(value)
                scope.declare(d.name, value)
            elif d.init is not None and dims:
                if isinstance(d.init, A.InitList):
                    items = [self._eval(i, scope) for i in d.init.items]
                    items += [default_value(type_text)] * (dims[0] - len(items))
                    scope.declare(d.name, items[: dims[0]] if dims[0] else items)
                else:
                    scope.declare(d.name, make_array(dims, default_value(type_text)))
            else:
                scope.declare(d.name, self._make_object(type_text, dims, None)
                              if (dims and any(dims)) or self._struct_of(type_text)
                              else default_value(type_text))

    def _exec_for(self, stmt: A.ForStmt, scope: Scope) -> None:
        loop_scope = scope.child()
        if stmt.init is not None:
            self._exec_stmt(stmt.init, loop_scope) if isinstance(stmt.init, (A.DeclStmt, A.ExprStmt)) \
                else self._eval(stmt.init, loop_scope)
        while True:
            self._tick()
            if stmt.cond is not None and not truthy(self._eval(stmt.cond, loop_scope)):
                break
            try:
                if stmt.body is not None:
                    self._exec_stmt(stmt.body, loop_scope)
            except BreakSignal:
                break
            except ContinueSignal:
                pass
            if stmt.step is not None:
                self._eval(stmt.step, loop_scope)

    def _exec_range_for(self, stmt: A.RangeForStmt, scope: Scope) -> None:
        iterable = self._eval(stmt.iterable, scope)
        if not isinstance(iterable, list):
            raise InterpreterError("range-for requires an array value")
        loop_scope = scope.child()
        for index in range(len(iterable)):
            self._tick()
            loop_scope.declare(stmt.var, iterable[index])
            try:
                if stmt.body is not None:
                    self._exec_stmt(stmt.body, loop_scope)
            except BreakSignal:
                break
            except ContinueSignal:
                continue
            if stmt.reference:
                iterable[index] = loop_scope.lookup(stmt.var)

    # ------------------------------------------------------------------ expressions --

    def _eval(self, expr: Optional[A.Node], scope: Scope) -> Any:
        self._tick()
        if expr is None:
            return None
        if isinstance(expr, A.Literal):
            return self._literal(expr)
        if isinstance(expr, A.Ident):
            return self._ident(expr.name, scope)
        if isinstance(expr, A.Paren):
            return self._eval(expr.expr, scope)
        if isinstance(expr, A.BinaryOp):
            if expr.op == "&&":
                return 1 if truthy(self._eval(expr.left, scope)) and \
                    truthy(self._eval(expr.right, scope)) else 0
            if expr.op == "||":
                return 1 if truthy(self._eval(expr.left, scope)) or \
                    truthy(self._eval(expr.right, scope)) else 0
            return binary_op(expr.op, self._eval(expr.left, scope),
                             self._eval(expr.right, scope))
        if isinstance(expr, A.UnaryOp):
            return self._unary(expr, scope)
        if isinstance(expr, A.Assignment):
            return self._assign(expr, scope)
        if isinstance(expr, A.Ternary):
            return self._eval(expr.then, scope) if truthy(self._eval(expr.cond, scope)) \
                else self._eval(expr.orelse, scope)
        if isinstance(expr, A.Subscript):
            return self._lvalue(expr, scope).load()
        if isinstance(expr, A.Member):
            return self._lvalue(expr, scope).load()
        if isinstance(expr, A.Call):
            return self._call(expr, scope)
        if isinstance(expr, A.Cast):
            value = self._eval(expr.expr, scope)
            ttext = expr.type.text if expr.type else "double"
            if "int" in ttext or ttext in ("long", "size_t", "char"):
                return int(value)
            return float(value)
        if isinstance(expr, A.SizeofExpr):
            return 8
        if isinstance(expr, A.CommaExpr):
            result = None
            for item in expr.items:
                result = self._eval(item, scope)
            return result
        if isinstance(expr, A.InitList):
            return [self._eval(i, scope) for i in expr.items]
        if isinstance(expr, A.KernelLaunch):
            # execute the kernel body once per "thread" is out of scope for
            # behaviour checks; record it like a marker call instead
            self.marker_calls.append(CallRecord(name="<kernel launch>"))
            return 0
        raise InterpreterError(f"unsupported expression kind {expr.kind}")

    def _literal(self, expr: A.Literal) -> Any:
        if expr.category == "int":
            return int(expr.value.rstrip("uUlL"), 0)
        if expr.category == "float":
            return float(expr.value.rstrip("fFlL"))
        if expr.category == "string":
            raw = expr.value[1:-1]
            return (raw.replace("\\n", "\n").replace("\\t", "\t")
                    .replace('\\"', '"').replace("\\\\", "\\"))
        if expr.category == "char":
            inner = expr.value[1:-1]
            return ord(inner.replace("\\n", "\n").replace("\\t", "\t")[0]) if inner else 0
        if expr.category == "bool":
            return 1 if expr.value == "true" else 0
        if expr.category == "null":
            return 0
        return 0

    def _ident(self, name: str, scope: Scope) -> Any:
        if scope.has(name):
            return scope.lookup(name)
        if name in self.defines:
            return self.defines[name]
        if name == "__func__":
            return "<func>"
        raise InterpreterError(f"undefined identifier {name!r}")

    def _unary(self, expr: A.UnaryOp, scope: Scope) -> Any:
        if expr.op in ("++", "--"):
            lval = self._lvalue(expr.operand, scope)
            old = lval.load()
            new = old + 1 if expr.op == "++" else old - 1
            lval.store(new)
            return new if expr.prefix else old
        value = self._eval(expr.operand, scope)
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        if expr.op == "!":
            return 0 if truthy(value) else 1
        if expr.op == "~":
            return ~int(value)
        if expr.op == "*":
            # dereferencing a "pointer" (list): first element
            return value[0] if isinstance(value, list) else value
        if expr.op == "&":
            # address-of: arrays/structs are reference values already
            return value
        raise InterpreterError(f"unsupported unary operator {expr.op!r}")

    def _assign(self, expr: A.Assignment, scope: Scope) -> Any:
        lval = self._lvalue(expr.target, scope)
        value = self._eval(expr.value, scope)
        if expr.op == "=":
            lval.store(value)
            return value
        op = expr.op[:-1]
        new = binary_op(op, lval.load(), value)
        lval.store(new)
        return new

    def _lvalue(self, expr: A.Node, scope: Scope) -> LValue:
        if isinstance(expr, A.Ident):
            return scope.lvalue(expr.name)
        if isinstance(expr, A.Paren):
            return self._lvalue(expr.expr, scope)
        if isinstance(expr, A.UnaryOp) and expr.op == "*":
            base = self._eval(expr.operand, scope)
            if isinstance(base, list):
                return LValue(container=base, key=0)
            raise InterpreterError("cannot dereference a non-array value")
        if isinstance(expr, A.Subscript):
            base = self._eval(expr.base, scope)
            if not isinstance(base, list):
                raise InterpreterError("subscript of a non-array value")
            container = base
            indices = [int(self._eval(i, scope)) for i in expr.indices]
            for idx in indices[:-1]:
                container = container[idx]
                if not isinstance(container, list):
                    raise InterpreterError("too many subscripts")
            index = indices[-1]
            if index < 0 or index >= len(container):
                raise InterpreterError(
                    f"array index {index} out of bounds (size {len(container)})")
            return LValue(container=container, key=index)
        if isinstance(expr, A.Member):
            base = self._eval(expr.base, scope)
            if expr.op == "->" and isinstance(base, list):
                base = base[0]
            if not isinstance(base, StructValue):
                raise InterpreterError("member access on a non-struct value")
            return LValue(container=base, key=expr.name)
        raise InterpreterError(f"expression kind {expr.kind} is not assignable")

    # ------------------------------------------------------------------ calls --

    _BUILTINS = {
        "sqrt": math.sqrt, "fabs": abs, "abs": abs, "cos": math.cos, "sin": math.sin,
        "exp": math.exp, "log": math.log, "pow": pow, "floor": math.floor,
        "ceil": math.ceil, "fmax": max, "fmin": min,
    }

    def _call(self, expr: A.Call, scope: Scope) -> Any:
        if not isinstance(expr.func, A.Ident):
            raise InterpreterError("only direct calls are supported")
        name = expr.func.name.split("::")[-1]
        if name in self.RECORDED_CALLS:
            args = tuple(self._safe_eval(a, scope) for a in expr.args)
            self.marker_calls.append(CallRecord(name=name, args=args))
            return 0
        args = [self._eval(a, scope) for a in expr.args]
        if name in self.functions:
            return self.call(name, *args)
        if name in self._BUILTINS:
            return self._BUILTINS[name](*args)
        if name == "printf":
            self.output.append(self._format_printf(args))
            return 0
        if name in ("malloc", "calloc"):
            count = int(args[0] // 8) if name == "malloc" else int(args[0])
            return make_array([max(count, 1)], 0.0)
        if name in ("free", "srand", "omp_set_num_threads"):
            return 0
        if name in ("omp_get_thread_num",):
            return 0
        if name in ("omp_get_num_threads", "omp_get_max_threads"):
            return 1
        raise InterpreterError(f"call to unknown function {name!r}")

    def _safe_eval(self, expr: A.Node, scope: Scope) -> Any:
        try:
            return self._eval(expr, scope)
        except InterpreterError:
            return None

    @staticmethod
    def _format_printf(args: list[Any]) -> str:
        if not args:
            return ""
        fmt = str(args[0])
        values = args[1:]
        fmt = fmt.replace("%lf", "%f").replace("%lu", "%d").replace("%ld", "%d")
        try:
            return fmt % tuple(values)
        except (TypeError, ValueError):
            return fmt


def run_function(code: "CodeBase | str", name: str, *args: Any,
                 options: SpatchOptions = DEFAULT_OPTIONS,
                 defines: Optional[dict[str, Any]] = None) -> Any:
    """One-shot helper: build an interpreter and call ``name(*args)``."""
    interp = Interpreter(code, options=options, defines=defines)
    return interp.call(name, *args)
