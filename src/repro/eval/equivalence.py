"""Behaviour-equivalence checks between original and refactored code.

The paper's central workflow keeps the pristine code as the source of truth
and regenerates the refactored variant on demand; test suites are then the
main acceptance instrument ("the habit of writing comprehensive test suites
... can surely facilitate reviewing a large refactoring contribution").  This
module plays the role of that test suite for the synthetic workloads: it runs
the same entry points in the original and the transformed code base on the
mini interpreter and compares observable results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..api import CodeBase
from ..errors import InterpreterError
from ..options import SpatchOptions, DEFAULT_OPTIONS
from .interpreter import Interpreter


@dataclass
class EquivalenceReport:
    """Outcome of comparing one or more entry points."""

    checked: int = 0
    equivalent: int = 0
    mismatches: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def all_equivalent(self) -> bool:
        return self.checked > 0 and self.equivalent == self.checked and not self.errors

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        self.checked += 1
        if ok:
            self.equivalent += 1
        else:
            self.mismatches.append(f"{name}: {detail}")


def _values_close(a: Any, b: Any, rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_values_close(x, y, rel_tol, abs_tol)
                                        for x, y in zip(a, b))
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return math.isclose(float(a), float(b), rel_tol=rel_tol, abs_tol=abs_tol)
    return a == b


def compare_function(original: CodeBase, transformed: CodeBase, function: str,
                     args_factory: Callable[[], tuple],
                     observed_args: Sequence[int] = (),
                     options: SpatchOptions = DEFAULT_OPTIONS,
                     defines: Optional[dict[str, Any]] = None,
                     rel_tol: float = 1e-9) -> EquivalenceReport:
    """Call ``function`` with identical (freshly constructed) arguments in
    both code bases and compare the return value plus the argument positions
    listed in ``observed_args`` (output arrays)."""
    report = EquivalenceReport()
    try:
        interp_a = Interpreter(original, options=options, defines=defines)
        interp_b = Interpreter(transformed, options=options, defines=defines)
        args_a = args_factory()
        args_b = args_factory()
        result_a = interp_a.call(function, *args_a)
        result_b = interp_b.call(function, *args_b)
        ok = _values_close(result_a, result_b, rel_tol=rel_tol)
        detail = f"return {result_a!r} != {result_b!r}" if not ok else ""
        for pos in observed_args:
            if not _values_close(args_a[pos], args_b[pos], rel_tol=rel_tol):
                ok = False
                detail += f" arg[{pos}] differs"
        report.record(function, ok, detail)
    except InterpreterError as exc:
        report.errors.append(f"{function}: {exc}")
    return report


def compare_many(original: CodeBase, transformed: CodeBase,
                 cases: dict[str, tuple[Callable[[], tuple], Sequence[int]]],
                 options: SpatchOptions = DEFAULT_OPTIONS,
                 defines: Optional[dict[str, Any]] = None) -> EquivalenceReport:
    """Run :func:`compare_function` for several entry points and merge."""
    merged = EquivalenceReport()
    for function, (factory, observed) in cases.items():
        one = compare_function(original, transformed, function, factory, observed,
                               options=options, defines=defines)
        merged.checked += one.checked
        merged.equivalent += one.equivalent
        merged.mismatches.extend(one.mismatches)
        merged.errors.extend(one.errors)
    return merged


# ---------------------------------------------------------------------------
# AoS / SoA specific comparison
# ---------------------------------------------------------------------------

def _seed_particles_aos(interp: Interpreter, array: str, fields: dict[str, int],
                        count: int) -> None:
    particles = interp.get_global(array)
    for i in range(count):
        for f_index, (fname, dim) in enumerate(sorted(fields.items())):
            if dim:
                for d in range(dim):
                    particles[i][fname][d] = 0.25 * i + 0.5 * d + f_index
            else:
                particles[i][fname] = 0.125 * i + f_index


def _seed_particles_soa(interp: Interpreter, array: str, fields: dict[str, int],
                        count: int) -> None:
    for f_index, (fname, dim) in enumerate(sorted(fields.items())):
        soa = interp.get_global(f"{array}_{fname}")
        for i in range(count):
            if dim:
                for d in range(dim):
                    soa[i][d] = 0.25 * i + 0.5 * d + f_index
            else:
                soa[i] = 0.125 * i + f_index


def compare_aos_soa(original: CodeBase, transformed: CodeBase, functions: Sequence[str],
                    array: str = "P", fields: Optional[dict[str, int]] = None,
                    count: int = 64, extra_args: Sequence[Any] = (),
                    options: SpatchOptions = DEFAULT_OPTIONS) -> EquivalenceReport:
    """Seed the particle data identically in the AoS and the SoA
    representation, run scalar-returning entry points in both code bases and
    compare the results (the observable behaviour of the GADGET-like
    workload's reductions)."""
    fields = fields or {"pos": 3, "vel": 3, "acc": 3, "mass": 0, "density": 0,
                        "energy": 0, "type": 0}
    report = EquivalenceReport()
    try:
        interp_a = Interpreter(original, options=options)
        interp_b = Interpreter(transformed, options=options)
        _seed_particles_aos(interp_a, array, fields, count)
        _seed_particles_soa(interp_b, array, fields, count)
        for function in functions:
            try:
                result_a = interp_a.call(function, count, *extra_args)
                result_b = interp_b.call(function, count, *extra_args)
            except InterpreterError as exc:
                report.errors.append(f"{function}: {exc}")
                continue
            ok = _values_close(result_a, result_b)
            report.record(function, ok, f"{result_a!r} != {result_b!r}")
    except InterpreterError as exc:
        report.errors.append(str(exc))
    return report
