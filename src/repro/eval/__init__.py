"""Mini C interpreter and behaviour-equivalence checks."""

from .interpreter import CallRecord, Interpreter, run_function
from .equivalence import EquivalenceReport, compare_aos_soa, compare_function, compare_many
from .values import StructValue, make_array

__all__ = [
    "CallRecord", "Interpreter", "run_function",
    "EquivalenceReport", "compare_aos_soa", "compare_function", "compare_many",
    "StructValue", "make_array",
]
