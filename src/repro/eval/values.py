"""Runtime values for the mini C interpreter.

The interpreter models just enough of C's object model to execute the
synthetic workloads: numeric scalars, (nested) arrays backed by Python lists,
struct objects backed by dicts, and l-values as ``(container, key)`` pairs so
assignment and compound assignment work uniformly for variables, array
elements and struct fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import InterpreterError


class BreakSignal(Exception):
    """Raised to unwind a ``break`` statement."""


class ContinueSignal(Exception):
    """Raised to unwind a ``continue`` statement."""


class ReturnSignal(Exception):
    """Raised to unwind a ``return`` statement; carries the value."""

    def __init__(self, value: Any = None):
        super().__init__("return")
        self.value = value


@dataclass
class StructValue:
    """An instance of a C struct: field name → value."""

    struct_name: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Any:
        if name not in self.fields:
            raise InterpreterError(f"struct {self.struct_name} has no field {name!r}")
        return self.fields[name]

    def __setitem__(self, name: str, value: Any) -> None:
        self.fields[name] = value

    def copy(self) -> "StructValue":
        return StructValue(struct_name=self.struct_name,
                           fields={k: _copy_value(v) for k, v in self.fields.items()})


def _copy_value(value: Any) -> Any:
    if isinstance(value, list):
        return [_copy_value(v) for v in value]
    if isinstance(value, StructValue):
        return value.copy()
    return value


def make_array(dims: list[int], fill: Any = 0.0) -> list:
    """Allocate a nested list with the given dimensions."""
    if not dims:
        return fill
    head, *rest = dims
    return [make_array(rest, fill) for _ in range(head)]


def default_value(type_text: str, struct_fields: Optional[dict[str, list[int]]] = None):
    """The zero value of a scalar type."""
    if "int" in type_text or type_text in ("char", "long", "short", "size_t", "bool"):
        return 0
    return 0.0


@dataclass
class LValue:
    """A resolved assignable location."""

    container: Any   # dict (scope / struct fields) or list (array)
    key: Any         # name or index

    def load(self) -> Any:
        try:
            return self.container[self.key]
        except (KeyError, IndexError) as exc:
            raise InterpreterError(f"invalid l-value access: {exc}") from exc

    def store(self, value: Any) -> None:
        try:
            self.container[self.key] = value
        except (KeyError, IndexError) as exc:
            raise InterpreterError(f"invalid l-value store: {exc}") from exc


class Scope:
    """A chain of name→value frames (function locals, nested blocks, globals)."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.names: dict[str, Any] = {}

    def child(self) -> "Scope":
        return Scope(parent=self)

    def declare(self, name: str, value: Any) -> None:
        self.names[name] = value

    def _frame_of(self, name: str) -> Optional[dict[str, Any]]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names
            scope = scope.parent
        return None

    def lookup(self, name: str) -> Any:
        frame = self._frame_of(name)
        if frame is None:
            raise InterpreterError(f"undefined identifier {name!r}")
        return frame[name]

    def has(self, name: str) -> bool:
        return self._frame_of(name) is not None

    def lvalue(self, name: str) -> LValue:
        frame = self._frame_of(name)
        if frame is None:
            # implicit declaration at the innermost scope (tolerant mode)
            frame = self.names
            frame[name] = 0.0
        return LValue(container=frame, key=name)


def truthy(value: Any) -> bool:
    if isinstance(value, (int, float, bool)):
        return value != 0
    if value is None:
        return False
    return bool(value)


def c_int(value: Any) -> int:
    return int(value)


def binary_op(op: str, left: Any, right: Any) -> Any:
    """Evaluate a C binary operator on Python values."""
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            if right == 0:
                raise InterpreterError("integer division by zero")
            return int(left / right) if (left < 0) != (right < 0) else left // right
        if right == 0:
            raise InterpreterError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise InterpreterError("modulo by zero")
        return int(left) - int(right) * int(int(left) / int(right)) if (left < 0) != (right < 0) \
            else int(left) % int(right)
    if op == "<":
        return 1 if left < right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == "<=":
        return 1 if left <= right else 0
    if op == ">=":
        return 1 if left >= right else 0
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "&&":
        return 1 if truthy(left) and truthy(right) else 0
    if op == "||":
        return 1 if truthy(left) or truthy(right) else 0
    if op == "&":
        return c_int(left) & c_int(right)
    if op == "|":
        return c_int(left) | c_int(right)
    if op == "^":
        return c_int(left) ^ c_int(right)
    if op == "<<":
        return c_int(left) << c_int(right)
    if op == ">>":
        return c_int(left) >> c_int(right)
    raise InterpreterError(f"unsupported binary operator {op!r}")
