"""High-level public API.

The two classes most users interact with:

:class:`SemanticPatch`
    a parsed semantic patch (``.cocci`` text), with ``apply_to_source`` /
    ``apply`` methods that run the matching + transformation engine and
    return :class:`~repro.engine.report.FileResult` /
    :class:`~repro.engine.report.PatchResult` objects carrying the patched
    text, the unified diff and per-rule match statistics.

:class:`CodeBase`
    an in-memory collection of source files (the unit the benchmarks and the
    workload generators operate on), loadable from / writable to a directory.

Quick start::

    from repro import SemanticPatch, CodeBase

    patch = SemanticPatch.from_string(open("instrument.cocci").read())
    result = patch.apply(CodeBase.from_dir("src/"))
    print(result.diff())
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .engine.engine import Engine
from .engine.prefilter import TokenIndex
from .engine.report import FileResult, PatchResult
from .lang.parser import ParseTree, parse_source
from .lang.source import SourceFile
from .options import SpatchOptions, DEFAULT_OPTIONS
from .smpl.ast import SemanticPatchAST
from .smpl.parser import parse_semantic_patch


#: file suffixes considered C/C++ sources when loading a directory
C_SUFFIXES = (".c", ".h", ".cc", ".cpp", ".cxx", ".hpp", ".cu", ".hip")


@dataclass
class CodeBase:
    """An in-memory collection of source files."""

    files: dict[str, str] = field(default_factory=dict)
    #: lazily built prefilter token index (see :meth:`token_index`)
    _token_index: Optional[TokenIndex] = field(default=None, init=False,
                                               repr=False, compare=False)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_files(cls, files: dict[str, str]) -> "CodeBase":
        return cls(files=dict(files))

    @classmethod
    def from_dir(cls, path, suffixes: tuple[str, ...] = C_SUFFIXES) -> "CodeBase":
        root = pathlib.Path(path)
        files: dict[str, str] = {}
        for entry in sorted(root.rglob("*")):
            if entry.is_file() and entry.suffix in suffixes:
                # real HPC trees mix encodings (Latin-1 comments in decades-old
                # sources); never let one stray byte abort a whole-tree load.
                # surrogateescape (rather than replace) keeps the raw bytes
                # recoverable, so write_to round-trips them unchanged
                files[str(entry.relative_to(root))] = entry.read_text(
                    encoding="utf-8", errors="surrogateescape")
        return cls(files=files)

    def write_to(self, path) -> None:
        root = pathlib.Path(path)
        for name, text in self.files.items():
            target = root / name
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text, encoding="utf-8", errors="surrogateescape")

    def refresh_from_dir(self, path,
                         suffixes: tuple[str, ...] = C_SUFFIXES,
                         ) -> dict[str, list[str]]:
        """Re-read a directory this code base was loaded from, applying only
        the on-disk delta: new files are added, files whose contents differ
        are updated, files gone from disk are removed (all through the
        index-maintaining accessors, so the lazily built token index stays
        exact and unchanged files keep their cached scans).  Returns the
        delta as ``{"added": [...], "changed": [...], "removed": [...]}`` —
        the edit-apply loop feeds it straight into an incremental run."""
        root = pathlib.Path(path)
        seen: set[str] = set()
        added: list[str] = []
        changed: list[str] = []
        for entry in sorted(root.rglob("*")):
            if entry.is_file() and entry.suffix in suffixes:
                name = str(entry.relative_to(root))
                seen.add(name)
                text = entry.read_text(encoding="utf-8",
                                       errors="surrogateescape")
                if name not in self.files:
                    self[name] = text
                    added.append(name)
                elif self.files[name] != text:
                    self[name] = text
                    changed.append(name)
        removed = [name for name in self.files if name not in seen]
        for name in removed:
            del self[name]
        return {"added": added, "changed": changed, "removed": removed}

    # -- dict-like access -----------------------------------------------------------

    def __getitem__(self, name: str) -> str:
        return self.files[name]

    def __setitem__(self, name: str, text: str) -> None:
        self.files[name] = text
        if self._token_index is not None:
            self._token_index.add(name, text)  # per-file update, keep the rest

    def __delitem__(self, name: str) -> None:
        """Remove a file, keeping the token index exact: a deletion through
        ``files`` directly would leave the lazily built index answering
        prefilter queries for a file that no longer exists (incremental mode
        deletes through here when the tree shrinks)."""
        del self.files[name]
        if self._token_index is not None:
            self._token_index.remove(name)

    def __contains__(self, name: str) -> bool:
        return name in self.files

    def __iter__(self) -> Iterator[str]:
        return iter(self.files)

    def __len__(self) -> int:
        return len(self.files)

    def items(self) -> Iterator[tuple[str, str]]:
        return iter(self.files.items())

    def names(self) -> list[str]:
        return list(self.files)

    # -- metrics -----------------------------------------------------------------------

    def loc(self) -> int:
        """Total non-blank, non-comment lines across all files."""
        return sum(SourceFile(name=n, text=t).count_loc() for n, t in self.files.items())

    def content_hashes(self) -> dict[str, str]:
        """``{name: sha1(text)}`` over every file — the manifest the server
        protocol's ``sync_files`` delta upload compares against, using the
        same :func:`~repro.engine.cache.content_sha1` the incremental layer
        keys on, so client and server can never disagree on "changed"."""
        from .engine.cache import content_sha1

        return {name: content_sha1(text) for name, text in self.files.items()}

    def total_lines(self) -> int:
        return sum(t.count("\n") + (0 if t.endswith("\n") or not t else 1)
                   for t in self.files.values())

    def parse(self, options: SpatchOptions = DEFAULT_OPTIONS) -> dict[str, ParseTree]:
        """Parse every file (error tolerant); useful for analyses and tests."""
        return {name: parse_source(text, name=name, options=options)
                for name, text in self.files.items()}

    def token_index(self) -> TokenIndex:
        """The per-file token index the prefilter consults, built lazily and
        cached until the code base is mutated.  Repeated ``apply`` calls over
        the same code base then share one scan."""
        if self._token_index is None:
            self._token_index = TokenIndex(self.files)
        return self._token_index

    def with_file(self, name: str, text: str) -> "CodeBase":
        files = dict(self.files)
        files[name] = text
        return CodeBase(files=files)


class SemanticPatch:
    """A parsed semantic patch, ready to be applied."""

    def __init__(self, ast: SemanticPatchAST, options: Optional[SpatchOptions] = None,
                 name: str = "<patch>"):
        self.ast = ast
        self.options = options or ast.options
        self.name = name

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_string(cls, text: str, options: Optional[SpatchOptions] = None,
                    name: str = "<patch>") -> "SemanticPatch":
        ast = parse_semantic_patch(text, options=options)
        # ast.options is the parser's *merged* view: the explicit options
        # (when given) with `# spatch --c++` pseudo-option lines folded in.
        # Using the raw ``options`` here instead would silently drop the
        # language level a patch declares for itself — the CLI always passes
        # explicit options, so every --sp-file with an embedded option line
        # used to lose it unless --c++ was also on the command line.
        return cls(ast=ast, options=ast.options, name=name)

    @classmethod
    def from_path(cls, path, options: Optional[SpatchOptions] = None) -> "SemanticPatch":
        p = pathlib.Path(path)
        # surrogateescape, matching CodeBase: a stray byte in a patch file's
        # comment must round-trip exactly like one in a source file would
        return cls.from_string(p.read_text(encoding="utf-8",
                                           errors="surrogateescape"),
                               options=options, name=p.name)

    @classmethod
    def from_text(cls, text: str, options: Optional[SpatchOptions] = None,
                  name: str = "<patch>",
                  format: Optional[str] = None) -> "SemanticPatch":
        """Parse a patch in *any* supported format — SmPL or one of the
        machine-patch frontends (JSON operation arrays, 'ap' locator
        documents, SEARCH/REPLACE blocks; see :mod:`repro.frontends`).
        ``format=None`` auto-detects from ``name``'s suffix and the text."""
        from .frontends import detect_format, parse_patch_text

        fmt = format or detect_format(text, name)
        if fmt == "smpl":
            return cls.from_string(text, options=options, name=name)
        ast = parse_patch_text(text, format=fmt, options=options, name=name)
        return cls(ast=ast, options=ast.options, name=name)

    @classmethod
    def from_patch_file(cls, path,
                        options: Optional[SpatchOptions] = None) -> "SemanticPatch":
        """Load a patch file of any supported format (the ``--patch-file``
        loader: auto-detected, frontend formats included)."""
        p = pathlib.Path(path)
        return cls.from_text(p.read_text(encoding="utf-8",
                                         errors="surrogateescape"),
                             options=options, name=p.name)

    # -- introspection -----------------------------------------------------------------

    @property
    def rule_names(self) -> list[str]:
        return self.ast.rule_names

    def loc(self) -> int:
        """Semantic patch lines of code (the 'terseness' numerator of Q1)."""
        return self.ast.loc()

    def describe(self) -> str:
        lines = [f"semantic patch {self.name}: {len(self.ast.rules)} rule(s)"]
        for rule in self.ast.rules:
            lines.append("  " + rule.describe())
        return "\n".join(lines)

    # -- application -------------------------------------------------------------------

    def engine(self) -> Engine:
        """A fresh engine instance (one per application run)."""
        return Engine(self.ast, options=self.options)

    def apply_to_source(self, text: str, filename: str = "<input.c>") -> FileResult:
        """Apply the patch to a single file's contents."""
        return self.engine().apply_to_file(filename, text)

    def apply(self, codebase: "CodeBase | dict[str, str]", *,
              jobs: "int | str" = 1, prefilter: bool = True,
              compile: Optional[bool] = None) -> PatchResult:
        """Apply the patch to a whole code base; returns per-file results.

        ``jobs`` applies files in that many worker processes (``"auto"`` =
        one per CPU); ``prefilter`` skips files the required-token analysis
        proves cannot match (behaviour-preserving, on by default);
        ``compile`` selects the compiled matcher backend (``None`` defers to
        ``REPRO_MATCHER``, which defaults to compiled).  The returned result
        carries the driver's timing breakdown in ``.stats``.
        """
        from .engine.driver import Driver

        if isinstance(codebase, CodeBase):
            files = codebase.files
            index = codebase.token_index() if prefilter else None
        else:
            files = dict(codebase)
            index = None
        driver = Driver(self.ast, options=self.options, jobs=jobs,
                        prefilter=prefilter, compile=compile)
        return driver.run(files, token_index=index)

    def transform(self, codebase: "CodeBase", *,
                  jobs: "int | str" = 1, prefilter: bool = True,
                  compile: Optional[bool] = None) -> "CodeBase":
        """Apply the patch and return the transformed code base (the
        'replayable refactoring' workflow of the paper: the original tree is
        the maintained source of truth, the refactored copy is regenerated)."""
        result = self.apply(codebase, jobs=jobs, prefilter=prefilter,
                            compile=compile)
        return CodeBase(files={name: fr.text for name, fr in result.files.items()})


class PatchSet:
    """An ordered list of semantic patches applied as one batch.

    ``PatchSet([p1, p2]).apply(codebase)`` is observably equivalent to
    ``p2.apply(p1.transform(codebase))`` — byte-identical texts and per-rule
    reports, per patch — but runs as a *single* driver pass: each file is
    token-scanned once, parsed once per text state (the parse cache is
    shared across patch boundaries), gated against the union of the patches'
    prefilters and shipped to a worker process once for all patches.  See
    :class:`~repro.engine.pipeline.PatchPipeline` for the semantics and
    :meth:`~repro.engine.pipeline.PipelineResult.result_for` for the
    per-patch breakdown of the result.
    """

    def __init__(self, patches: Iterable[SemanticPatch], name: str = "<patchset>"):
        self.patches: list[SemanticPatch] = list(patches)
        self.name = name

    @classmethod
    def from_any(cls, sources, options: Optional[SpatchOptions] = None,
                 name: str = "<patchset>") -> "PatchSet":
        """Build a patch set from heterogeneous sources, in order.

        Accepts a single source or an iterable of them; each source may be a
        :class:`SemanticPatch`, a :class:`PatchSet` (flattened), a parsed
        :class:`~repro.smpl.ast.SemanticPatchAST`, a path to a patch file
        (``str`` without a newline, or any ``os.PathLike``), or inline patch
        text (a ``str`` containing a newline).  File and inline formats are
        auto-detected across SmPL and the machine-patch frontends::

            PatchSet.from_any(["rename.cocci", "ops.json", blocks_text])
        """
        if isinstance(sources, (str, SemanticPatch, PatchSet,
                                SemanticPatchAST)) or hasattr(sources, "__fspath__"):
            sources = [sources]
        patches: list[SemanticPatch] = []
        for source in sources:
            if isinstance(source, SemanticPatch):
                patches.append(source)
            elif isinstance(source, PatchSet):
                patches.extend(source.patches)
            elif isinstance(source, SemanticPatchAST):
                patches.append(SemanticPatch(ast=source, options=options
                                             or source.options))
            elif isinstance(source, str) and "\n" in source:
                patches.append(SemanticPatch.from_text(source, options=options))
            elif isinstance(source, str) or hasattr(source, "__fspath__"):
                patches.append(SemanticPatch.from_patch_file(source,
                                                             options=options))
            else:
                raise TypeError(
                    f"PatchSet.from_any: unsupported source {type(source).__name__}")
        return cls(patches, name=name)

    # -- container protocol ------------------------------------------------------

    def __iter__(self) -> Iterator[SemanticPatch]:
        return iter(self.patches)

    def __len__(self) -> int:
        return len(self.patches)

    def __getitem__(self, index: int) -> SemanticPatch:
        return self.patches[index]

    @property
    def patch_names(self) -> list[str]:
        return [patch.name for patch in self.patches]

    def loc(self) -> int:
        """Total semantic-patch lines of code across the set."""
        return sum(patch.loc() for patch in self.patches)

    def describe(self) -> str:
        lines = [f"patch set {self.name}: {len(self.patches)} patch(es)"]
        for patch in self.patches:
            lines.extend("  " + line for line in patch.describe().splitlines())
        return "\n".join(lines)

    # -- application -------------------------------------------------------------

    def pipeline(self, *, jobs: "int | str" = 1, prefilter: bool = True,
                 compile: Optional[bool] = None, memo=None):
        """A fresh :class:`~repro.engine.pipeline.PatchPipeline` (one per run)."""
        from .engine.pipeline import PatchPipeline

        return PatchPipeline([patch.ast for patch in self.patches],
                             options=[patch.options for patch in self.patches],
                             names=self.patch_names,
                             jobs=jobs, prefilter=prefilter, compile=compile,
                             memo=memo)

    def incremental(self, *, jobs: "int | str" = 1, prefilter: bool = True,
                    compile: Optional[bool] = None, memo=None):
        """A fresh :class:`~repro.engine.incremental.IncrementalPipeline`
        (one per run), for callers that drive ``run(files, since=...)``
        themselves."""
        from .engine.incremental import IncrementalPipeline

        return IncrementalPipeline([patch.ast for patch in self.patches],
                                   options=[patch.options
                                            for patch in self.patches],
                                   names=self.patch_names,
                                   jobs=jobs, prefilter=prefilter,
                                   compile=compile, memo=memo)

    def apply(self, codebase: "CodeBase | dict[str, str]", *,
              jobs: "int | str" = 1, prefilter: bool = True, since=None,
              compile: Optional[bool] = None, memo=None):
        """Apply every patch, in order, to a whole code base in one pass.

        Returns a :class:`~repro.engine.pipeline.PipelineResult`: a
        :class:`~repro.engine.report.PatchResult` for the combined
        transformation, with the per-patch results in ``per_patch``.

        ``since`` — a prior ``PipelineResult`` (or a persisted
        ``PipelineState``, unwrapped transparently) — switches to
        incremental re-application: only files whose content hash changed
        since that result are re-run, the rest splice their cached results
        (byte-identical to a cold run; see
        :class:`~repro.engine.incremental.IncrementalPipeline`).  The patch
        *list* is diffed too: when this set shares an unchanged leading
        prefix with the prior result's (per-patch fingerprints over SMPL
        source + options), unchanged files splice the prefix results and
        replay only the suffix patches — so appending a patch to an
        N-patch cookbook costs one patch, not N+1.  A diverged first patch,
        changed options, toggled prefilter or stale/corrupt state all
        degrade to a cold run, never to wrong output.  The returned result
        carries the reuse breakdown in ``.incremental`` and can seed the
        next ``since=`` in an edit-apply loop.

        ``memo`` — a :class:`~repro.engine.memo.TransformMemo` — adds
        content-addressed reuse on top: every (file state, patch) session is
        keyed on content hash + patch fingerprint, so repeated applies,
        duplicated files and (with a disk-backed memo) fresh processes skip
        transforms whose outcome is already known, byte-identically.
        """
        from .engine.incremental import PipelineState

        if isinstance(since, PipelineState):
            since = since.result
        if isinstance(codebase, CodeBase):
            files = codebase.files
            index = codebase.token_index() if prefilter else None
        else:
            files = dict(codebase)
            index = None
        if since is None:
            return self.pipeline(jobs=jobs, prefilter=prefilter,
                                 compile=compile, memo=memo) \
                .run(files, token_index=index)
        return self.incremental(jobs=jobs, prefilter=prefilter,
                                compile=compile, memo=memo) \
            .run(files, since=since, token_index=index)

    def transform(self, codebase: "CodeBase", *,
                  jobs: "int | str" = 1, prefilter: bool = True,
                  since=None, compile: Optional[bool] = None) -> "CodeBase":
        """Apply the whole set and return the transformed code base."""
        result = self.apply(codebase, jobs=jobs, prefilter=prefilter,
                            since=since, compile=compile)
        return CodeBase(files={name: fr.text for name, fr in result.files.items()})


def apply_patch(patch_text: str, code: str, filename: str = "<input.c>",
                options: Optional[SpatchOptions] = None) -> FileResult:
    """One-shot helper: parse ``patch_text`` and apply it to ``code``."""
    return SemanticPatch.from_string(patch_text, options=options) \
        .apply_to_source(code, filename=filename)
