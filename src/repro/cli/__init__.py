"""Command-line interface (an ``spatch``-like driver)."""

from .spatch import main

__all__ = ["main"]
