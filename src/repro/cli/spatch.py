"""``repro-spatch`` — an ``spatch``-like command line driver.

Usage examples::

    repro-spatch --sp-file instrument.cocci src/              # print a diff
    repro-spatch --sp-file translate.cocci --in-place src/    # rewrite files
    repro-spatch --sp-file rules.cocci --c++=17 file.cpp
    repro-spatch --cookbook cuda_to_hip --jobs 4 src/cuda/    # built-in patch
    repro-spatch --sp-file a.cocci --sp-file b.cocci src/     # batch pipeline
    repro-spatch --cookbook full_modernization src/           # whole cookbook
    repro-spatch --list-cookbook

Mirrors the spatch options the paper's listings mention (``--c++[=N]``,
``--jobs``) plus a few conveniences (``--report``, ``--in-place``,
``--profile``, built-in cookbook patches).  ``--sp-file`` and ``--cookbook``
are repeatable: given more than one patch, they run as a single
:class:`~repro.api.PatchSet` pipeline pass, in command-line order —
equivalent to, but faster than, chaining one invocation per patch.

Exit status follows spatch conventions: 0 when the patch matched at least
one site, 1 when it matched nothing, 2 on usage errors.  Matches of pure
idempotence-guard rules (``depends on !guard`` suppressors, which fire
exactly when a file is already modernized) do not count as "matched", so
re-running an in-place modernization exits 1 once there is nothing left to
do.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .. import __version__
from ..api import CodeBase, PatchSet, SemanticPatch
from ..options import SpatchOptions

#: pseudo cookbook name expanding to the whole-cookbook pipeline preset
FULL_PIPELINE = "full_modernization"


#: name -> zero-argument builder of a cookbook patch
def _cookbook_builders():
    from ..cookbook import builders

    return builders()


class _PatchArg(argparse.Action):
    """Append ``(kind, value)`` to one shared list so interleaved
    ``--sp-file``/``--cookbook`` flags keep their command-line order —
    pipelines are order-sensitive, so the order the user wrote is the order
    that runs."""

    def __call__(self, parser, namespace, values, option_string=None):
        items = list(getattr(namespace, self.dest, None) or [])
        kind = "cookbook" if option_string == "--cookbook" else "sp_file"
        items.append((kind, values))
        setattr(namespace, self.dest, items)


def _parse_jobs(value: str):
    if value == "auto":
        return "auto"
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs expects a positive integer or 'auto', got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError("--jobs must be >= 1")
    return jobs


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spatch",
        description="Apply semantic patches to C/C++ sources (Coccinelle-style).")
    parser.add_argument("targets", nargs="*",
                        help="source files or directories to transform")
    parser.add_argument("--sp-file", "--cocci-file", dest="patch_args",
                        action=_PatchArg, default=[], metavar="SP_FILE",
                        help="semantic patch file to apply (repeatable: "
                             "several patches, --cookbook included, run as "
                             "one pipeline pass in command-line order)")
    parser.add_argument("--cookbook", dest="patch_args",
                        action=_PatchArg, default=[], metavar="NAME",
                        help="apply a built-in cookbook patch by name "
                             "(repeatable, same ordered pipeline as "
                             "--sp-file; 'full_modernization' expands to "
                             "the whole cookbook)")
    parser.add_argument("--list-cookbook", action="store_true",
                        help="list built-in cookbook patches and exit")
    parser.add_argument("--c++", dest="cxx", nargs="?", const="17", default=None,
                        metavar="N", help="enable the C++ front end (optionally a level)")
    parser.add_argument("--in-place", action="store_true",
                        help="rewrite the target files instead of printing a diff")
    parser.add_argument("--report", action="store_true",
                        help="print per-rule match statistics")
    parser.add_argument("--no-isos", action="store_true",
                        help="disable the built-in isomorphisms")
    parser.add_argument("--jobs", "-j", type=_parse_jobs, default=1, metavar="N",
                        help="apply files in N parallel worker processes "
                             "('auto' = one per CPU)")
    parser.add_argument("--no-prefilter", action="store_true",
                        help="disable the required-token prefilter and parse "
                             "every file")
    parser.add_argument("--profile", action="store_true",
                        help="print a timing/skip-rate breakdown to stderr")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--verbose", action="store_true")
    return parser


def _nonguard_matches(patch: SemanticPatch, patch_result) -> int:
    """Match count excluding the patch's idempotence-guard rules."""
    guards = patch.ast.guard_rule_names()
    return sum(report.matches
               for file_result in patch_result
               for report in file_result.rule_reports
               if report.rule not in guards)


def _load_codebase(targets: list[str]) -> tuple[CodeBase, dict[str, pathlib.Path]]:
    files: dict[str, str] = {}
    paths: dict[str, pathlib.Path] = {}
    for target in targets:
        path = pathlib.Path(target)
        if path.is_dir():
            sub = CodeBase.from_dir(path)
            for name, text in sub.items():
                key = str(path / name)
                files[key] = text
                paths[key] = path / name
        elif path.is_file():
            # tolerate Latin-1 comments and other stray bytes in HPC trees;
            # surrogateescape lets --in-place write the original bytes back
            files[str(path)] = path.read_text(encoding="utf-8",
                                              errors="surrogateescape")
            paths[str(path)] = path
        else:
            print(f"repro-spatch: no such file or directory: {target}",
                  file=sys.stderr)
            raise SystemExit(2)
    return CodeBase.from_files(files), paths


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    if args.list_cookbook:
        for name in sorted([*_cookbook_builders(), FULL_PIPELINE]):
            print(name)
        return 0

    options = SpatchOptions(
        cxx=int(args.cxx) if args.cxx is not None else None,
        apply_isomorphisms=not args.no_isos,
        verbose=args.verbose,
    )

    patches: list[SemanticPatch] = []
    builders = _cookbook_builders()
    for kind, value in args.patch_args:
        if kind == "sp_file":
            patches.append(SemanticPatch.from_path(value, options=options))
        elif value == FULL_PIPELINE:
            from ..cookbook import full_modernization_pipeline

            patches.extend(full_modernization_pipeline())
        elif value in builders:
            patches.append(builders[value]())
        else:
            parser.error(f"unknown cookbook patch {value!r}; "
                         f"use --list-cookbook to see the available ones")
    if not patches:
        parser.error("one of --sp-file or --cookbook is required")
        return 2

    if not args.targets:
        parser.error("no target files or directories given")
        return 2

    codebase, paths = _load_codebase(args.targets)
    if len(patches) == 1:
        result = patches[0].apply(codebase, jobs=args.jobs,
                                  prefilter=not args.no_prefilter)
        per_patch = [(patches[0], result)]
    else:
        result = PatchSet(patches).apply(codebase, jobs=args.jobs,
                                         prefilter=not args.no_prefilter)
        per_patch = list(zip(patches, result.per_patch))

    if args.report or args.verbose:
        summary = result.summary()
        print(f"# files: {summary['files']}  changed: {summary['changed_files']}  "
              f"matches: {summary['matches']}  +{summary['lines_added']} "
              f"-{summary['lines_removed']}", file=sys.stderr)
        for file_result in result:
            for rule_report in file_result.rule_reports:
                print(f"#   {file_result.filename}: rule {rule_report.rule} -> "
                      f"{rule_report.matches} match(es)", file=sys.stderr)

    if args.profile and result.stats is not None:
        print("# --- profile ---", file=sys.stderr)
        for line in result.stats.describe().splitlines():
            print(f"# {line}", file=sys.stderr)

    # guard-rule matches mean "already modernized, stood down", not "the
    # patch applied": they must not turn a no-op re-run into exit 0
    matched = any(_nonguard_matches(patch, patch_result) > 0
                  for patch, patch_result in per_patch)

    if args.in_place:
        for name, file_result in result.files.items():
            if file_result.changed and name in paths:
                paths[name].write_text(file_result.text, encoding="utf-8",
                                       errors="surrogateescape")
                print(f"rewrote {name}", file=sys.stderr)
        return 0 if matched else 1

    diff = result.diff()
    if diff:
        # escaped bytes from surrogateescape reads are not printable; show
        # them as replacement characters without touching the real files
        sys.stdout.write(diff.encode("utf-8", "replace").decode("utf-8"))
    return 0 if matched else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
