"""``repro-spatch`` — an ``spatch``-like command line driver.

Usage examples::

    repro-spatch --sp-file instrument.cocci src/              # print a diff
    repro-spatch --sp-file translate.cocci --in-place src/    # rewrite files
    repro-spatch --sp-file rules.cocci --c++=17 file.cpp
    repro-spatch --cookbook cuda_to_hip --jobs 4 src/cuda/    # built-in patch
    repro-spatch --sp-file a.cocci --sp-file b.cocci src/     # batch pipeline
    repro-spatch --cookbook full_modernization src/           # whole cookbook
    repro-spatch --cookbook cuda_to_hip --incremental .state src/   # reuse
    repro-spatch --sp-file a.cocci --watch --in-place src/    # edit-apply loop
    repro-spatch --patch-file ops.json src/                   # machine patch
    repro-spatch --patch-file edit.ap --patch-file fix.diff src/
    repro-spatch --list-cookbook

``--incremental STATE_FILE`` persists the run's result (plus the parse-tree
cache) and, on the next invocation with the *same* patches and options,
re-runs only the files whose content hash changed — the rest splice their
cached results, byte-identical to a cold run.  The patch list is diffed
too: an invocation whose ``--sp-file``/``--cookbook`` list shares a leading
prefix with the persisted run's (say, one appended patch) splices the
prefix results and re-runs only the suffix patches.  A state file with no
shared patch prefix or changed options degrades to a cold run, never to a
wrong one.  ``--watch`` keeps the process alive, polling the targets *and*
the ``--sp-file`` patches (mtime+size, then content) and re-applying
incrementally on every change — editing a patch file mid-session re-runs
only the patches from the edit onward.

Mirrors the spatch options the paper's listings mention (``--c++[=N]``,
``--jobs``) plus a few conveniences (``--report``, ``--in-place``,
``--profile``, built-in cookbook patches).  ``--sp-file`` and ``--cookbook``
are repeatable: given more than one patch, they run as a single
:class:`~repro.api.PatchSet` pipeline pass, in command-line order —
equivalent to, but faster than, chaining one invocation per patch.

``--patch-file FILE`` accepts the machine-patch frontends — a structural
JSON operation array, an 'ap' snippet/anchor locator document, or
SEARCH/REPLACE blocks (SmPL works too); the format is auto-detected and
the flag is repeatable and order-interleaved with ``--sp-file`` /
``--cookbook``.  See :mod:`repro.frontends`.

Exit status follows spatch conventions, and the contract is strict so
machine callers can branch on it:

* **0** — the patch matched at least one site;
* **1** — everything ran and nothing matched;
* **2** — the run itself failed: usage errors, a missing target, a
  missing or unparsable ``--sp-file``/``--patch-file`` (one-line
  ``file:line: message`` diagnostic on stderr, never a traceback), or a
  server-side patch-build error (byte-identical diagnostic to the local
  one).

Matches of pure idempotence-guard rules (``depends on !guard``
suppressors, which fire exactly when a file is already modernized) do not
count as "matched", so re-running an in-place modernization exits 1 once
there is nothing left to do.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys
import time

from .. import __version__
from ..api import C_SUFFIXES, CodeBase, PatchSet, SemanticPatch
from ..errors import PatchFileError, ReproError, patch_error_line
from ..obs import registry as _obs
from ..obs import trace as _trace
from ..obs.journal import open_journal
from ..options import SpatchOptions
from ..server.protocol import (dumps as json_line, nonguard_matches,
                               options_payload, profile_payload,
                               result_payload)
from ..server.watch import BACKENDS

#: pseudo cookbook name expanding to the whole-cookbook pipeline preset
FULL_PIPELINE = "full_modernization"


#: name -> zero-argument builder of a cookbook patch
def _cookbook_builders():
    from ..cookbook import builders

    return builders()


class _PatchArg(argparse.Action):
    """Append ``(kind, value)`` to one shared list so interleaved
    ``--sp-file``/``--cookbook``/``--patch-file`` flags keep their
    command-line order — pipelines are order-sensitive, so the order the
    user wrote is the order that runs."""

    KINDS = {"--cookbook": "cookbook", "--patch-file": "patch_file"}

    def __call__(self, parser, namespace, values, option_string=None):
        items = list(getattr(namespace, self.dest, None) or [])
        kind = self.KINDS.get(option_string, "sp_file")
        items.append((kind, values))
        setattr(namespace, self.dest, items)


def _parse_jobs(value: str):
    if value == "auto":
        return "auto"
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs expects a positive integer or 'auto', got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError("--jobs must be >= 1")
    return jobs


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spatch",
        description="Apply semantic patches to C/C++ sources (Coccinelle-style).")
    parser.add_argument("targets", nargs="*",
                        help="source files or directories to transform")
    parser.add_argument("--sp-file", "--cocci-file", dest="patch_args",
                        action=_PatchArg, default=[], metavar="SP_FILE",
                        help="semantic patch file to apply (repeatable: "
                             "several patches, --cookbook included, run as "
                             "one pipeline pass in command-line order)")
    parser.add_argument("--cookbook", dest="patch_args",
                        action=_PatchArg, default=[], metavar="NAME",
                        help="apply a built-in cookbook patch by name "
                             "(repeatable, same ordered pipeline as "
                             "--sp-file; 'full_modernization' expands to "
                             "the whole cookbook)")
    parser.add_argument("--patch-file", dest="patch_args",
                        action=_PatchArg, default=[], metavar="FILE",
                        help="machine-patch file to apply: a JSON operation "
                             "array, an 'ap' snippet/anchor document or "
                             "SEARCH/REPLACE blocks — format auto-detected "
                             "(SmPL included); repeatable and "
                             "order-interleaved with --sp-file/--cookbook")
    parser.add_argument("--list-cookbook", action="store_true",
                        help="list built-in cookbook patches and exit")
    parser.add_argument("--c++", dest="cxx", nargs="?", const="17", default=None,
                        metavar="N", help="enable the C++ front end (optionally a level)")
    parser.add_argument("--in-place", action="store_true",
                        help="rewrite the target files instead of printing a diff")
    parser.add_argument("--report", action="store_true",
                        help="print per-rule match statistics")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable result payload "
                             "(the same schema the server protocol uses) "
                             "instead of a diff")
    parser.add_argument("--server", metavar="ADDR", default=None,
                        help="apply through a running repro-spatchd at ADDR "
                             "(unix:PATH or HOST:PORT) instead of "
                             "in-process: same diffs, same exit codes, warm "
                             "server caches")
    parser.add_argument("--workspace", metavar="NAME", default=None,
                        help="server workspace to use with --server "
                             "(default: a stable name derived from the "
                             "target paths, so repeated invocations share "
                             "warm state)")
    parser.add_argument("--no-isos", action="store_true",
                        help="disable the built-in isomorphisms")
    parser.add_argument("--jobs", "-j", type=_parse_jobs, default=1, metavar="N",
                        help="apply files in N parallel worker processes "
                             "('auto' = one per CPU)")
    parser.add_argument("--no-prefilter", action="store_true",
                        help="disable the required-token prefilter and parse "
                             "every file")
    parser.add_argument("--incremental", metavar="STATE_FILE", default=None,
                        help="persist this run's result (and parse cache) to "
                             "STATE_FILE and, when it already holds a prior "
                             "run of the same patches and options, re-run "
                             "only content-changed files")
    parser.add_argument("--memo-dir", metavar="DIR", default=None,
                        help="content-addressed transform memo directory: "
                             "every (file state, patch) session outcome is "
                             "stored by content hash + patch fingerprint, so "
                             "repeated invocations (and duplicated files "
                             "within one run) skip transforms whose result "
                             "is already known, byte-identically")
    parser.add_argument("--memo-prune", action="store_true",
                        help="one-shot GC of --memo-dir: delete entries past "
                             "--memo-max-mb/--memo-max-age (oldest first), "
                             "print a summary, and exit")
    parser.add_argument("--memo-max-mb", type=float, default=None,
                        metavar="MB",
                        help="with --memo-prune: keep the memo directory "
                             "under MB megabytes (oldest entries go first)")
    parser.add_argument("--memo-max-age", type=float, default=None,
                        metavar="SECONDS",
                        help="with --memo-prune: delete memo entries older "
                             "than SECONDS")
    parser.add_argument("--auth-token", metavar="TOKEN", default=None,
                        help="with --server over TCP: shared-secret token "
                             "presented in the protocol hello (daemons "
                             "started with --auth-token refuse TCP clients "
                             "without it)")
    parser.add_argument("--watch", action="store_true",
                        help="stay alive after the first application: poll "
                             "the targets for changes (mtime+size, then "
                             "content) and re-apply incrementally")
    parser.add_argument("--watch-interval", type=float, default=0.5,
                        metavar="SECONDS",
                        help="poll period for --watch (default 0.5s)")
    parser.add_argument("--watch-polls", type=int, default=None, metavar="N",
                        help="with --watch: exit once the targets have been "
                             "quiet for N consecutive polls (default: run "
                             "until interrupted)")
    parser.add_argument("--watch-backend", choices=BACKENDS, default="auto",
                        metavar="NAME",
                        help="change-detection backend for --watch: auto "
                             "(watchdog if importable, else inotify, else "
                             "poll), watchdog, inotify or poll; the "
                             "REPRO_WATCH_BACKEND environment variable "
                             "overrides 'auto'")
    parser.add_argument("--profile", action="store_true",
                        help="print a timing/skip-rate breakdown to stderr")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON of the run's "
                             "phase spans (parse, prefilter, match, "
                             "transform, memo, splice) to FILE — open it in "
                             "chrome://tracing or Perfetto")
    parser.add_argument("--journal", metavar="FILE", default=None,
                        help="append structured JSONL telemetry events "
                             "(one per --watch iteration) to FILE")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--verbose", action="store_true")
    return parser


def _load_patch_file(kind: str, value: str,
                     options: SpatchOptions) -> SemanticPatch:
    """One ``--sp-file``/``--patch-file`` argument as a patch, with every
    read/parse failure normalized to a :class:`~repro.errors.PatchFileError`
    carrying a one-line ``file:line: message`` diagnostic.  The diagnostic
    names the file's *basename* on parse errors — the same name a server
    patch spec carries — so local and remote error lines are byte-identical."""
    loader = SemanticPatch.from_path if kind == "sp_file" \
        else SemanticPatch.from_patch_file
    try:
        return loader(value, options=options)
    except OSError as exc:
        raise PatchFileError(patch_error_line(value, exc)) from None
    except ReproError as exc:
        raise PatchFileError(
            patch_error_line(pathlib.Path(value).name, exc)) from None


def _build_patches(patch_args: list[tuple[str, str]],
                   options: SpatchOptions) -> list[SemanticPatch]:
    """The ordered patch list an interleaved ``--sp-file``/``--cookbook``/
    ``--patch-file`` argument list names (re-callable: the watch loop
    rebuilds it whenever a patch file changes on disk).  Raises
    ``ValueError`` on an unknown cookbook name and
    :class:`~repro.errors.PatchFileError` on an unreadable or unparsable
    patch file."""
    patches: list[SemanticPatch] = []
    builders = _cookbook_builders()
    for kind, value in patch_args:
        if kind in ("sp_file", "patch_file"):
            patches.append(_load_patch_file(kind, value, options))
        elif value == FULL_PIPELINE:
            from ..cookbook import full_modernization_pipeline

            patches.extend(full_modernization_pipeline())
        elif value in builders:
            patches.append(builders[value]())
        else:
            raise ValueError(f"unknown cookbook patch {value!r}; "
                             f"use --list-cookbook to see the available ones")
    return patches


def _print_counter_lines(codebase: CodeBase, memo=None) -> None:
    """The cache/prefilter counters ``--profile`` surfaces beyond the run's
    own stats: process-wide parse-cache traffic (hits/misses/dedup waits/
    evictions), token-index scan reuse, the compiled-matcher counters and —
    with ``--memo-dir`` — the transform memo's two-tier traffic."""
    from ..engine.cache import DEFAULT_TREE_CACHE
    from ..engine.compile import matcher_counters

    cache = DEFAULT_TREE_CACHE.counters()
    print(f"# parse cache (process): {cache['entries']}/"
          f"{cache['max_entries']} entries, {cache['hits']} hit(s), "
          f"{cache['misses']} miss(es), {cache['dedup_waits']} dedup "
          f"wait(s), {cache['evictions']} eviction(s)", file=sys.stderr)
    token_index = codebase._token_index
    if token_index is not None:
        counters = token_index.counters()
        print(f"# token index: {counters['scan_hits']} cached scan(s) "
              f"reused, {counters['scan_misses']} fresh scan(s)",
              file=sys.stderr)
    matcher = matcher_counters()
    print(f"# matcher (process): {matcher['rules_compiled']} rule(s) "
          f"compiled, {matcher['rules_fallback']} interpreted fallback(s), "
          f"{matcher['compile_cache_hits']} compile-cache hit(s), "
          f"{matcher['match_calls']} match call(s)", file=sys.stderr)
    print(f"# matcher candidates: {matcher['candidates_filtered']} of "
          f"{matcher['candidates_filtered'] + matcher['candidates_visited']} "
          f"pruned ({100.0 * matcher['filter_rate']:.1f}%), "
          f"{matcher['trees_indexed']} tree(s) indexed, "
          f"{matcher['index_reuses']} index reuse(s)", file=sys.stderr)
    if memo is not None:
        counters = memo.counters()
        print(f"# transform memo: {counters['hits']} hit(s) "
              f"({counters['disk_hits']} from disk), {counters['misses']} "
              f"miss(es), {counters['stores']} store(s), "
              f"{counters['entries']} entr(ies) in memory", file=sys.stderr)


def _print_json(result, patches: list[SemanticPatch], codebase: CodeBase,
                *, profile: bool, memo=None) -> None:
    """Emit the machine-readable payload — the exact serialization the
    server's ``apply`` response uses, so local and remote runs compare
    byte-for-byte on the deterministic sections."""
    from ..engine.cache import DEFAULT_TREE_CACHE

    payload = result_payload(result, patches)
    if profile:
        payload["profile"] = profile_payload(result,
                                             cache=DEFAULT_TREE_CACHE,
                                             token_index=codebase._token_index,
                                             memo=memo)
    sys.stdout.write(json_line(payload) + "\n")


def _load_codebase(targets: list[str], missing_ok: bool = False,
                   ) -> tuple[CodeBase, dict[str, pathlib.Path]]:
    files: dict[str, str] = {}
    paths: dict[str, pathlib.Path] = {}
    for target in targets:
        path = pathlib.Path(target)
        if path.is_dir():
            sub = CodeBase.from_dir(path)
            for name, text in sub.items():
                key = str(path / name)
                files[key] = text
                paths[key] = path / name
        elif path.is_file():
            # tolerate Latin-1 comments and other stray bytes in HPC trees;
            # surrogateescape lets --in-place write the original bytes back
            files[str(path)] = path.read_text(encoding="utf-8",
                                              errors="surrogateescape")
            paths[str(path)] = path
        elif not missing_ok:  # a watch-loop rescan tolerates deleted targets
            print(f"repro-spatch: no such file or directory: {target}",
                  file=sys.stderr)
            raise SystemExit(2)
    return CodeBase.from_files(files), paths


def _stat_targets(targets: list[str]) -> dict[str, tuple[int, int]]:
    """``path -> (mtime_ns, size)`` for every watched source file: the cheap
    first stage of change detection (content hashes decide what re-runs)."""
    entries: dict[str, tuple[int, int]] = {}
    for target in targets:
        path = pathlib.Path(target)
        candidates = (entry for entry in sorted(path.rglob("*"))
                      if entry.is_file() and entry.suffix in C_SUFFIXES) \
            if path.is_dir() else (path,)
        for entry in candidates:
            try:
                stat = entry.stat()
            except OSError:
                continue
            entries[str(entry)] = (stat.st_mtime_ns, stat.st_size)
    return entries


def _stat_patch_files(patch_args: list[tuple[str, str]],
                      ) -> dict[str, tuple[int, int]]:
    """``path -> (mtime_ns, size)`` for every ``--sp-file``/``--patch-file``
    patch: --watch polls the patch list as well as the sources, so editing a
    patch file mid-session re-applies it (cookbook patches are in-process
    constants and cannot change under us)."""
    entries: dict[str, tuple[int, int]] = {}
    for kind, value in patch_args:
        if kind not in ("sp_file", "patch_file"):
            continue
        try:
            stat = pathlib.Path(value).stat()
        except OSError:
            continue
        entries[value] = (stat.st_mtime_ns, stat.st_size)
    return entries


def _refresh_codebase(codebase: CodeBase, paths: dict[str, pathlib.Path],
                      targets: list[str]) -> list[str]:
    """Fold the targets' on-disk state into ``codebase`` (through the
    index-maintaining accessors) and return the names that actually changed
    content — added, updated or removed."""
    fresh, fresh_paths = _load_codebase(targets, missing_ok=True)
    delta: list[str] = []
    for name, text in fresh.items():
        if name not in codebase or codebase[name] != text:
            codebase[name] = text
            delta.append(name)
    for name in [name for name in codebase.names() if name not in fresh]:
        del codebase[name]
        delta.append(name)
    paths.clear()
    paths.update(fresh_paths)
    return delta


def main(argv: list[str] | None = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    if args.list_cookbook:
        for name in sorted([*_cookbook_builders(), FULL_PIPELINE]):
            print(name)
        return 0

    if args.memo_prune:
        if not args.memo_dir:
            parser.error("--memo-prune needs --memo-dir")
            return 2
        if args.memo_max_mb is None and args.memo_max_age is None:
            parser.error("--memo-prune needs --memo-max-mb and/or "
                         "--memo-max-age")
            return 2
        from ..engine.memo import TransformMemo

        max_bytes = int(args.memo_max_mb * 1024 * 1024) \
            if args.memo_max_mb is not None else None
        summary = TransformMemo(path=args.memo_dir).prune(
            max_bytes=max_bytes, max_age=args.memo_max_age)
        print(f"memo-prune: scanned {summary['scanned']} entries "
              f"({summary['scanned_bytes']} bytes), removed "
              f"{summary['removed']} ({summary['removed_bytes']} bytes)",
              file=sys.stderr)
        return 0

    options = SpatchOptions(
        cxx=int(args.cxx) if args.cxx is not None else None,
        apply_isomorphisms=not args.no_isos,
        verbose=args.verbose,
    )

    tracer = None
    if args.trace and not _obs.enabled():
        print("# trace: telemetry is disabled (REPRO_OBS); no trace will "
              "be written", file=sys.stderr)
    elif args.trace:
        tracer = _trace.start_trace("repro-spatch")
    journal = open_journal(args.journal)
    try:
        return _run(parser, args, options, journal)
    finally:
        if tracer is not None:
            _write_trace(args.trace, tracer)
        if journal is not None:
            journal.close()


def _write_trace(path: str, tracer) -> None:
    """Finish the CLI's root span and write the Chrome trace-event JSON
    (``chrome://tracing`` / Perfetto load it directly)."""
    root = tracer.finish()
    events = _trace.chrome_trace_events(root.to_payload())
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                      handle)
    except OSError as exc:
        print(f"# trace: could not write {path}: {exc}", file=sys.stderr)
        return
    print(f"# trace: wrote {len(events)} event(s) to {path}",
          file=sys.stderr)


def _run(parser, args, options: SpatchOptions, journal=None) -> int:
    """The post-parsing CLI flow (telemetry sinks already set up)."""
    if args.json and args.watch:
        parser.error("--json cannot be combined with --watch")
        return 2
    if args.server:
        if args.watch or args.incremental:
            parser.error("--server cannot be combined with --watch or "
                         "--incremental (the daemon owns the warm state)")
        if not args.patch_args:
            parser.error("one of --sp-file, --patch-file or --cookbook is "
                         "required")
        if not args.targets:
            parser.error("no target files or directories given")
        return _remote_main(args, options)

    try:
        patches = _build_patches(args.patch_args, options)
    except ValueError as exc:
        parser.error(str(exc))
        return 2
    except (ReproError, OSError) as exc:
        # a missing or unparsable patch file is a *usage*-class failure:
        # exit 2 with a one-line diagnostic, never 1 (which means "matched
        # nothing") and never a traceback
        print(f"repro-spatch: error: {exc}", file=sys.stderr)
        return 2
    if not patches:
        parser.error("one of --sp-file, --patch-file or --cookbook is "
                     "required")
        return 2

    if not args.targets:
        parser.error("no target files or directories given")
        return 2

    codebase, paths = _load_codebase(args.targets)

    # --memo-dir: a disk-backed transform memo; its persistent tier is what
    # lets a fresh process warm-start from a previous invocation's sessions
    memo = None
    if args.memo_dir:
        from ..engine.memo import TransformMemo

        memo = TransformMemo(path=args.memo_dir)

    # --incremental: a prior state seeds the run; a stale/foreign one is
    # detected by the engine's fingerprint check and degrades to a cold run
    since = None
    if args.incremental:
        from ..engine.cache import DEFAULT_TREE_CACHE
        from ..engine.incremental import PipelineState

        state = PipelineState.load(args.incremental)
        if state is not None:
            since = state.result
            DEFAULT_TREE_CACHE.restore(state.cache_entries)

    result, per_patch = _apply(patches, codebase, args, since, memo=memo)
    _save_state(args, result)

    if args.report or args.verbose:
        summary = result.summary()
        print(f"# files: {summary['files']}  changed: {summary['changed_files']}  "
              f"matches: {summary['matches']}  +{summary['lines_added']} "
              f"-{summary['lines_removed']}", file=sys.stderr)
        for file_result in result:
            for rule_report in file_result.rule_reports:
                print(f"#   {file_result.filename}: rule {rule_report.rule} -> "
                      f"{rule_report.matches} match(es)", file=sys.stderr)

    if args.profile and result.stats is not None:
        print("# --- profile ---", file=sys.stderr)
        for line in result.stats.describe().splitlines():
            print(f"# {line}", file=sys.stderr)
        if getattr(result, "incremental", None) is not None:
            print(f"# {result.incremental.describe()}", file=sys.stderr)
        _print_counter_lines(codebase, memo=memo)

    # guard-rule matches mean "already modernized, stood down", not "the
    # patch applied": they must not turn a no-op re-run into exit 0
    matched = any(nonguard_matches(patch, patch_result) > 0
                  for patch, patch_result in per_patch)

    if args.json:
        _print_json(result, [patch for patch, _ in per_patch], codebase,
                    profile=args.profile, memo=memo)
        rewritten = _emit_output(result, result.files, paths, args) \
            if args.in_place else []
    else:
        rewritten = _emit_output(result, result.files, paths, args)
    if not args.watch:
        return 0 if matched else 1
    _fold_rewrites(codebase, result, rewritten)
    return _watch_loop(args, options, patches, codebase, paths, result,
                       matched, memo, journal=journal)


def _apply(patches: list[SemanticPatch], codebase: CodeBase, args,
           since=None, memo=None):
    """One application pass; incremental/watch/memo runs always go through
    the PatchSet pipeline so the result carries reuse records (the memo
    lives at the pipeline's patch boundaries)."""
    if len(patches) == 1 and since is None and memo is None \
            and not (args.incremental or args.watch):
        result = patches[0].apply(codebase, jobs=args.jobs,
                                  prefilter=not args.no_prefilter)
        return result, [(patches[0], result)]
    result = PatchSet(patches).apply(codebase, jobs=args.jobs,
                                     prefilter=not args.no_prefilter,
                                     since=since, memo=memo)
    return result, list(zip(patches, result.per_patch))


def _save_state(args, result) -> None:
    if not args.incremental or not hasattr(result, "records"):
        return
    from ..engine.cache import DEFAULT_TREE_CACHE
    from ..engine.incremental import PipelineState

    PipelineState(result=result,
                  cache_entries=DEFAULT_TREE_CACHE.snapshot()) \
        .save(args.incremental)


def _remote_specs(patch_args: list[tuple[str, str]]) -> list[dict]:
    """Wire patch specs for --server mode: sp-files ship as inline SMPL and
    --patch-file inputs as their detected frontend kind (read locally,
    parsed server-side — no shared filesystem needed), cookbook patches by
    name (validated server-side).  Unreadable files and undetectable
    formats raise :class:`~repro.errors.PatchFileError` with the same
    one-line diagnostic the in-process path prints."""
    from ..frontends import detect_format

    specs: list[dict] = []
    for kind, value in patch_args:
        if kind in ("sp_file", "patch_file"):
            path = pathlib.Path(value)
            try:
                text = path.read_text(encoding="utf-8",
                                      errors="surrogateescape")
            except OSError as exc:
                raise PatchFileError(patch_error_line(value, exc)) from None
            if kind == "sp_file":
                wire_kind = "smpl"
            else:
                try:
                    wire_kind = detect_format(text, path.name)
                except ReproError as exc:
                    raise PatchFileError(
                        patch_error_line(path.name, exc)) from None
            specs.append({"kind": wire_kind, "name": path.name, "text": text})
        else:
            specs.append({"kind": "cookbook", "name": value})
    return specs


def _default_workspace_name(targets: list[str]) -> str:
    """A stable workspace name per target set, so repeated invocations over
    the same tree land on the same warm server state."""
    digest = hashlib.sha1("\0".join(
        str(pathlib.Path(target).resolve()) for target in targets
    ).encode("utf-8", "surrogatepass")).hexdigest()[:16]
    return f"cli-{digest}"


def _remote_main(args, options: SpatchOptions) -> int:
    """The --server flow: sync the local tree by content-hash delta, apply
    on the daemon's warm workspace, and emit the same diffs / reports /
    exit codes a local run would."""
    from ..server.client import ConnectionLost, RemoteClient, RemoteError

    try:
        specs = _remote_specs(args.patch_args)
    except (ReproError, OSError) as exc:
        print(f"repro-spatch: error: {exc}", file=sys.stderr)
        return 2
    codebase, paths = _load_codebase(args.targets)
    workspace = args.workspace or _default_workspace_name(args.targets)
    # one CLI invocation = one trace: every request of every attempt
    # carries this id (the daemon echoes it back, its journal records it),
    # so a retried or failed run is greppable end to end
    tracer = None
    if _obs.enabled() and not _trace.tracing_active():
        tracer = _trace.start_trace("spatch-remote")
    try:
        return _remote_run(args, options, codebase, paths, workspace, specs)
    finally:
        # an in-process caller (tests, library embedding) must not inherit
        # this invocation's trace as its ambient context
        if tracer is not None:
            tracer.finish()


def _remote_run(args, options: SpatchOptions, codebase, paths,
                workspace: str, specs) -> int:
    from ..server.client import ConnectionLost, RemoteClient, RemoteError

    trace_tag = (f" [trace {_trace.current_trace_id()}]"
                 if _trace.current_trace_id() else "")

    def one_attempt() -> dict:
        # the whole flow is idempotent (content-hash sync, stateless apply
        # verb), so a retry redoes connect+open+sync+apply from scratch
        with RemoteClient(args.server, token=args.auth_token) as client:
            client.open_workspace(workspace)
            client.sync_codebase(workspace, codebase)
            return client.request(
                "apply", workspace=workspace, patches=specs,
                options=options_payload(options), jobs=args.jobs,
                prefilter=not args.no_prefilter,
                diff=args.json or not args.in_place,
                texts=args.in_place or None, profile=args.profile or None)

    payload = None
    for attempt in range(2):
        try:
            payload = one_attempt()
            break
        except (ConnectionLost, ConnectionRefusedError, OSError) as exc:
            # transient transport failures (daemon restarting, socket
            # reset mid-request) get one retry after a short backoff;
            # server-reported errors (RemoteError) never do
            if attempt == 0:
                delay = 0.25 * (2 ** attempt)
                print(f"repro-spatch: server: {exc}; retrying in "
                      f"{delay:.2f}s{trace_tag}", file=sys.stderr)
                time.sleep(delay)
                continue
            print(f"repro-spatch: server: {exc}{trace_tag}",
                  file=sys.stderr)
            return 2
        except RemoteError as exc:
            if exc.kind == "bad-patch":
                # a patch-build failure: the envelope's message is the same
                # one-line file:line diagnostic the in-process path prints,
                # so local and remote runs fail byte-identically
                print(f"repro-spatch: error: {exc.message}", file=sys.stderr)
            else:
                tag = f" [trace {exc.trace}]" if exc.trace else trace_tag
                print(f"repro-spatch: server: {exc}{tag}", file=sys.stderr)
            return 2

    if args.report or args.verbose:
        summary = payload["summary"]
        print(f"# files: {summary['files']}  "
              f"changed: {summary['changed_files']}  "
              f"matches: {summary['matches']}  +{summary['lines_added']} "
              f"-{summary['lines_removed']}", file=sys.stderr)
        for name, entry in payload["files"].items():
            for report in entry["rules"]:
                print(f"#   {name}: rule {report['rule']} -> "
                      f"{report['matches']} match(es)", file=sys.stderr)
    if args.profile and "profile" in payload:
        print("# --- profile (server) ---", file=sys.stderr)
        for line in json.dumps(payload["profile"], indent=1,
                               sort_keys=True).splitlines():
            print(f"# {line}", file=sys.stderr)

    if args.json:
        sys.stdout.write(json_line(payload) + "\n")
    if args.in_place:
        for name in codebase.names():
            entry = payload["files"].get(name)
            if entry and entry.get("changed") and "text" in entry \
                    and name in paths:
                paths[name].write_text(entry["text"], encoding="utf-8",
                                       errors="surrogateescape")
                print(f"rewrote {name}", file=sys.stderr)
    elif not args.json:
        # diffs in the *local* load order, exactly as a local run prints
        diff = "".join(payload["files"][name].get("diff", "")
                       for name in codebase.names()
                       if name in payload["files"])
        if diff:
            sys.stdout.write(diff.encode("utf-8", "replace").decode("utf-8"))
    return payload["exit_status"]


def _emit_output(result, names, paths, args) -> list[str]:
    """Write the per-file outcomes: rewrite in place (returning the names
    rewritten), or print the unified diff of ``names`` (a watch round only
    shows the files it touched)."""
    rewritten: list[str] = []
    if args.in_place:
        for name in names:
            file_result = result.files.get(name)
            if file_result is not None and file_result.changed \
                    and name in paths:
                paths[name].write_text(file_result.text, encoding="utf-8",
                                       errors="surrogateescape")
                print(f"rewrote {name}", file=sys.stderr)
                rewritten.append(name)
        return rewritten
    diff = "".join(result.files[name].diff() for name in names
                   if name in result.files)
    if diff:
        # escaped bytes from surrogateescape reads are not printable; show
        # them as replacement characters without touching the real files
        sys.stdout.write(diff.encode("utf-8", "replace").decode("utf-8"))
    return rewritten


def _fold_rewrites(codebase: CodeBase, result, rewritten: list[str]) -> None:
    """Fold our own in-place rewrites into the watch baseline *from memory*
    (we know exactly what we wrote): the next poll then sees our output as
    unchanged, while an external edit racing in — even to the same file —
    still differs from the baseline and re-runs.  Re-reading the whole tree
    here instead would swallow any edit that landed since the stat sweep.

    The prior result's records still hash the rewrites' *inputs*, so the
    next triggered round re-runs the folded files once over their rewritten
    text — exactly what a cold in-place re-invocation would do: a no-op for
    idempotent patches (all of the cookbook), a re-application for
    non-idempotent ones, though only files in that round's delta are ever
    written back.  From then on the records hold the rewritten hashes and
    the files splice."""
    for name in rewritten:
        codebase[name] = result.files[name].text


def _watch_loop(args, options: SpatchOptions, patches: list[SemanticPatch],
                codebase: CodeBase, paths: dict[str, pathlib.Path],
                result, matched: bool, memo=None, journal=None) -> int:
    """Poll the targets *and* the sp-files, re-applying incrementally on
    every content change.

    Change detection is two-staged: a cheap stat sweep (mtime_ns + size)
    gates the re-read, and the engine's content hashes decide which files
    actually re-run — a ``touch`` without a content change re-runs nothing.
    An edited sp-file rebuilds the patch list and re-applies with the prior
    result as ``since=``: the engine splices the unchanged patch-list
    prefix and re-runs only the suffix patches; only files whose *output*
    changed are emitted (or rewritten), so a patch edit never rewrites
    files it did not affect.  An sp-file that fails to parse mid-edit is
    reported and the round skipped (the old patches stay active until the
    next successful save).  With ``--watch-polls N`` the loop exits after N
    consecutive quiet polls (the testing/scripting hook); by default it
    runs until interrupted.

    The wait between sweeps goes through a pluggable backend
    (``--watch-backend``): watchdog or inotify block on real filesystem
    events, so a change is noticed in milliseconds instead of at the next
    poll tick, while the portable fallback just sleeps the interval.  The
    sweep still runs either way — a backend can only improve latency,
    never correctness.
    """
    from ..server.watch import create_watcher

    watched = args.targets + [value for kind, value in args.patch_args
                              if kind in ("sp_file", "patch_file")]
    watcher = create_watcher(watched, backend=args.watch_backend)
    try:
        return _watch_rounds(args, options, patches, codebase, paths,
                             result, matched, watcher, memo, journal)
    finally:
        watcher.close()


def _journal_watch_round(journal, result, round_seconds: float) -> None:
    """One structured event per --watch iteration: what changed, what
    spliced, what the memo answered, and the round's wall time — the
    journal twin of the human-readable ``# watch:`` stderr line."""
    if journal is None:
        return
    inc = result.incremental
    stats = getattr(result, "stats", None)
    journal.emit(
        "watch_round", trace=_trace.current_trace_id(),
        files_changed=inc.files_changed, files_added=inc.files_added,
        files_reused=inc.files_reused, files_dropped=inc.files_dropped,
        patches_reused=inc.patches_reused, patches_total=inc.patches_total,
        fallback=inc.fallback, matches=result.total_matches,
        memo_hits=getattr(stats, "memo_hits", None),
        wall_seconds=round(round_seconds, 6))


def _watch_rounds(args, options: SpatchOptions,
                  patches: list[SemanticPatch], codebase: CodeBase,
                  paths: dict[str, pathlib.Path], result, matched: bool,
                  watcher, memo=None, journal=None) -> int:
    src_before = _stat_targets(args.targets)
    patch_before = _stat_patch_files(args.patch_args)
    quiet_polls = 0
    while args.watch_polls is None or quiet_polls < args.watch_polls:
        watcher.wait(max(args.watch_interval, 0.01))
        src_now = _stat_targets(args.targets)
        patch_now = _stat_patch_files(args.patch_args)
        if src_now == src_before and patch_now == patch_before:
            quiet_polls += 1
            continue
        patches_stale = patch_now != patch_before
        sources_stale = src_now != src_before
        src_before, patch_before = src_now, patch_now
        quiet_polls = 0
        # the stat sweep gates the re-read: an sp-file-only edit must not
        # re-read a large source tree that provably did not change
        delta = _refresh_codebase(codebase, paths, args.targets) \
            if sources_stale else []
        if patches_stale:
            try:
                patches = _build_patches(args.patch_args, options)
            except (ValueError, ReproError, OSError) as exc:
                # one-line file:line diagnostic, same format as the cold
                # path's exit-2 message; the old patches stay active until
                # the next successful save
                print(f"# watch: patch file unreadable, keeping the previous "
                      f"patches ({exc})", file=sys.stderr)
                patches_stale = False
        if not delta and not patches_stale:
            continue  # e.g. a touch that left the contents identical
        previous = result
        round_started = time.monotonic()
        result, per_patch = _apply(patches, codebase, args, since=result,
                                   memo=memo)
        _save_state(args, result)
        _journal_watch_round(journal, result,
                             time.monotonic() - round_started)
        inc = result.incremental
        line = (f"# watch: {inc.files_changed} changed + {inc.files_added} "
                f"added re-run, {inc.files_reused} reused, "
                f"{inc.files_dropped} dropped")
        if inc.fallback is None and inc.patches_reused < inc.patches_total:
            line += (f", patch prefix {inc.patches_reused}/"
                     f"{inc.patches_total} spliced")
        elif inc.fallback is not None:
            line += " (cold: " + inc.fallback + ")"
        print(f"{line} -> {result.total_matches} match(es)", file=sys.stderr)
        matched = matched or any(nonguard_matches(patch, patch_result) > 0
                                 for patch, patch_result in per_patch)
        emit = [name for name in delta if name in result.files]
        if patches_stale:
            # a patch edit can change any file's outcome: emit exactly the
            # files whose *output* differs from the previous round's
            emit += [name for name in result.files if name not in delta
                     and (previous.files.get(name) is None
                          or previous.files[name].text
                          != result.files[name].text)]
        rewritten = _emit_output(result, emit, paths, args)
        _fold_rewrites(codebase, result, rewritten)
    return 0 if matched else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
