"""``repro-spatchd`` — serve the patch-application service.

Usage examples::

    repro-spatchd --listen unix:/tmp/spatchd.sock
    repro-spatchd --listen 127.0.0.1:7878 --max-workspaces 16
    repro-spatchd --listen unix:/tmp/spatchd.sock --workspace-root proj=src/

Clients connect with ``repro-spatch --server ADDR ...`` (same flags, same
diffs, same exit codes as a local run, but against the daemon's warm
caches) or programmatically via
:class:`~repro.server.client.RemoteClient`.  The protocol and workspace
lifecycle are documented in :mod:`repro.server` and the README's "Server
mode" section.
"""

from __future__ import annotations

import argparse
import sys

from .. import __version__
from ..engine.memo import DEFAULT_MEMO_ENTRIES
from ..server.daemon import serve
from ..server.service import PatchService
from ..server.watch import BACKENDS


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spatchd",
        description="Persistent patch-application daemon (warm caches, "
                    "workspace sessions, JSON wire protocol).")
    parser.add_argument("--listen", required=True, metavar="ADDR",
                        help="address to serve: unix:PATH or HOST:PORT "
                             "(HOST defaults to 127.0.0.1; PORT 0 picks a "
                             "free port)")
    parser.add_argument("--max-workspaces", type=int, default=8, metavar="N",
                        help="LRU bound on concurrently warm workspaces "
                             "(default 8)")
    parser.add_argument("--cache-entries", type=int, default=512, metavar="N",
                        help="parse-tree cache entries per workspace "
                             "(default 512)")
    parser.add_argument("--memo-dir", default=None, metavar="DIR",
                        help="persistent tier for the fleet-wide transform "
                             "memo: content-addressed entry files that let a "
                             "restarted daemon warm-start from a previous "
                             "run's sessions (default: memory tier only)")
    parser.add_argument("--memo-entries", type=int,
                        default=DEFAULT_MEMO_ENTRIES, metavar="N",
                        help="in-memory transform-memo entries shared across "
                             "all workspaces (default "
                             f"{DEFAULT_MEMO_ENTRIES})")
    parser.add_argument("--jobs", default=1, metavar="N",
                        help="default worker processes per apply request "
                             "(requests may override; default 1 — parallel "
                             "clients are the expected scaling axis)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="apply-fleet worker processes: each workspace "
                             "is pinned to one worker, so N workers serve N "
                             "concurrent applies across workspaces (default "
                             "1: in-process execution)")
    parser.add_argument("--state-root", default=None, metavar="DIR",
                        help="snapshot workspaces (files, last result, parse "
                             "cache) to DIR after every apply and restore "
                             "them lazily after a restart (default: state "
                             "dies with the process)")
    parser.add_argument("--auth-token", default=None, metavar="TOKEN",
                        help="shared-secret token TCP clients must present "
                             "in their hello before any other verb "
                             "(unix sockets stay auth-free)")
    parser.add_argument("--memo-max-mb", type=float, default=None,
                        metavar="MB",
                        help="size bound for the --memo-dir disk tier: GC "
                             "prunes oldest entries past this every 64 "
                             "applies (default: unbounded)")
    parser.add_argument("--memo-max-age", type=float, default=None,
                        metavar="SECONDS",
                        help="age bound for --memo-dir entries, enforced by "
                             "the same GC (default: unbounded)")
    parser.add_argument("--workspace-root", action="append", default=[],
                        metavar="NAME=DIR",
                        help="pre-open a workspace mirroring a server-side "
                             "directory (repeatable)")
    parser.add_argument("--watch-roots", action="store_true",
                        help="auto-refresh pre-opened workspace roots via a "
                             "filesystem watcher")
    parser.add_argument("--watch-backend", choices=BACKENDS, default="auto",
                        help="watcher backend for --watch-roots (default "
                             "auto: watchdog if importable, else inotify, "
                             "else polling)")
    parser.add_argument("--metrics", default=None, metavar="ADDR",
                        help="serve a stdlib-only Prometheus endpoint at "
                             "ADDR (HOST:PORT; PORT 0 picks a free port): "
                             "GET /metrics scrapes the engine's metrics "
                             "registry, GET /healthz is a liveness probe")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="append one structured JSONL event per request "
                             "to FILE (size-rotated once to FILE.1 at 16 "
                             "MiB)")
    parser.add_argument("--slow-ms", type=float, default=None, metavar="N",
                        help="log requests slower than N milliseconds to "
                             "stderr (and as slow_request journal events)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--verbose", action="store_true",
                        help="log request tracebacks to stderr")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    try:
        jobs = args.jobs if args.jobs == "auto" else int(args.jobs)
    except ValueError:
        parser.error(f"--jobs expects an integer or 'auto', got {args.jobs!r}")
        return 2

    log = (lambda message: print(f"spatchd: {message}", file=sys.stderr,
                                 flush=True)) if args.verbose else None
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
        return 2
    if (args.memo_max_mb is not None or args.memo_max_age is not None) \
            and args.memo_dir is None:
        parser.error("--memo-max-mb/--memo-max-age need --memo-dir")
        return 2
    service = PatchService(max_workspaces=args.max_workspaces,
                           cache_entries=args.cache_entries,
                           default_jobs=jobs, log=log,
                           memo_entries=args.memo_entries,
                           memo_dir=args.memo_dir,
                           workers=args.workers,
                           state_root=args.state_root,
                           memo_max_bytes=int(args.memo_max_mb * 1024 * 1024)
                           if args.memo_max_mb is not None else None,
                           memo_max_age=args.memo_max_age)
    for entry in args.workspace_root:
        name, sep, root = entry.partition("=")
        if not sep or not name or not root:
            parser.error(f"--workspace-root expects NAME=DIR, got {entry!r}")
            return 2
        service.open_workspace(name, root=root, watch=args.watch_roots,
                               watch_backend=args.watch_backend)
        print(f"spatchd: opened workspace {name!r} from {root}",
              file=sys.stderr, flush=True)

    try:
        return serve(args.listen, service, verbose=args.verbose,
                     auth_token=args.auth_token, metrics=args.metrics,
                     journal=args.journal, slow_ms=args.slow_ms)
    except (OSError, ValueError) as exc:
        # bad --listen address (ProtocolError is a ValueError), socket in
        # use, permissions: usage-style failures, spatch-convention exit 2
        print(f"repro-spatchd: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
