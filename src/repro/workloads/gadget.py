"""GADGET-like synthetic workload: AoS particle arrays and 3-D grids.

The paper's AoS→SoA case study ([ML21]) rewrote accesses to the particle
array of the GADGET cosmological code.  This generator produces a code base
with the same shape:

* one header defining ``struct particle`` and the global particle array,
* several translation units, each with many OpenMP loops reading and writing
  particle fields through ``P[expr].field`` / ``P[expr].field[dim]``
  accesses,
* optional 3-D grid arrays accessed with chained subscripts
  (``rho[i][j][k]``), which are the target of the mdspan use case.
"""

from __future__ import annotations

import random

from ..api import CodeBase
from ..errors import WorkloadError


HEADER_NAME = "particles.h"

STRUCT_FIELDS = (
    ("double", "pos", 3),
    ("double", "vel", 3),
    ("double", "acc", 3),
    ("double", "mass", 0),
    ("double", "density", 0),
    ("double", "energy", 0),
    ("int", "type", 0),
)


def header(n_particles: int = 4096, grid: int = 32) -> str:
    fields = "\n".join(
        f"    {ctype} {name}" + (f"[{dim}]" if dim else "") + ";"
        for ctype, name, dim in STRUCT_FIELDS)
    return f"""\
#ifndef PARTICLES_H
#define PARTICLES_H

#define NPART {n_particles}
#define NGRID {grid}

struct particle {{
{fields}
}};

extern struct particle P[NPART];
extern double rho[NGRID][NGRID][NGRID];
extern double phi[NGRID][NGRID][NGRID];

#endif
"""


_SCALAR_FIELDS = [f for f in STRUCT_FIELDS if f[2] == 0 and f[0] == "double"]
_VECTOR_FIELDS = [f for f in STRUCT_FIELDS if f[2] == 3]


def _particle_loop(rng: random.Random, index: int) -> str:
    """One OpenMP loop over particles mixing scalar and vector field accesses."""
    scalar = rng.choice(_SCALAR_FIELDS)[1]
    scalar2 = rng.choice(_SCALAR_FIELDS)[1]
    vector = rng.choice(_VECTOR_FIELDS)[1]
    vector2 = rng.choice(_VECTOR_FIELDS)[1]
    dt = rng.choice(["dt", "0.5 * dt", "dt * dt"])
    kind = rng.randrange(3)
    name = f"update_{vector}_{scalar}_{index}"
    if kind == 0:
        body = f"""\
        for (int d = 0; d < 3; d++) {{
            P[i].{vector}[d] = P[i].{vector}[d] + {dt} * P[i].{vector2}[d];
        }}
        P[i].{scalar} = P[i].{scalar} + {dt} * P[i].{scalar2};"""
    elif kind == 1:
        body = f"""\
        double w = P[i].{scalar} * P[i].{scalar2};
        P[i].{vector}[0] = w * P[i].{vector2}[0];
        P[i].{vector}[1] = w * P[i].{vector2}[1];
        P[i].{vector}[2] = w * P[i].{vector2}[2];"""
    else:
        body = f"""\
        P[i].{scalar} = P[i].{vector}[0] * P[i].{vector}[0]
                      + P[i].{vector}[1] * P[i].{vector}[1]
                      + P[i].{vector}[2] * P[i].{vector}[2];"""
    return f"""\
void {name}(int n, double dt)
{{
    #pragma omp parallel
    {{
    #pragma omp for
    for (int i = 0; i < n; i++) {{
{body}
    }}
    }}
}}
"""


def _grid_kernel(rng: random.Random, index: int) -> str:
    """A 3-D grid stencil using chained subscripts (mdspan rewrite target)."""
    coeff = rng.choice(["0.125", "0.25", "0.5"])
    return f"""\
void smooth_rho_{index}(void)
{{
    for (int i = 1; i < NGRID - 1; i++) {{
        for (int j = 1; j < NGRID - 1; j++) {{
            for (int kk = 1; kk < NGRID - 1; kk++) {{
                phi[i][j][kk] = {coeff} * (rho[i - 1][j][kk] + rho[i + 1][j][kk])
                              + {coeff} * (rho[i][j - 1][kk] + rho[i][j + 1][kk])
                              - rho[i][j][kk];
            }}
        }}
    }}
}}
"""


def _reduction_kernel(rng: random.Random, index: int) -> str:
    scalar = rng.choice(_SCALAR_FIELDS)[1]
    return f"""\
double total_{scalar}_{index}(int n)
{{
    double total = 0.0;
    #pragma omp parallel for reduction(+:total)
    for (int i = 0; i < n; i++) {{
        total += P[i].{scalar};
    }}
    return total;
}}
"""


def generate(n_files: int = 4, loops_per_file: int = 8, grid_kernels_per_file: int = 2,
             n_particles: int = 4096, seed: int = 0) -> CodeBase:
    """Generate the GADGET-like code base."""
    if n_files < 1 or loops_per_file < 0:
        raise WorkloadError("n_files must be >= 1 and loops_per_file >= 0")
    rng = random.Random(seed)
    files = {HEADER_NAME: header(n_particles=n_particles)}
    files["globals.c"] = f"""\
#include "{HEADER_NAME}"

struct particle P[NPART];
double rho[NGRID][NGRID][NGRID];
double phi[NGRID][NGRID][NGRID];
"""
    counter = 0
    for f in range(n_files):
        chunks = [f'#include <omp.h>\n#include "{HEADER_NAME}"\n']
        for _ in range(loops_per_file):
            chunks.append(_particle_loop(rng, counter))
            counter += 1
            if counter % 3 == 0:
                chunks.append(_reduction_kernel(rng, counter))
        for _ in range(grid_kernels_per_file):
            chunks.append(_grid_kernel(rng, counter))
            counter += 1
        files[f"timestep_{f}.c"] = "\n".join(chunks)
    return CodeBase.from_files(files)


def aos_access_count(codebase: CodeBase) -> int:
    """Count textual occurrences of ``P[...].field`` accesses (ground truth
    for the AoS→SoA benchmark: after the transformation there must be none)."""
    import re

    pattern = re.compile(r"\bP\s*\[[^]]*\]\s*\.")
    return sum(len(pattern.findall(text)) for text in codebase.files.values())


def chained_3d_subscript_count(codebase: CodeBase) -> int:
    """Count ``name[a][b][c]`` chained *accesses* to the grid arrays (their
    declarations keep the chained form — only expressions are rewritten)."""
    import re

    pattern = re.compile(r"\b(?:rho|phi)\s*\[[^]]+\]\s*\[[^]]+\]\s*\[[^]]+\]")
    decl = re.compile(r"^\s*(extern\s+)?double\s")
    count = 0
    for text in codebase.files.values():
        for line in text.splitlines():
            if decl.match(line):
                continue
            count += len(pattern.findall(line))
    return count
