"""Generic OpenMP numeric kernels.

This is the instrumentation / declare-variant target: several translation
units, each containing a mix of

* functions whose name contains ``kernel`` (the declare-variant rule's regex
  target) with simple vectorisable loops,
* OpenMP regions written as ``#pragma omp ...`` followed by a braced block
  (the shape the paper's LIKWID rule instruments),
* OpenMP worksharing loops *without* a braced block (which the rule must
  leave alone),
* helper functions with no pragmas at all.
"""

from __future__ import annotations

import random

from ..api import CodeBase
from ..errors import WorkloadError


_OPS = ["+", "*", "-"]


def _kernel_function(rng: random.Random, index: int) -> str:
    op = rng.choice(_OPS)
    a, b = rng.choice([("x", "y"), ("a", "b"), ("u", "v")])
    name = f"axpy_kernel_{index}" if index % 2 == 0 else f"stencil_kernel_{index}"
    return f"""\
double {name}(int n, double alpha, const double *{a}, double *{b})
{{
    double checksum = 0.0;
    for (int i = 0; i < n; i++) {{
        {b}[i] = alpha {op} {a}[i] + {b}[i];
        checksum += {b}[i];
    }}
    return checksum;
}}
"""


def _braced_region(rng: random.Random, index: int) -> str:
    schedule = rng.choice(["", " schedule(static)", " schedule(dynamic, 64)"])
    return f"""\
void relax_region_{index}(int n, double *grid, double omega)
{{
    #pragma omp parallel{schedule}
    {{
        int tid = omp_get_thread_num();
        #pragma omp for
        for (int i = 1; i < n - 1; i++) {{
            grid[i] = omega * (grid[i - 1] + grid[i + 1]) * 0.5;
        }}
    }}
}}
"""


def _unbraced_loop(rng: random.Random, index: int) -> str:
    return f"""\
void scale_all_{index}(int n, double *data, double factor)
{{
    #pragma omp parallel for
    for (int i = 0; i < n; i++)
        data[i] = factor * data[i];
}}
"""


def _helper(rng: random.Random, index: int) -> str:
    return f"""\
static double clamp_{index}(double value, double lo, double hi)
{{
    if (value < lo) {{
        return lo;
    }}
    if (value > hi) {{
        return hi;
    }}
    return value;
}}
"""


def generate(n_files: int = 4, kernels_per_file: int = 4, regions_per_file: int = 3,
             seed: int = 0) -> CodeBase:
    """Generate the OpenMP kernels code base."""
    if n_files < 1:
        raise WorkloadError("n_files must be >= 1")
    rng = random.Random(seed)
    files: dict[str, str] = {}
    counter = 0
    for f in range(n_files):
        chunks = ["#include <stdio.h>\n#include <omp.h>\n"]
        for _ in range(kernels_per_file):
            chunks.append(_kernel_function(rng, counter))
            counter += 1
        for _ in range(regions_per_file):
            chunks.append(_braced_region(rng, counter))
            chunks.append(_unbraced_loop(rng, counter))
            chunks.append(_helper(rng, counter))
            counter += 1
        files[f"kernels_{f}.c"] = "\n".join(chunks)
    return CodeBase.from_files(files)


def braced_region_count(codebase: CodeBase) -> int:
    """Number of ``#pragma omp`` lines directly followed by a '{' line — the
    sites the instrumentation rule must hit (ground truth for E1)."""
    count = 0
    for text in codebase.files.values():
        lines = [ln.strip() for ln in text.splitlines()]
        for i, line in enumerate(lines[:-1]):
            if line.startswith("#pragma omp") and lines[i + 1].startswith("{"):
                count += 1
    return count


def kernel_function_count(codebase: CodeBase) -> int:
    """Number of functions whose name matches the declare-variant regex."""
    import re

    pattern = re.compile(r"^\w[\w *]*\s(\w*kernel\w*)\s*\(", re.MULTILINE)
    return sum(len(pattern.findall(text)) for text in codebase.files.values())
