"""Synthetic HPC code bases used by the examples, tests and benchmarks.

Each generator is deterministic for a given seed and produces a
:class:`repro.CodeBase` whose shape mirrors the code the paper refers to:

===================  ==========================================================
module               stands in for
===================  ==========================================================
``gadget``           the GADGET cosmological code (AoS particle arrays, many
                     OpenMP loops over particle properties, 3-D grids)
``openmp_kernels``   generic OpenMP numeric kernels (instrumentation target,
                     declare-variant target)
``multiversion_app`` a library with ``__attribute__((target(...)))`` clones
``unrolled``         script-generated manually unrolled kernels (plus impostor
                     sequences that look unrolled but are not)
``cuda_app``         a CUDA mini-application (kernels, chevron launches,
                     cuRAND/cuBLAS calls, CUDA types)
``openacc_app``      an OpenACC mini-application (directives with clause
                     lists, line continuations)
``rawloops``         C++ code with raw search/accumulate loops
``kokkos_exercise``  the loops of Kokkos tutorial exercise 01
``librsb_like``      LIBRSB-style generated sparse kernels following the
                     ``rsb__BCSR_...`` naming convention
===================  ==========================================================
"""

from . import (
    cuda_app,
    gadget,
    kokkos_exercise,
    librsb_like,
    multiversion_app,
    openacc_app,
    openmp_kernels,
    rawloops,
    unrolled,
)

__all__ = [
    "cuda_app", "gadget", "kokkos_exercise", "librsb_like", "multiversion_app",
    "openacc_app", "openmp_kernels", "rawloops", "unrolled",
]
