"""LIBRSB-style generated sparse kernels.

The compiler-workaround use case selects, out of a few hundred generated
kernels, the dozen whose names match the affected-function naming convention
``rsb__BCSR_spmv_sasa_double_complex_[CH]__t[NTC]_r1_c1_uu_s[HS]_dE_uG``.
This generator emits kernels over the cross product of type / transposition /
symmetry / conjugation codes so that exactly the expected subset matches.
"""

from __future__ import annotations

import itertools
import re

from ..api import CodeBase
from ..errors import WorkloadError
from ..cookbook.compiler_workaround import LIBRSB_AFFECTED_REGEX


TYPES = ("double", "float", "double_complex", "float_complex")
OPERATIONS = ("spmv_uaua", "spmv_sasa", "spmv_uxua", "spsv_uxua")
STORAGE = ("C", "H")
TRANS = ("N", "T", "C")
SYMMETRY = ("S", "H", "G")


def _kernel_name(op: str, ctype: str, storage: str, trans: str, sym: str) -> str:
    return f"rsb__BCSR_{op}_{ctype}_{storage}__t{trans}_r1_c1_uu_s{sym}_dE_uG"


def _kernel_source(name: str, ctype: str) -> str:
    scalar = "double" if "double" in ctype else "float"
    conj = "-" if "complex" in ctype else ""
    return f"""\
static int {name}(const {scalar} *VA, const {scalar} *rhs, {scalar} *out,
                  const int *bindx, int nnz)
{{
    int k;
    for (k = 0; k < nnz; ++k) {{
        out[bindx[k]] += {conj}VA[k] * rhs[bindx[k]];
    }}
    return 0;
}}
"""


def generate(n_files: int = 2, seed: int = 0,
             combos_per_file: int | None = None) -> CodeBase:
    """Generate the LIBRSB-like kernel library.

    The full cross product is 4*4*2*3*3 = 288 kernels; they are distributed
    round-robin over ``n_files`` files (``combos_per_file`` caps the total for
    smaller test runs).
    """
    if n_files < 1:
        raise WorkloadError("n_files must be >= 1")
    combos = list(itertools.product(OPERATIONS, TYPES, STORAGE, TRANS, SYMMETRY))
    if combos_per_file is not None:
        combos = combos[: combos_per_file * n_files]
    buckets: list[list[str]] = [[] for _ in range(n_files)]
    for idx, (op, ctype, storage, trans, sym) in enumerate(combos):
        name = _kernel_name(op, ctype, storage, trans, sym)
        buckets[idx % n_files].append(_kernel_source(name, ctype))
    files: dict[str, str] = {}
    for f, bucket in enumerate(buckets):
        files[f"rsb_krn_{f}.c"] = ("#include <stdlib.h>\n\n" + "\n".join(bucket))
    return CodeBase.from_files(files)


def affected_kernel_count(codebase: CodeBase,
                          regex: str = LIBRSB_AFFECTED_REGEX) -> int:
    """Number of kernels matching the affected-function regex (ground truth
    for E11; the paper reports "a dozen functions among a few hundred")."""
    pattern = re.compile(regex)
    count = 0
    for text in codebase.files.values():
        for line in text.splitlines():
            if line.startswith("static int rsb__") and pattern.search(line):
                count += 1
    return count


def total_kernel_count(codebase: CodeBase) -> int:
    return sum(text.count("static int rsb__BCSR_") for text in codebase.files.values())
