"""A library with ``__attribute__((target(...)))`` function clones.

This is the target of the bloat-removal use case (and the post-state of the
multiversioning use case): for every base function there is a ``"default"``
version plus clones specialised for a configurable set of ISAs; some
functions additionally exist only in the default version (and must not be
touched by the cleanup rules).
"""

from __future__ import annotations

import random

from ..api import CodeBase
from ..errors import WorkloadError


DEFAULT_ARCHS = ("avx2", "avx512")


def _function_body(rng: random.Random, name: str) -> str:
    op = rng.choice(["+", "*"])
    return f"""\
{{
    double acc = 0.0;
    for (int i = 0; i < n; i++) {{
        acc += a[i] {op} b[i];
    }}
    return acc;
}}"""


def _clone_set(rng: random.Random, index: int, archs: tuple[str, ...]) -> str:
    name = f"blas_op_{index}"
    signature = f"double {name}(const double *a, const double *b, int n)"
    chunks = [f'__attribute__((target("default")))\n{signature}\n'
              f"{_function_body(rng, name)}\n"]
    for arch in archs:
        chunks.append(f'__attribute__((target("{arch}")))\n{signature}\n'
                      f"{_function_body(rng, name)}\n")
    return "\n".join(chunks)


def _default_only(rng: random.Random, index: int) -> str:
    name = f"io_helper_{index}"
    return f"""\
__attribute__((target("default")))
double {name}(const double *a, const double *b, int n)
{_function_body(rng, name)}
"""


def _plain_kernel(rng: random.Random, index: int) -> str:
    name = f"plain_kernel_{index}"
    return f"""\
double {name}(const double *a, const double *b, int n)
{_function_body(rng, name)}
"""


def generate(n_files: int = 3, clone_sets_per_file: int = 4,
             archs: tuple[str, ...] = DEFAULT_ARCHS, seed: int = 0) -> CodeBase:
    """Generate the multiversioned library."""
    if n_files < 1:
        raise WorkloadError("n_files must be >= 1")
    rng = random.Random(seed)
    files: dict[str, str] = {}
    counter = 0
    for f in range(n_files):
        chunks = ["#include <stddef.h>\n"]
        for _ in range(clone_sets_per_file):
            chunks.append(_clone_set(rng, counter, archs))
            counter += 1
        chunks.append(_default_only(rng, counter))
        chunks.append(_plain_kernel(rng, counter))
        counter += 1
        files[f"multiversion_{f}.c"] = "\n".join(chunks)
    return CodeBase.from_files(files)


def clone_count(codebase: CodeBase, archs: tuple[str, ...] = DEFAULT_ARCHS) -> int:
    """Number of arch-specialised clones present (ground truth for E4)."""
    count = 0
    for text in codebase.files.values():
        for arch in archs:
            count += text.count(f'__attribute__((target("{arch}")))')
    return count


def default_attr_count(codebase: CodeBase) -> int:
    return sum(text.count('__attribute__((target("default")))')
               for text in codebase.files.values())
