"""C++ code with raw search loops (the STL-modernisation target).

Each file contains functions following the raw-loop idiom the paper's
``std::find`` rule targets (flag + range-for + equality test + break), with
variations: some print diagnostics inside the loop (deleted by the rule's
``...``), some compare ``k == elem`` instead of ``elem == k`` (matched through
the disjunction), and some loops that must NOT be rewritten because they do
more than searching (e.g. they also count elements).
"""

from __future__ import annotations

import random

from ..api import CodeBase
from ..errors import WorkloadError


PREAMBLE = """\
#include <iostream>
#include <vector>
"""


def _search_function(rng: random.Random, index: int) -> str:
    flag = rng.choice(["found", "present", "hit"])
    elem = rng.choice(["value", "item", "entry"])
    container = rng.choice(["samples", "ids", "cells"])
    constant = rng.choice(["42", "7", "1000"])
    reversed_cmp = index % 3 == 1
    cmp = f"{constant} == {elem}" if reversed_cmp else f"{elem} == {constant}"
    diag = ""
    if index % 2 == 0:
        diag = f'        std::cout << "match in {container}" << std::endl;\n'
    return f"""\
bool contains_{index}(std::vector<int> &{container})
{{
    bool {flag} = false;
    int visited_{index} = 0;
    for ( int &{elem} : {container} )
      if ( {cmp} )
      {{
{diag}        {flag} = true;
        break;
      }}
    return {flag};
}}
"""


def _counting_function(rng: random.Random, index: int) -> str:
    """A loop that looks similar but also counts matches — outside the rule's
    pattern (no break), so it must be preserved."""
    return f"""\
int count_matches_{index}(std::vector<int> &values)
{{
    bool seen = false;
    int count = 0;
    for ( int &v : values )
      if ( v == 42 )
      {{
        seen = true;
        count = count + 1;
      }}
    return count;
}}
"""


def generate(n_files: int = 3, searches_per_file: int = 5, counters_per_file: int = 2,
             seed: int = 0) -> CodeBase:
    """Generate the raw-loops code base."""
    if n_files < 1:
        raise WorkloadError("n_files must be >= 1")
    rng = random.Random(seed)
    files: dict[str, str] = {}
    counter = 0
    for f in range(n_files):
        chunks = [PREAMBLE]
        for _ in range(searches_per_file):
            chunks.append(_search_function(rng, counter))
            counter += 1
        for _ in range(counters_per_file):
            chunks.append(_counting_function(rng, counter))
            counter += 1
        files[f"search_{f}.cpp"] = "\n".join(chunks)
    return CodeBase.from_files(files)


def raw_search_count(codebase: CodeBase) -> int:
    """Number of rewritable raw search loops (ground truth for E9)."""
    return sum(text.count("bool contains_") for text in codebase.files.values())


def preserved_loop_count(codebase: CodeBase) -> int:
    return sum(text.count("int count_matches_") for text in codebase.files.values())
