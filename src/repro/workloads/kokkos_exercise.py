"""The loops of Kokkos tutorial exercise 01 (reconstruction).

The paper's Kokkos use case targets a specific exercise of the Kokkos
tutorials (``Exercises/01/Begin/exercise_1_begin.cpp``): initialisation loops
over index variables ``i`` and ``j`` and a ``result +=`` reduction loop, plus
other loops that must be left untouched.  This module reconstructs a file of
the same shape (without the proprietary tutorial text) and can replicate it
over several translation units for scaling experiments.
"""

from __future__ import annotations

from ..api import CodeBase
from ..errors import WorkloadError


EXERCISE_TEMPLATE = """\
#include <cmath>
#include <cstdio>
#include <cstdlib>

int run_exercise_{index}(int argc, char *argv[])
{{
    int N = {n};
    int M = {m};
    int nrepeat = 100;

    double *y = (double *)malloc(N * sizeof(double));
    double *x = (double *)malloc(M * sizeof(double));
    double *A = (double *)malloc(N * M * sizeof(double));

    for (int i = 0; i < N; ++i) {{ y[i] = 1.0; }}
    for (int i = 0; i < M; ++i) {{ x[i] = 1.0; }}
    for (int j = 0; j < N * M; ++j) {{ A[j] = 1.0; }}

    double result = 0.0;
    for (int repeat = 0; repeat < nrepeat; repeat++) {{
        for (int i = 0; i < N; ++i) {{ result += y[i] * x[i % M]; }}
    }}

    const double solution = (double)N * (double)M;
    if (result != solution * nrepeat) {{
        printf("  Error: result( %lf ) != solution( %lf )\\n", result, solution);
    }}

    free(A);
    free(x);
    free(y);
    return 0;
}}
"""


def generate(n_files: int = 1, n: int = 4096, m: int = 1024, seed: int = 0) -> CodeBase:
    """Generate ``n_files`` copies of the exercise (seed kept for interface
    uniformity; the exercise itself is deterministic)."""
    if n_files < 1:
        raise WorkloadError("n_files must be >= 1")
    files: dict[str, str] = {}
    for index in range(n_files):
        files[f"exercise_1_{index}.cpp"] = EXERCISE_TEMPLATE.format(index=index, n=n, m=m)
    return CodeBase.from_files(files)


def transformable_loop_count(codebase: CodeBase) -> int:
    """Loops with index variable ``i`` or ``j`` and a simple upper bound — the
    ones rules r1/r3 are meant to capture (3 per exercise file: two inits and
    one reduction; the ``repeat`` loop and the ``i % M`` inner bound keep the
    count at 4 candidate header matches of which 4 have i/j indices)."""
    count = 0
    for text in codebase.files.values():
        for line in text.splitlines():
            stripped = line.strip()
            if stripped.startswith("for (int i = 0;") or stripped.startswith("for (int j = 0;"):
                count += 1
    return count
