"""A CUDA mini-application (the CUDA→HIP translation target).

Contains the elements the paper's CUDA→HIP rules must handle:

* CUDA runtime calls (``cudaMalloc``/``cudaMemcpy``/...),
* cuRAND / cuBLAS calls (dictionary-driven function renaming),
* CUDA types in declarations (``cudaStream_t``, ``curandState``, ``__half``),
* triple-chevron kernel launches, including launches split across lines and
  an identifier (``cudart_like_helper``) whose *substring* matches a CUDA
  API name — the adversarial cases on which the textual baseline mis-fires
  (experiment Q2).
"""

from __future__ import annotations

import random

from ..api import CodeBase
from ..errors import WorkloadError


PREAMBLE = """\
#include <cuda_runtime.h>
#include <curand_kernel.h>
#include <cublas_v2.h>
#include <stdio.h>

#define CHECK(x) x
"""


def _kernel_def(rng: random.Random, index: int) -> str:
    op = rng.choice(["+", "*"])
    return f"""\
__global__ void saxpy_kernel_{index}(double *y, const double *x, double a, int n)
{{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {{
        y[i] = a {op} x[i] + y[i];
    }}
}}
"""


def _host_driver(rng: random.Random, index: int, adversarial: bool) -> str:
    nblocks = rng.choice(["(n + 255) / 256", "n / 128", "grid_size"])
    launch = (f"saxpy_kernel_{index}<<<{nblocks}, 256, 0, stream>>>(dev_y, dev_x, alpha, n);")
    if adversarial and index % 2 == 0:
        # the launch configuration split across lines: a line-oriented tool
        # sees no complete '<<<...>>>(...)' on any single line
        launch = (f"saxpy_kernel_{index}<<<{nblocks},\n"
                  f"                   256, 0, stream>>>(dev_y,\n"
                  f"                   dev_x, alpha, n);")
    extra = ""
    if adversarial and index % 3 == 0:
        extra = """\
    /* cudaMalloc is discussed in this comment and must stay untouched */
    int cudart_like_helper_cudaMalloc_count = 0;
    cudart_like_helper_cudaMalloc_count++;
"""
    return f"""\
int run_saxpy_{index}(double *host_y, const double *host_x, double alpha, int n, int grid_size)
{{
    double *dev_x;
    double *dev_y;
    cudaStream_t stream;
    cudaError_t status;
{extra}\
    CHECK(cudaStreamCreate(&stream));
    CHECK(cudaMalloc(&dev_x, n * sizeof(double)));
    CHECK(cudaMalloc(&dev_y, n * sizeof(double)));
    CHECK(cudaMemcpy(dev_x, host_x, n * sizeof(double), cudaMemcpyHostToDevice));
    CHECK(cudaMemcpy(dev_y, host_y, n * sizeof(double), cudaMemcpyHostToDevice));
    {launch}
    status = cudaGetLastError();
    if (status != cudaSuccess) {{
        printf("cudaMemcpy or kernel launch failed: %s\\n", cudaGetErrorString(status));
    }}
    CHECK(cudaDeviceSynchronize());
    CHECK(cudaMemcpy(host_y, dev_y, n * sizeof(double), cudaMemcpyDeviceToHost));
    CHECK(cudaFree(dev_x));
    CHECK(cudaFree(dev_y));
    CHECK(cudaStreamDestroy(stream));
    return (int)status;
}}
"""


def _random_init(rng: random.Random, index: int) -> str:
    return f"""\
double sample_noise_{index}(unsigned long long seed)
{{
    curandState state;
    __half scratch;
    curand_init(seed, 0, 0, &state);
    double first = curand_uniform_double(&state);
    double second = curand_uniform_double(&state);
    return first + second;
}}
"""


def generate(n_files: int = 3, drivers_per_file: int = 3, adversarial: bool = True,
             seed: int = 0) -> CodeBase:
    """Generate the CUDA mini-application."""
    if n_files < 1:
        raise WorkloadError("n_files must be >= 1")
    rng = random.Random(seed)
    files: dict[str, str] = {}
    counter = 0
    for f in range(n_files):
        chunks = [PREAMBLE]
        for _ in range(drivers_per_file):
            chunks.append(_kernel_def(rng, counter))
            chunks.append(_host_driver(rng, counter, adversarial))
            counter += 1
        chunks.append(_random_init(rng, counter))
        files[f"cuda_app_{f}.cu"] = "\n".join(chunks)
    return CodeBase.from_files(files)


def kernel_launch_count(codebase: CodeBase) -> int:
    """Number of triple-chevron launches (ground truth for the chevron rule)."""
    return sum(text.count("<<<") for text in codebase.files.values())


def cuda_call_count(codebase: CodeBase, names: tuple[str, ...] = ("cudaMalloc", "cudaMemcpy",
                                                                  "cudaFree", "curand_uniform_double")) -> int:
    """Number of *call sites* of selected CUDA API functions (not counting
    occurrences inside comments or longer identifiers)."""
    import re

    count = 0
    for text in codebase.files.values():
        for name in names:
            count += len(re.findall(rf"(?<![\w_]){re.escape(name)}\s*\(", text))
    return count
