"""An OpenACC mini-application (the directive-translation target).

The files contain ``#pragma acc`` directives with realistic clause lists;
with ``adversarial=True`` some directives use backslash line continuations
and irregular spacing — which Coccinelle-style matching handles transparently
(the lexer merges continuations) while a naive line-oriented script breaks
(experiment Q2).
"""

from __future__ import annotations

import random

from ..api import CodeBase
from ..errors import WorkloadError


_DIRECTIVES = [
    "parallel loop copy(y[0:n]) copyin(x[0:n])",
    "kernels loop copyin(a[0:n]) copyout(b[0:n])",
    "parallel loop reduction(+:total) copyin(values[0:n])",
    "parallel loop collapse(2) present(grid)",
    "data copyin(x[0:n]) copyout(y[0:n])",
    "update device(coeffs[0:m])",
]


def _loop_function(rng: random.Random, index: int, adversarial: bool) -> str:
    directive = rng.choice(_DIRECTIVES[:4])
    if adversarial and index % 2 == 1:
        # split the clause list over two physical lines with a continuation
        words = directive.split()
        head = " ".join(words[:2])
        tail = " ".join(words[2:])
        pragma = f"    #pragma acc {head} \\\n        {tail}"
    else:
        pragma = f"    #pragma acc {directive}"
    body = rng.choice([
        "y[i] = alpha * x[i] + y[i];",
        "b[i] = a[i] * a[i];",
        "total += values[i];",
    ])
    decl = "double total = 0.0;\n    " if "total" in body else ""
    ret = "return total;" if "total" in body else "return 0.0;"
    return f"""\
double acc_loop_{index}(int n, double alpha, const double *x, double *y,
                        const double *a, double *b, const double *values)
{{
    {decl}{pragma}
    for (int i = 0; i < n; i++) {{
        {body}
    }}
    {ret}
}}
"""


def _data_region(rng: random.Random, index: int) -> str:
    return f"""\
void acc_pipeline_{index}(int n, double *x, double *y)
{{
    #pragma acc data copyin(x[0:n]) copyout(y[0:n])
    {{
        #pragma acc parallel loop
        for (int i = 0; i < n; i++) {{
            y[i] = 2.0 * x[i];
        }}
    }}
}}
"""


def generate(n_files: int = 3, loops_per_file: int = 5, adversarial: bool = True,
             seed: int = 0) -> CodeBase:
    """Generate the OpenACC mini-application."""
    if n_files < 1:
        raise WorkloadError("n_files must be >= 1")
    rng = random.Random(seed)
    files: dict[str, str] = {}
    counter = 0
    for f in range(n_files):
        chunks = ["#include <stdio.h>\n"]
        for _ in range(loops_per_file):
            chunks.append(_loop_function(rng, counter, adversarial))
            counter += 1
        chunks.append(_data_region(rng, counter))
        counter += 1
        files[f"acc_app_{f}.c"] = "\n".join(chunks)
    return CodeBase.from_files(files)


def acc_directive_count(codebase: CodeBase) -> int:
    """Number of OpenACC directives (counting a continued directive once)."""
    count = 0
    for text in codebase.files.values():
        count += text.count("#pragma acc")
    return count


def continued_directive_count(codebase: CodeBase) -> int:
    """Directives using backslash continuations (the adversarial subset)."""
    count = 0
    for text in codebase.files.values():
        for line in text.splitlines():
            if "#pragma acc" in line and line.rstrip().endswith("\\"):
                count += 1
    return count
