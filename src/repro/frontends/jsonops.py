"""Frontend: structural JSON operation arrays with ``old_hash`` verification.

The input is a JSON document carrying an ordered list of operations —
either a top-level array or ``{"operations": [...]}``.  Each operation is
an object::

    {"action": "replace",            // replace | delete | insert_after |
                                     // insert_before | rewrite_file
     "search": "old_call(x)",        // aliases: old, snippet, find
     "replace": "new_call(x)",       // aliases: new, with, replacement
     "anchor": "int main",           // optional unique scoping context
     "old_hash": "9f86d081",         // optional sha-256 hex prefix (>= 8)
     "file": "src/*.c",              // optional fnmatch glob scope
     "occurrence": 2}                // optional 1-based disambiguator

For insert actions the ``anchor`` key doubles as the insertion target when
no ``search`` is given — matching the common machine-emitted shape
``{"action": "insert_after", "anchor": "...", "replace": "..."}``.

Hashes pin the *exact matched span* (the whole old file for
``rewrite_file``); a mismatch is a stale-patch error, never a silent
misapplication.
"""

from __future__ import annotations

import json
from typing import Optional

from ..errors import FrontendParseError
from ..options import SpatchOptions
from .core import FrontendPatchAST, TextualOp, TextualRule

_ACTION_KEYS = ("action", "op", "type")
_SEARCH_KEYS = ("search", "old", "snippet", "find")
_REPLACE_KEYS = ("replace", "new", "with", "replacement", "text")
_FILE_KEYS = ("file", "path", "filename")
_OCCURRENCE_KEYS = ("occurrence", "index", "nth")
_HASH_KEYS = ("old_hash", "hash")
_KNOWN_KEYS = frozenset(_ACTION_KEYS + _SEARCH_KEYS + _REPLACE_KEYS + _FILE_KEYS
                        + _OCCURRENCE_KEYS + _HASH_KEYS + ("anchor",))


def _pick(obj: dict, keys: tuple[str, ...], default=""):
    for key in keys:
        if key in obj:
            return obj[key]
    return default


def _str_field(obj: dict, keys: tuple[str, ...], opno: int) -> str:
    value = _pick(obj, keys, "")
    if value is None:
        return ""
    if not isinstance(value, str):
        raise FrontendParseError(
            f"operation {opno}: field {keys[0]!r} must be a string, "
            f"got {type(value).__name__}")
    return value


def parse_jsonops(text: str, *, options: Optional[SpatchOptions] = None,
                  name: str = "<jsonops>") -> FrontendPatchAST:
    """Parse a JSON operation array into a frontend patch AST."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FrontendParseError(f"invalid JSON: {exc.msg}", line=exc.lineno) from None
    if isinstance(doc, dict):
        ops = doc.get("operations", doc.get("ops"))
        if ops is None:
            raise FrontendParseError(
                "JSON object carries no 'operations' array")
    else:
        ops = doc
    if not isinstance(ops, list):
        raise FrontendParseError(
            f"expected a JSON array of operations, got {type(ops).__name__}")
    if not ops:
        raise FrontendParseError("empty operation array")

    rules: list[TextualRule] = []
    for i, obj in enumerate(ops):
        opno = i + 1
        if not isinstance(obj, dict):
            raise FrontendParseError(
                f"operation {opno}: expected an object, got {type(obj).__name__}")
        unknown = sorted(set(obj) - _KNOWN_KEYS)
        if unknown:
            raise FrontendParseError(
                f"operation {opno}: unknown field(s) {', '.join(map(repr, unknown))}")
        action = _str_field(obj, _ACTION_KEYS, opno)
        if not action:
            raise FrontendParseError(f"operation {opno}: missing 'action'")
        action = action.strip().lower().replace("-", "_").replace(" ", "_")
        search = _str_field(obj, _SEARCH_KEYS, opno)
        anchor = _str_field(obj, ("anchor",), opno)
        if action.startswith("insert") and not search and anchor:
            search, anchor = anchor, ""
        occurrence = _pick(obj, _OCCURRENCE_KEYS, 0) or 0
        if not isinstance(occurrence, int) or isinstance(occurrence, bool):
            raise FrontendParseError(
                f"operation {opno}: 'occurrence' must be an integer")
        op = TextualOp(action=action,
                       search=search,
                       replacement=_str_field(obj, _REPLACE_KEYS, opno),
                       anchor=anchor,
                       old_hash=_str_field(obj, _HASH_KEYS, opno),
                       file=_str_field(obj, _FILE_KEYS, opno),
                       occurrence=occurrence)
        try:
            op.validate()
        except FrontendParseError as exc:
            raise FrontendParseError(f"operation {opno}: {exc.message}") from None
        rules.append(TextualRule(f"op{opno}", op))
    return FrontendPatchAST(rules, format="jsonops", options=options,
                            source_text=text)
