"""Frontend: 'ap'-style snippet/anchor locator documents.

The 'ap' format describes edits as *semantic locators* — a snippet of the
code to change plus an optional anchor giving unique context — in a small
YAML-shaped document parsed here with a dependency-free reader (this
repository deliberately has no third-party requirements)::

    changes:
      - file: src/util.c          # optional fnmatch scope
        action: REPLACE           # REPLACE | DELETE | INSERT_AFTER |
                                  # INSERT_BEFORE | REWRITE_FILE
        anchor: |                 # optional: must be unique; the snippet
          int frobnicate(         # is searched after it
        snippet: |
          return rc;
        with: |
          return normalize(rc);
      - action: DELETE
        snippet: 'debug_log("x");'
        occurrence: 2             # optional 1-based disambiguator
        old_hash: 9f86d081        # optional sha-256 prefix of the old span

Supported syntax: a top-level ``changes:`` list, ``- `` items holding flat
``key: value`` mappings, ``|`` block scalars (clip chomping — exactly one
trailing newline), single- and double-quoted scalars, full-line ``#``
comments and blank lines.  Locating is whitespace-resilient and ambiguity
is an error — see :mod:`repro.frontends.core` for the exact rules.
"""

from __future__ import annotations

from typing import Optional

from ..errors import FrontendParseError
from ..options import SpatchOptions
from .core import FrontendPatchAST, TextualOp, TextualRule

_FIELD_ALIASES = {
    "file": "file", "path": "file",
    "action": "action",
    "snippet": "search", "search": "search", "find": "search", "old": "search",
    "anchor": "anchor",
    "with": "replacement", "replacement": "replacement", "new": "replacement",
    "insert": "replacement", "text": "replacement",
    "occurrence": "occurrence", "index": "occurrence", "nth": "occurrence",
    "old_hash": "old_hash", "hash": "old_hash",
}

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "'": "'"}


def _indent_of(line: str) -> int:
    return len(line) - len(line.lstrip(" "))


def _unquote(value: str, lineno: int) -> str:
    value = value.strip()
    if len(value) >= 2 and value[0] == value[-1] and value[0] in ("'", '"'):
        body, quote = value[1:-1], value[0]
        if quote == "'":
            return body.replace("''", "'")
        out: list[str] = []
        i = 0
        while i < len(body):
            ch = body[i]
            if ch == "\\" and i + 1 < len(body):
                esc = body[i + 1]
                if esc not in _ESCAPES:
                    raise FrontendParseError(
                        f"unsupported escape \\{esc} in quoted scalar", line=lineno)
                out.append(_ESCAPES[esc])
                i += 2
            else:
                out.append(ch)
                i += 1
        return "".join(out)
    # plain scalar: trailing comments are not supported (a '#' is content)
    return value


class _Reader:
    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.pos = 0

    def peek(self) -> Optional[str]:
        while self.pos < len(self.lines):
            line = self.lines[self.pos]
            if not line.strip() or line.lstrip().startswith("#"):
                self.pos += 1
                continue
            return line
        return None

    @property
    def lineno(self) -> int:
        return self.pos + 1

    def read_block_scalar(self, field_indent: int, lineno: int) -> str:
        """Lines more indented than the field, dedented by the first line's
        indentation; clip chomping (exactly one trailing newline)."""
        block: list[str] = []
        base: Optional[int] = None
        while self.pos < len(self.lines):
            line = self.lines[self.pos]
            if not line.strip():
                block.append("")
                self.pos += 1
                continue
            indent = _indent_of(line)
            if indent <= field_indent:
                break
            if base is None:
                base = indent
            if indent < base:
                raise FrontendParseError(
                    "bad indentation inside block scalar", line=self.pos + 1)
            block.append(line[base:])
            self.pos += 1
        while block and not block[-1]:
            block.pop()
        if base is None:
            raise FrontendParseError("empty block scalar", line=lineno)
        return "\n".join(block) + "\n"


def parse_ap(text: str, *, options: Optional[SpatchOptions] = None,
             name: str = "<ap>") -> FrontendPatchAST:
    """Parse an 'ap' locator document into a frontend patch AST."""
    reader = _Reader(text)
    line = reader.peek()
    # tolerate scalar preamble keys (version:, description:) before changes:
    while line is not None and not line.strip().startswith("changes:"):
        stripped = line.strip()
        if _indent_of(line) != 0 or ":" not in stripped or stripped.startswith("- "):
            raise FrontendParseError(
                f"expected 'changes:' or a 'key: value' preamble line, "
                f"got {stripped!r}", line=reader.lineno)
        reader.pos += 1
        line = reader.peek()
    if line is None:
        raise FrontendParseError("document has no 'changes:' list")
    after = line.strip()[len("changes:"):].strip()
    if after:
        raise FrontendParseError(
            "'changes:' must be followed by an indented '- ' list",
            line=reader.lineno)
    reader.pos += 1

    rules: list[TextualRule] = []
    item_indent: Optional[int] = None
    while True:
        line = reader.peek()
        if line is None:
            break
        indent = _indent_of(line)
        stripped = line.strip()
        if not stripped.startswith("- "):
            raise FrontendParseError(
                f"expected a '- ' change item, got {stripped!r}", line=reader.lineno)
        if item_indent is None:
            item_indent = indent
        elif indent != item_indent:
            raise FrontendParseError(
                "inconsistent list indentation", line=reader.lineno)
        item_lineno = reader.lineno
        fields = _read_item(reader, line, indent)
        rules.append(_build_rule(fields, len(rules) + 1, item_lineno))
    if not rules:
        raise FrontendParseError("'changes:' list is empty")
    return FrontendPatchAST(rules, format="ap", options=options, source_text=text)


def _read_item(reader: _Reader, first_line: str, item_indent: int) -> dict:
    """One ``- `` item: its inline ``key: value`` plus the continued mapping
    lines indented past the dash."""
    fields: dict[str, tuple[str, int]] = {}
    field_indent = item_indent + 2
    # rewrite '- key: value' as a field line at the continued indentation
    inline = " " * field_indent + first_line.strip()[2:]
    reader.lines[reader.pos] = inline
    while True:
        line = reader.peek()
        if line is None:
            break
        indent = _indent_of(line)
        stripped = line.strip()
        if indent < field_indent or stripped.startswith("- "):
            break
        if indent != field_indent:
            raise FrontendParseError(
                f"bad field indentation (expected {field_indent} spaces)",
                line=reader.lineno)
        if ":" not in stripped:
            raise FrontendParseError(
                f"expected 'key: value', got {stripped!r}", line=reader.lineno)
        key, _, value = stripped.partition(":")
        key = key.strip().lower()
        value = value.strip()
        lineno = reader.lineno
        if key not in _FIELD_ALIASES:
            raise FrontendParseError(
                f"unknown change field {key!r}", line=lineno)
        reader.pos += 1
        if value == "|" or value == "|-":
            scalar = reader.read_block_scalar(field_indent, lineno)
            if value == "|-":
                scalar = scalar.rstrip("\n")
        elif value == "":
            raise FrontendParseError(
                f"field {key!r} has no value (use '|' for a block scalar)",
                line=lineno)
        else:
            scalar = _unquote(value, lineno)
        canonical = _FIELD_ALIASES[key]
        if canonical in fields:
            raise FrontendParseError(
                f"duplicate field {key!r}", line=lineno)
        fields[canonical] = (scalar, lineno)
    return fields


def _build_rule(fields: dict, opno: int, item_lineno: int) -> TextualRule:
    def get(key: str) -> str:
        return fields.get(key, ("", 0))[0]

    action_raw = get("action")
    if not action_raw:
        raise FrontendParseError(
            f"change {opno}: missing 'action'", line=item_lineno)
    action = action_raw.strip().lower().replace("-", "_").replace(" ", "_")
    search, anchor = get("search"), get("anchor")
    if action.startswith("insert") and not search and anchor:
        search, anchor = anchor, ""
    occurrence = 0
    if "occurrence" in fields:
        raw, lineno = fields["occurrence"]
        try:
            occurrence = int(raw)
        except ValueError:
            raise FrontendParseError(
                f"'occurrence' must be an integer, got {raw!r}",
                line=lineno) from None
    op = TextualOp(action=action, search=search,
                   replacement=get("replacement"), anchor=anchor,
                   old_hash=get("old_hash"), file=get("file"),
                   occurrence=occurrence, lineno=item_lineno)
    try:
        op.validate()
    except FrontendParseError as exc:
        raise FrontendParseError(f"change {opno}: {exc.message}",
                                 line=exc.line or item_lineno) from None
    return TextualRule(f"change{opno}", op)
