"""Core machinery shared by the machine-patch frontends.

Machine-generated patches (JSON operation arrays, 'ap' snippet/anchor
locators, search/replace blocks) do not carry SmPL patterns — they carry
*textual operations*: a snippet to find, an optional anchor scoping the
search, an optional content hash pinning the expected old text, and a
replacement.  This module models one such operation as a
:class:`TextualRule` living inside a :class:`FrontendPatchAST`, a
:class:`~repro.smpl.ast.SemanticPatchAST` subclass, so frontend patches
flow through the existing prefilter / pipeline / memo / incremental /
server layers without those layers changing shape.

Locator semantics (the robustness tier):

* **tier 1** — exact substring occurrences of the snippet;
* **tier 2** — whitespace-resilient matching: the snippet is split on
  whitespace and rejoined with ``\\s+`` between word-adjacent chunks and
  ``\\s*`` elsewhere, so a reformatted file still locates;
* an **anchor**, when given, must occur exactly once and scopes the
  snippet search to the text after it;
* **ambiguity** (several matches, no ``occurrence`` index) is always an
  error — the engine never guesses;
* an **old_hash** (sha-256 hex prefix, ≥ 8 chars) is verified against the
  exact matched span before any edit;
* operation failures abort the whole file: the session reverts to the
  original text (all-or-nothing, so ``--in-place`` never half-applies)
  and the failure surfaces as an ``error`` diagnostic.

A snippet that is simply *absent* from a file is only an error for
**file-scoped** operations (``file:`` glob present); for unscoped
operations absence is an ordinary no-match, exactly like a SmPL rule that
matches nothing.
"""

from __future__ import annotations

import fnmatch
import hashlib
import posixpath
import re
from dataclasses import dataclass, field
from typing import Optional

from ..errors import Diagnostic, FrontendParseError
from ..options import SpatchOptions, DEFAULT_OPTIONS
from ..smpl.ast import DependencyExpr, SemanticPatchAST

#: actions a textual operation can take
ACTIONS = ("replace", "delete", "insert_after", "insert_before", "rewrite_file")

_WORD_CHARS = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_$")
_WORD_RE = re.compile(r"[A-Za-z_$][A-Za-z0-9_$]*")


def sha256_hex(text: str) -> str:
    """Content hash used by ``old_hash`` verification."""
    return hashlib.sha256(text.encode("utf-8", "surrogateescape")).hexdigest()


@dataclass(frozen=True)
class TextualOp:
    """One machine-patch operation, normalized across frontend formats."""

    action: str                 # one of ACTIONS
    search: str = ""            # snippet to locate (empty for rewrite_file)
    replacement: str = ""       # new text ("" + delete → pure removal)
    anchor: str = ""            # optional unique context scoping the search
    old_hash: str = ""          # optional sha-256 hex prefix of the old span
    file: str = ""              # optional fnmatch glob scoping to files
    occurrence: int = 0         # 1-based pick among several matches (0 = must be unique)
    lineno: int = 0             # line in the patch file, for diagnostics

    def validate(self) -> None:
        if self.action not in ACTIONS:
            raise FrontendParseError(
                f"unknown action {self.action!r} (expected one of {', '.join(ACTIONS)})",
                line=self.lineno)
        if self.action == "rewrite_file":
            if not self.file:
                raise FrontendParseError(
                    "rewrite_file requires a 'file' scope", line=self.lineno)
        elif not self.search:
            raise FrontendParseError(
                f"{self.action} requires a non-empty search snippet", line=self.lineno)
        if self.action in ("insert_after", "insert_before") and not self.replacement:
            raise FrontendParseError(
                f"{self.action} requires text to insert", line=self.lineno)
        if self.old_hash:
            cleaned = self.old_hash.lower()
            if len(cleaned) < 8 or len(cleaned) > 64 or \
                    any(c not in "0123456789abcdef" for c in cleaned):
                raise FrontendParseError(
                    f"old_hash must be a sha-256 hex prefix of 8..64 chars, "
                    f"got {self.old_hash!r}", line=self.lineno)
        if self.occurrence < 0:
            raise FrontendParseError(
                f"occurrence must be positive, got {self.occurrence}", line=self.lineno)


@dataclass
class TextualOutcome:
    """What applying one :class:`TextualOp` to one text did."""

    new_text: str
    matches: int = 0
    deletions: int = 0
    insertions: int = 0
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: a located-but-unsafe application (stale hash, ambiguity, scoped
    #: snippet missing): the whole file must be rolled back
    failed: bool = False


# -- whitespace-resilient matching --------------------------------------------

def resilient_pattern(snippet: str) -> "re.Pattern[str]":
    """Compile the tier-2 locator regex for a snippet.

    Chunks (maximal non-whitespace runs) are matched literally; whitespace
    between two word characters must survive as whitespace (``\\s+``),
    elsewhere it may collapse entirely (``\\s*``).  Leading/trailing
    whitespace in the snippet demands a token boundary, so ``" foo "``
    cannot silently locate inside ``barfood``.
    """
    chunks = snippet.split()
    if not chunks:
        raise FrontendParseError("empty search snippet")
    parts: list[str] = []
    if snippet[0] in " \t\n\r" and chunks[0][0] in _WORD_CHARS:
        parts.append(r"(?<![A-Za-z0-9_$])")
    for i, chunk in enumerate(chunks):
        if i:
            prev = chunks[i - 1]
            sep = r"\s+" if prev[-1] in _WORD_CHARS and chunk[0] in _WORD_CHARS else r"\s*"
            parts.append(sep)
        parts.append(re.escape(chunk))
    if snippet[-1] in " \t\n\r" and chunks[-1][-1] in _WORD_CHARS:
        parts.append(r"(?![A-Za-z0-9_$])")
    return re.compile("".join(parts))


def find_spans(text: str, snippet: str) -> list[tuple[int, int]]:
    """All locations of ``snippet`` in ``text``: exact occurrences, falling
    back to whitespace-resilient matches when the exact form is absent."""
    spans: list[tuple[int, int]] = []
    start = 0
    while True:
        pos = text.find(snippet, start)
        if pos < 0:
            break
        spans.append((pos, pos + len(snippet)))
        start = pos + 1
    if spans:
        return spans
    return [m.span() for m in resilient_pattern(snippet).finditer(text)]


def interior_words(snippet: str) -> frozenset[str]:
    """Identifier-shaped words of a snippet that are *complete tokens* in any
    text the snippet (exactly or resiliently) matches: words bounded on both
    sides, within the snippet, by non-word characters.  Words touching the
    snippet's edges are excluded — under substring matching they may be
    fragments of larger tokens in the file."""
    words: set[str] = set()
    for m in _WORD_RE.finditer(snippet):
        s, e = m.span()
        if s == 0 or e == len(snippet):
            continue
        if snippet[s - 1] in _WORD_CHARS or snippet[e] in _WORD_CHARS:
            continue
        words.add(m.group())
    return frozenset(words)


def _file_in_scope(pattern: str, filename: str) -> bool:
    name = filename.replace("\\", "/")
    return (fnmatch.fnmatch(name, pattern)
            or fnmatch.fnmatch(posixpath.basename(name), pattern))


def _expand_to_lines(text: str, start: int, end: int) -> tuple[int, int]:
    """Grow a span to whole lines when it already covers them bar
    surrounding blank space — so deleting a full-line snippet removes the
    line, not just its characters."""
    line_start = text.rfind("\n", 0, start) + 1
    line_end = text.find("\n", end)
    line_end = len(text) if line_end < 0 else line_end + 1
    before = text[line_start:start]
    after = text[end:line_end]
    if before.strip() == "" and after.strip() in ("", "\n"):
        return line_start, line_end
    return start, end


def _line_bounds(text: str, pos: int) -> tuple[int, int]:
    start = text.rfind("\n", 0, pos) + 1
    end = text.find("\n", pos)
    return start, (len(text) if end < 0 else end + 1)


class TextualRule:
    """One :class:`TextualOp` wearing the rule interface the engine expects.

    It quacks enough like a :class:`~repro.smpl.ast.PatchRule` for the
    pipeline's bookkeeping (``name``, ``dependencies``, ``is_pure_match``,
    ``is_script``) while :class:`~repro.engine.session.FileSession`
    dispatches on ``is_textual`` to apply it directly to the file text.
    """

    is_textual = True
    is_script = False
    is_pure_match = False

    def __init__(self, name: str, op: TextualOp):
        self.name = name
        self.op = op
        self.dependencies = DependencyExpr()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TextualRule({self.name!r}, {self.op!r})"

    # -- prefilter hooks ------------------------------------------------------

    def required_tokens(self) -> frozenset[str]:
        """Tokens a file must contain for this rule to possibly *match*.

        File-scoped operations are never gated: for them an absent snippet
        is an **error diagnostic**, and gating must stay observably
        identical to a no-match.
        """
        if self.op.file:
            return frozenset()
        return interior_words(self.op.search) | interior_words(self.op.anchor or "")

    def addable_tokens(self) -> tuple[frozenset[str], bool]:
        """Tokens this rule can introduce (static replacement text)."""
        return frozenset(_WORD_RE.findall(self.op.replacement)), False

    # -- application ----------------------------------------------------------

    def _fail(self, text: str, message: str, filename: str) -> TextualOutcome:
        return TextualOutcome(new_text=text, failed=True, diagnostics=[
            Diagnostic(severity="error", filename=filename, line=self.op.lineno,
                       message=f"{self.name}: {message}")])

    def apply_to_text(self, text: str, filename: str) -> TextualOutcome:
        """Apply this operation to one file's current text."""
        op = self.op
        if op.file and not _file_in_scope(op.file, filename):
            return TextualOutcome(new_text=text)

        if op.action == "rewrite_file":
            if op.old_hash and not sha256_hex(text).startswith(op.old_hash.lower()):
                return self._fail(text, "stale old_hash: the file changed since "
                                        "this patch was generated", filename)
            if text == op.replacement:
                return TextualOutcome(new_text=text)
            return TextualOutcome(new_text=op.replacement, matches=1,
                                  deletions=text.count("\n") or 1,
                                  insertions=op.replacement.count("\n") or 1)

        region_offset = 0
        region = text
        if op.anchor:
            anchors = find_spans(text, op.anchor)
            if not anchors:
                if op.file:
                    return self._fail(text, f"anchor not found: {op.anchor!r}", filename)
                return TextualOutcome(new_text=text)
            if len(anchors) > 1:
                return self._fail(
                    text, f"ambiguous anchor ({len(anchors)} occurrences): "
                          f"{op.anchor!r}", filename)
            region_offset = anchors[0][1]
            region = text[region_offset:]

        spans = find_spans(region, op.search)
        if not spans:
            if op.file:
                return self._fail(text, f"snippet not found: {op.search!r}", filename)
            return TextualOutcome(new_text=text)
        if len(spans) > 1:
            if not op.occurrence:
                return self._fail(
                    text, f"ambiguous snippet ({len(spans)} occurrences, "
                          f"no 'occurrence' index): {op.search!r}", filename)
            if op.occurrence > len(spans):
                return self._fail(
                    text, f"occurrence {op.occurrence} out of range "
                          f"({len(spans)} matches)", filename)
            spans = [spans[op.occurrence - 1]]
        start, end = spans[0][0] + region_offset, spans[0][1] + region_offset

        matched = text[start:end]
        if op.old_hash and not sha256_hex(matched).startswith(op.old_hash.lower()):
            return self._fail(text, "stale old_hash: the matched text changed "
                                    "since this patch was generated", filename)

        if op.action == "replace":
            repl = op.replacement
            # a line-oriented snippet ("...;\n") located resiliently inside a
            # line must not smuggle its trailing newline into the middle of it
            if op.search.endswith("\n") and repl.endswith("\n") \
                    and not matched.endswith("\n"):
                repl = repl[:-1]
            new_text = text[:start] + repl + text[end:]
            if new_text == text:
                return TextualOutcome(new_text=text, matches=1)
            return TextualOutcome(new_text=new_text, matches=1,
                                  deletions=matched.count("\n") + 1,
                                  insertions=repl.count("\n") + 1)
        if op.action == "delete":
            dstart, dend = _expand_to_lines(text, start, end)
            removed = text[dstart:dend]
            return TextualOutcome(new_text=text[:dstart] + text[dend:], matches=1,
                                  deletions=removed.count("\n") or 1)
        # insert_after / insert_before: line-based, reusing the matched
        # line's indentation when the inserted lines carry none
        line_start, line_end = _line_bounds(text, start if op.action == "insert_before"
                                            else end - 1 if end > start else end)
        line = text[line_start:line_end]
        indent = line[:len(line) - len(line.lstrip())]
        block = op.replacement
        if not block.endswith("\n"):
            block += "\n"
        if indent and not any(ln[:1] in (" ", "\t") for ln in block.splitlines() if ln):
            block = "".join(indent + ln + "\n" if ln else "\n"
                            for ln in block.splitlines())
        if op.action == "insert_before":
            new_text = text[:line_start] + block + text[line_start:]
        else:
            new_text = text[:line_end] + block + text[line_end:]
        return TextualOutcome(new_text=new_text, matches=1,
                              insertions=block.count("\n") or 1)


class FrontendPatchAST(SemanticPatchAST):
    """A parsed frontend patch: textual rules behind the SmPL AST interface.

    ``source_text`` holds the frontend file verbatim and ``format`` names
    the frontend kind, so patch fingerprints (memo / incremental /
    compile-cache identity) and worker/server payloads come for free.
    """

    def __init__(self, rules: list[TextualRule], *, format: str,
                 options: Optional[SpatchOptions] = None, source_text: str = ""):
        super().__init__(rules=list(rules), options=options or DEFAULT_OPTIONS,
                         source_text=source_text)
        self.format = format

    def patch_rules(self):  # type: ignore[override]
        # textual rules count as patch rules for the pipeline's bookkeeping
        # (rule totals, gating counters, guard classification)
        return [r for r in self.rules if not getattr(r, "is_script", False)]
