"""Machine-patch frontends: alternative patch input formats, compiled to
the same engine.

Three formats beyond SmPL, each the native output shape of a family of
patch-generating tools:

``jsonops``
    structural JSON operation arrays with ``old_hash`` verification
    (:mod:`repro.frontends.jsonops`);
``ap``
    snippet/anchor semantic locator documents with whitespace-resilient
    matching and ambiguity detection (:mod:`repro.frontends.ap`);
``blocks``
    ``<<<<<<< SEARCH`` / ``=======`` / ``>>>>>>> REPLACE`` conflict-marker
    blocks with sticky ``File:`` headers (:mod:`repro.frontends.blocks`).

Every parser returns a :class:`~repro.frontends.core.FrontendPatchAST` — a
:class:`~repro.smpl.ast.SemanticPatchAST` whose rules are
:class:`~repro.frontends.core.TextualRule` objects — so frontend patches
ride the prefilter, compiled-matcher cache, transform memo, incremental
splice and server layers exactly like SmPL patches do.  ``format`` on the
AST plus the verbatim ``source_text`` give them stable fingerprints and a
wire representation (:data:`WIRE_KINDS` are valid server patch-spec kinds).
"""

from __future__ import annotations

from typing import Optional

from ..errors import FrontendParseError
from ..options import SpatchOptions
from ..smpl.ast import SemanticPatchAST
from .ap import parse_ap
from .blocks import parse_blocks, SEARCH_MARKER
from .core import FrontendPatchAST, TextualOp, TextualRule, sha256_hex
from .jsonops import parse_jsonops

#: frontend formats that may travel as server patch-spec kinds
WIRE_KINDS = ("jsonops", "ap", "blocks")
#: every patch input format the engine accepts
FORMATS = ("smpl",) + WIRE_KINDS

_SUFFIX_HINTS = {
    ".cocci": "smpl", ".smpl": "smpl",
    ".json": "jsonops", ".jsonops": "jsonops",
    ".ap": "ap", ".yaml": "ap", ".yml": "ap",
}

_PARSERS = {"jsonops": parse_jsonops, "ap": parse_ap, "blocks": parse_blocks}


def detect_format(text: str, name: str = "") -> str:
    """Name the patch format of ``text``: the file suffix when it is
    conclusive, content shape otherwise."""
    dot = name.rfind(".")
    if dot >= 0:
        hint = _SUFFIX_HINTS.get(name[dot:].lower())
        if hint:
            return hint
    head = text.lstrip()
    if head[:1] in ("{", "["):
        return "jsonops"
    saw_changes = False
    for line in text.splitlines():
        if SEARCH_MARKER.match(line):
            return "blocks"
        if line.startswith("changes:"):
            saw_changes = True
    if saw_changes:
        return "ap"
    if head.startswith("@"):
        return "smpl"
    raise FrontendParseError(
        "cannot detect the patch format: expected SmPL ('@rule@' headers), "
        "a JSON operation array, an 'ap' document ('changes:' list) or "
        "SEARCH/REPLACE blocks")


def parse_patch_text(text: str, *, format: Optional[str] = None,
                     options: Optional[SpatchOptions] = None,
                     name: str = "<patch>") -> SemanticPatchAST:
    """Parse any supported patch format into an engine-ready AST.

    ``format=None`` auto-detects; ``"smpl"`` delegates to the SmPL parser,
    the :data:`WIRE_KINDS` go to their frontend parsers.
    """
    fmt = format or detect_format(text, name)
    if fmt == "smpl":
        from ..smpl.parser import parse_semantic_patch

        return parse_semantic_patch(text, options=options)
    parser = _PARSERS.get(fmt)
    if parser is None:
        raise FrontendParseError(
            f"unknown patch format {fmt!r} (expected one of {', '.join(FORMATS)})")
    return parser(text, options=options, name=name)


__all__ = [
    "FORMATS", "WIRE_KINDS",
    "FrontendPatchAST", "TextualOp", "TextualRule",
    "detect_format", "parse_patch_text", "sha256_hex",
    "parse_jsonops", "parse_ap", "parse_blocks",
    "FrontendParseError",
]
