"""Frontend: search/replace blocks (conflict-marker style).

The block format is the one most code-editing tools emit::

    File: src/util.c
    <<<<<<< SEARCH
    int rc = frobnicate();
    return rc;
    =======
    int rc = frobnicate();
    return normalize(rc);
    >>>>>>> REPLACE

* A ``File:`` (or ``### File:`` / ``#### path``) header line scopes the
  blocks after it — *sticky* until the next header; blocks before any
  header apply to every file where the search text locates.
* Marker lines are ``<<<<``+ ``SEARCH``, ``====``+, ``>>>>``+
  ``REPLACE`` (at least four marker characters each).
* Prose between blocks is tolerated and ignored — machine output is
  often wrapped in explanation.
* An empty SEARCH section is a parse error; an empty REPLACE section
  means *delete* (whole lines are removed when the search covers whole
  lines).

Matching is exact-first with a whitespace-resilient fallback, and
ambiguity is an error — see :mod:`repro.frontends.core`.
"""

from __future__ import annotations

import re
from typing import Optional

from ..errors import FrontendParseError
from ..options import SpatchOptions
from .core import FrontendPatchAST, TextualOp, TextualRule

SEARCH_MARKER = re.compile(r"^<{4,}\s*SEARCH\s*$")
DIVIDER_MARKER = re.compile(r"^={4,}\s*$")
REPLACE_MARKER = re.compile(r"^>{4,}\s*REPLACE\s*$")
FILE_HEADER = re.compile(r"^(?:#{1,6}\s*)?File:\s*(?P<path>\S.*?)\s*$",
                         re.IGNORECASE)


def parse_blocks(text: str, *, options: Optional[SpatchOptions] = None,
                 name: str = "<blocks>") -> FrontendPatchAST:
    """Parse search/replace blocks into a frontend patch AST."""
    lines = text.splitlines()
    rules: list[TextualRule] = []
    current_file = ""
    i = 0
    while i < len(lines):
        line = lines[i]
        header = FILE_HEADER.match(line.strip())
        if header:
            current_file = header.group("path").strip("`'\"")
            i += 1
            continue
        if not SEARCH_MARKER.match(line):
            if DIVIDER_MARKER.match(line) or REPLACE_MARKER.match(line):
                raise FrontendParseError(
                    f"unexpected {line.strip()!r} outside a SEARCH block",
                    line=i + 1)
            i += 1  # prose between blocks is tolerated
            continue

        block_lineno = i + 1
        i += 1
        search_lines: list[str] = []
        while i < len(lines) and not DIVIDER_MARKER.match(lines[i]):
            if SEARCH_MARKER.match(lines[i]) or REPLACE_MARKER.match(lines[i]):
                raise FrontendParseError(
                    "SEARCH block is missing its ======= divider",
                    line=block_lineno)
            search_lines.append(lines[i])
            i += 1
        if i >= len(lines):
            raise FrontendParseError(
                "SEARCH block is missing its ======= divider", line=block_lineno)
        i += 1
        replace_lines: list[str] = []
        while i < len(lines) and not REPLACE_MARKER.match(lines[i]):
            if SEARCH_MARKER.match(lines[i]) or DIVIDER_MARKER.match(lines[i]):
                raise FrontendParseError(
                    "block is missing its >>>>>>> REPLACE terminator",
                    line=block_lineno)
            replace_lines.append(lines[i])
            i += 1
        if i >= len(lines):
            raise FrontendParseError(
                "block is missing its >>>>>>> REPLACE terminator",
                line=block_lineno)
        i += 1

        search = "\n".join(search_lines)
        if not search.strip():
            raise FrontendParseError(
                "empty SEARCH section", line=block_lineno)
        replacement = "\n".join(replace_lines)
        if search_lines:
            search += "\n"
        if replace_lines:
            replacement += "\n"
        if not replacement.strip():
            op = TextualOp(action="delete", search=search, file=current_file,
                           lineno=block_lineno)
        else:
            op = TextualOp(action="replace", search=search,
                           replacement=replacement, file=current_file,
                           lineno=block_lineno)
        op.validate()
        rules.append(TextualRule(f"block{len(rules) + 1}", op))

    if not rules:
        raise FrontendParseError("no SEARCH/REPLACE blocks found")
    return FrontendPatchAST(rules, format="blocks", options=options,
                            source_text=text)
