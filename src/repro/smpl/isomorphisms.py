"""Built-in isomorphisms.

Coccinelle ships a standard isomorphism file that lets a single pattern match
several equivalent spellings of the same code (``x == NULL`` vs ``NULL == x``,
redundant parentheses, ...).  The engine implements the small set the paper's
rules rely on:

* commutativity of symmetric binary operators (``k == elem`` / ``elem == k``),
* transparency of redundant parentheses,
* ``E + 0`` / ``E`` equivalence (used when matching the first statement of a
  manually unrolled loop, whose index may be written ``i`` or ``i + 0``),
* ``E += 1`` / ``E++`` / ``++E`` equivalence for loop steps.

Isomorphisms apply during *matching only*; the transformation stage always
edits the tokens that are really present in the file.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast_nodes import (
    Assignment, BinaryOp, COMMUTATIVE_OPS, Expr, Literal, Node, Paren, UnaryOp,
)


@dataclass(frozen=True)
class IsoConfig:
    """Which isomorphisms are active."""

    commutative: bool = True
    drop_parens: bool = True
    plus_zero: bool = True
    increment_forms: bool = True

    @classmethod
    def all_disabled(cls) -> "IsoConfig":
        return cls(commutative=False, drop_parens=False, plus_zero=False,
                   increment_forms=False)


DEFAULT_ISOS = IsoConfig()
DISABLED_ISOS = IsoConfig.all_disabled()


def strip_parens(node: Node, config: IsoConfig = DEFAULT_ISOS) -> Node:
    """Remove redundant parentheses around an expression (for matching)."""
    if not config.drop_parens:
        return node
    while isinstance(node, Paren) and node.expr is not None:
        node = node.expr
    return node


def is_zero_literal(node: Node) -> bool:
    return isinstance(node, Literal) and node.category == "int" and \
        node.value.rstrip("uUlL") in ("0", "00")


def plus_zero_operand(node: Node, config: IsoConfig = DEFAULT_ISOS):
    """If ``node`` is ``E + 0`` (or ``0 + E``), return ``E``; else ``None``."""
    if not config.plus_zero:
        return None
    if isinstance(node, BinaryOp) and node.op == "+":
        if is_zero_literal(node.right):
            return node.left
        if is_zero_literal(node.left):
            return node.right
    return None


def commutative_swap(node: Node, config: IsoConfig = DEFAULT_ISOS):
    """If ``node`` is a commutative binary operation, return the swapped
    variant (same extent, operands exchanged); else ``None``."""
    if not config.commutative:
        return None
    if isinstance(node, BinaryOp) and node.op in COMMUTATIVE_OPS:
        swapped = BinaryOp(op=node.op, left=node.right, right=node.left)
        swapped.start, swapped.end = node.start, node.end
        return swapped
    return None


def increment_variants(node: Node, config: IsoConfig = DEFAULT_ISOS) -> list[Node]:
    """Equivalent spellings of an increment: ``i++``, ``++i``, ``i += 1``.

    Returns alternative nodes (sharing the original extent) that a pattern
    increment may be matched against.
    """
    if not config.increment_forms:
        return []
    out: list[Node] = []
    if isinstance(node, UnaryOp) and node.op in ("++", "--"):
        op = "+=" if node.op == "++" else "-="
        one = Literal(value="1", category="int")
        one.start, one.end = node.start, node.end
        alt = Assignment(op=op, target=node.operand, value=one)
        alt.start, alt.end = node.start, node.end
        out.append(alt)
    if isinstance(node, Assignment) and node.op in ("+=", "-="):
        if isinstance(node.value, Literal) and node.value.value in ("1", "1u", "1U"):
            op = "++" if node.op == "+=" else "--"
            alt = UnaryOp(op=op, operand=node.target, prefix=False)
            alt.start, alt.end = node.start, node.end
            out.append(alt)
    return out
