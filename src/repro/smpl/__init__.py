"""SmPL — the Semantic Patch Language: rules, metavariables, isomorphisms."""

from .ast import (
    DependencyExpr, PatchRule, PatternLine, PlusBlock, Rule, ScriptRule,
    SemanticPatchAST, KIND_EXPRESSION, KIND_STATEMENTS, KIND_TOPLEVEL,
)
from .metavars import MetavarDecl, MetavarTable, parse_metavar_declarations
from .parser import parse_semantic_patch
from .isomorphisms import IsoConfig, DEFAULT_ISOS, DISABLED_ISOS

__all__ = [
    "DependencyExpr", "PatchRule", "PatternLine", "PlusBlock", "Rule",
    "ScriptRule", "SemanticPatchAST", "KIND_EXPRESSION", "KIND_STATEMENTS",
    "KIND_TOPLEVEL", "MetavarDecl", "MetavarTable",
    "parse_metavar_declarations", "parse_semantic_patch", "IsoConfig",
    "DEFAULT_ISOS", "DISABLED_ISOS",
]
