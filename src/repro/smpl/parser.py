"""Parser for semantic patch files (the SmPL language).

The entry point is :func:`parse_semantic_patch`, which turns the text of a
``.cocci`` file into a :class:`~repro.smpl.ast.SemanticPatchAST`:

* rule headers (``@name depends on other@``, ``@script:python name@``,
  ``@initialize:python@`` ...),
* metavariable declarations,
* rule bodies: pattern lines annotated with ``+``/``-``/context, assembled
  into the *minus slice* (context + minus lines) that is parsed with the
  metavariable-aware C parser, and *plus blocks* anchored to their closest
  non-plus line,
* ``# spatch --c++=NN`` pseudo-option lines.
"""

from __future__ import annotations

import re
import textwrap
from dataclasses import dataclass

from ..errors import SmplParseError, CParseError
from ..options import SpatchOptions, DEFAULT_OPTIONS
from ..lang.lexer import Lexer, Token, TokenKind, ANNOT_CONTEXT, ANNOT_MINUS
from ..lang.source import SourceFile
from ..lang.parser import CParser
from .ast import (
    DependencyExpr, KIND_EMPTY, KIND_EXPRESSION, KIND_STATEMENTS,
    KIND_TOPLEVEL, PatchRule, PatternLine, PlusBlock, Rule, ScriptRule,
    SemanticPatchAST,
)
from .metavars import MetavarTable, parse_metavar_declarations, parse_script_header


_HEADER_RE = re.compile(r"^@[^@]*@")
_MARKER_MAP = {
    "(": TokenKind.DISJ_OPEN,
    "|": TokenKind.DISJ_OR,
    "&": TokenKind.CONJ_AND,
    ")": TokenKind.DISJ_CLOSE,
}


@dataclass
class _RawRule:
    """A rule before interpretation: header, metavar text, body lines."""

    header: str
    metavar_text: str
    body_lines: list[tuple[int, str]]  # (1-based patch line number, raw text)
    lineno: int


# ---------------------------------------------------------------------------
# splitting the patch file into raw rules
# ---------------------------------------------------------------------------

def _is_header_line(stripped: str) -> bool:
    if not stripped.startswith("@"):
        return False
    return stripped == "@@" or _HEADER_RE.match(stripped) is not None


def _split_rules(text: str) -> tuple[list[_RawRule], SpatchOptions]:
    options = DEFAULT_OPTIONS
    lines = text.splitlines()
    raw_rules: list[_RawRule] = []
    i = 0
    n = len(lines)

    while i < n:
        line = lines[i]
        stripped = line.strip()
        if not _is_header_line(stripped):
            # outside any rule: option lines and comments only
            if stripped.startswith("#") and "spatch" in stripped:
                options = SpatchOptions.from_spatch_line(stripped, options)
            elif stripped and not stripped.startswith("//"):
                raise SmplParseError(
                    f"unexpected text outside a rule: {stripped!r}", line=i + 1)
            i += 1
            continue

        header_lineno = i + 1
        # header: text between the first '@' and the next '@' on this line
        close = stripped.index("@", 1)
        header = stripped[1:close].strip()
        remainder = stripped[close + 1:].strip()

        metavar_lines: list[str] = []
        i += 1
        if remainder == "@@":
            pass  # empty metavariable section, body starts on the next line
        else:
            if remainder:
                metavar_lines.append(remainder)
            # collect metavariable lines until the terminating '@@'
            while i < n:
                mv_line = lines[i].strip()
                i += 1
                if mv_line == "@@":
                    break
                if mv_line.endswith("@@"):
                    metavar_lines.append(mv_line[:-2])
                    break
                metavar_lines.append(mv_line)
            else:
                raise SmplParseError("missing '@@' terminating the metavariable "
                                     f"section of rule starting at line {header_lineno}",
                                     line=header_lineno)

        # body: lines until the next header
        body: list[tuple[int, str]] = []
        while i < n:
            stripped_next = lines[i].strip()
            if _is_header_line(stripped_next):
                break
            if stripped_next.startswith("#") and "spatch" in stripped_next:
                options = SpatchOptions.from_spatch_line(stripped_next, options)
                i += 1
                continue
            body.append((i + 1, lines[i]))
            i += 1

        raw_rules.append(_RawRule(header=header, metavar_text="\n".join(metavar_lines),
                                  body_lines=body, lineno=header_lineno))

    return raw_rules, options


# ---------------------------------------------------------------------------
# header interpretation
# ---------------------------------------------------------------------------

def _parse_dependencies(words: list[str]) -> DependencyExpr:
    required: list[str] = []
    forbidden: list[str] = []
    negate_next = False
    for word in words:
        if word in ("&&", "and", ",", "on", "ever", "exists", "forall"):
            continue
        if word in ("!", "never"):
            negate_next = True
            continue
        name = word
        neg = negate_next
        if name.startswith("!"):
            neg = True
            name = name[1:]
        if not name:
            continue
        (forbidden if neg else required).append(name)
        negate_next = False
    return DependencyExpr(required=tuple(required), forbidden=tuple(forbidden))


def _parse_header(header: str, index: int, lineno: int) -> tuple[str, str, str, DependencyExpr]:
    """Return ``(kind, name, language, dependencies)`` where kind is
    ``patch``, ``initialize``, ``script`` or ``finalize``."""
    header = header.strip()
    normalized = header.replace(":", " : ")
    words = normalized.split()

    deps = DependencyExpr()
    if "depends" in words:
        at = words.index("depends")
        deps = _parse_dependencies(words[at + 1:])
        words = words[:at]

    if words and words[0] in ("initialize", "script", "finalize"):
        kind = words[0]
        language = "python"
        rest = words[1:]
        if rest and rest[0] == ":":
            if len(rest) < 2:
                raise SmplParseError(f"missing language in rule header {header!r}", lineno)
            language = rest[1]
            rest = rest[2:]
        name = rest[0] if rest else f"{kind}_rule_{index}"
        if language not in ("python", "ocaml"):
            raise SmplParseError(f"unsupported scripting language {language!r}", lineno)
        return kind, name, language, deps

    name = words[0] if words else f"rule_{index}"
    return "patch", name, "", deps


# ---------------------------------------------------------------------------
# pattern body interpretation
# ---------------------------------------------------------------------------

def _pattern_lines(body_lines: list[tuple[int, str]]) -> list[PatternLine]:
    out: list[PatternLine] = []
    for lineno, raw in body_lines:
        if not raw.strip():
            continue
        if raw.lstrip().startswith("//") and not raw.startswith(("+", "-")):
            continue
        first = raw[0]
        if first == "+":
            out.append(PatternLine(annot="+", text=raw[1:], lineno=lineno))
        elif first == "-":
            out.append(PatternLine(annot="-", text=raw[1:], lineno=lineno))
        else:
            out.append(PatternLine(annot=" ", text=raw, lineno=lineno))
    return out


def _assemble_minus_slice(pattern_lines: list[PatternLine]) -> tuple[SourceFile, list[str], list[PatternLine]]:
    """Build the minus-slice source (context + minus lines) and return it with
    the per-slice-line annotation list and the slice lines themselves."""
    slice_lines = [pl for pl in pattern_lines if not pl.is_plus]
    text = "\n".join(pl.text for pl in slice_lines)
    source = SourceFile(name="<pattern>", text=text)
    annots = [pl.annot for pl in slice_lines]
    return source, annots, slice_lines


def _marker_line_conversions(slice_lines: list[PatternLine]) -> dict[int, TokenKind]:
    """Decide which standalone ``(``/``|``/``&``/``)`` lines are column-0
    disjunction markers (by 0-based slice line index).

    A lone ``|`` or ``&`` line is never valid C, so it is always a marker.
    Lone ``(`` and ``)`` lines are markers only when the group they delimit
    actually contains a separator line; otherwise they are ordinary
    parentheses (e.g. the ``)`` closing a multi-line ``for`` header in the
    paper's unrolling rules).
    """
    conversions: dict[int, TokenKind] = {}
    stack: list[dict] = []  # {"line": idx, "has_sep": bool, "seps": [idx...]}
    for idx, pl in enumerate(slice_lines):
        ch = pl.text.strip()
        if ch not in ("(", "|", "&", ")") or len(ch) != 1:
            continue
        if ch == "(":
            stack.append({"line": idx, "has_sep": False, "seps": []})
        elif ch in ("|", "&"):
            conversions[idx] = _MARKER_MAP[ch]
            if stack:
                stack[-1]["has_sep"] = True
        else:  # ")"
            if stack:
                group = stack.pop()
                if group["has_sep"]:
                    conversions[group["line"]] = TokenKind.DISJ_OPEN
                    conversions[idx] = TokenKind.DISJ_CLOSE
                    if stack:
                        # a closed nested group still counts as content, not a
                        # separator, for the enclosing group
                        pass
    return conversions


def _lex_slice(source: SourceFile, annots: list[str],
               slice_lines: list[PatternLine]) -> list[Token]:
    tokens = Lexer(source, smpl_mode=True).tokenize()
    conversions = _marker_line_conversions(slice_lines)
    for tok in tokens:
        if tok.kind is TokenKind.EOF:
            continue
        line_index = tok.line - 1
        annot = annots[line_index] if 0 <= line_index < len(annots) else ANNOT_CONTEXT
        tok.annot = ANNOT_MINUS if annot == "-" else ANNOT_CONTEXT
        tok.pline = line_index
        if (tok.kind is TokenKind.PUNCT and line_index in conversions
                and slice_lines[line_index].text.strip() == tok.value):
            tok.kind = conversions[line_index]
    return tokens


def _extract_plus_blocks(pattern_lines: list[PatternLine]) -> list[PlusBlock]:
    """Group consecutive '+' lines and attach each group to its anchor line.

    The anchor is the closest preceding non-plus line unless that line is a
    lone ``...`` or a column-0 disjunction marker, in which case the block
    attaches *before* the closest following non-plus line (this reproduces how
    the paper's patches expect plus code to be placed).
    """
    # map pattern-line index -> slice line number (1-based) for non-plus lines
    slice_line_of: dict[int, int] = {}
    counter = 0
    for idx, pl in enumerate(pattern_lines):
        if not pl.is_plus:
            counter += 1
            slice_line_of[idx] = counter

    blocks: list[PlusBlock] = []
    i = 0
    n = len(pattern_lines)
    while i < n:
        if not pattern_lines[i].is_plus:
            i += 1
            continue
        j = i
        lines: list[str] = []
        while j < n and pattern_lines[j].is_plus:
            lines.append(pattern_lines[j].text.strip())
            j += 1

        prev_idx = next((k for k in range(i - 1, -1, -1) if not pattern_lines[k].is_plus), None)
        next_idx = next((k for k in range(j, n) if not pattern_lines[k].is_plus), None)

        def _usable(idx: int | None) -> bool:
            if idx is None:
                return False
            pl = pattern_lines[idx]
            return not pl.is_dots_only and not pl.is_marker_only

        if _usable(prev_idx):
            anchor, anchor_idx = "after", prev_idx
        elif _usable(next_idx):
            anchor, anchor_idx = "before", next_idx
        elif prev_idx is not None:
            anchor, anchor_idx = "after", prev_idx
        elif next_idx is not None:
            anchor, anchor_idx = "before", next_idx
        else:
            raise SmplParseError(
                "a rule consisting only of '+' lines has nothing to anchor to",
                line=pattern_lines[i].lineno)

        blocks.append(PlusBlock(lines=lines, anchor=anchor,
                                anchor_slice_line=slice_line_of[anchor_idx],
                                patch_lineno=pattern_lines[i].lineno))
        i = j
    return blocks


def _classify_and_parse(rule_name: str, tokens: list[Token], source: SourceFile,
                        metavars: MetavarTable,
                        options: SpatchOptions) -> tuple[str, list]:
    """Classify a minus slice as expression / statements / toplevel and parse
    it into pattern nodes."""
    significant = [t for t in tokens if t.kind is not TokenKind.EOF]
    if not significant:
        return KIND_EMPTY, []

    kinds = metavars.kinds_for_parser()

    def _parser() -> CParser:
        return CParser(list(tokens), source, options=options, metavars=kinds,
                       tolerant=False)

    errors: list[str] = []
    # 1. a single expression (no trailing ';')
    try:
        expr = _parser().parse_single_expression()
        return KIND_EXPRESSION, [expr]
    except CParseError as exc:
        errors.append(f"as expression: {exc}")
    # 2. a statement sequence
    try:
        stmts = _parser().parse_statement_list()
        if stmts:
            return KIND_STATEMENTS, stmts
    except CParseError as exc:
        errors.append(f"as statements: {exc}")
    # 3. top-level declarations (function definitions, includes, ...)
    try:
        tree = _parser().parse_translation_unit()
        if tree.unit.decls:
            return KIND_TOPLEVEL, list(tree.unit.decls)
    except CParseError as exc:
        errors.append(f"as declarations: {exc}")

    raise SmplParseError(
        f"cannot parse the pattern of rule {rule_name!r}:\n  " + "\n  ".join(errors))


# ---------------------------------------------------------------------------
# public entry point
# ---------------------------------------------------------------------------

def parse_semantic_patch(text: str,
                         options: SpatchOptions | None = None) -> SemanticPatchAST:
    """Parse a semantic patch file into a :class:`SemanticPatchAST`."""
    raw_rules, file_options = _split_rules(text)
    if options is not None:
        # explicit options win, but '#spatch --c++' lines can still raise the
        # language level
        if file_options.cxx is not None and options.cxx is None:
            options = options.with_cxx(file_options.cxx)
    else:
        options = file_options

    rules: list[Rule] = []
    for index, raw in enumerate(raw_rules):
        kind, name, language, deps = _parse_header(raw.header, index, raw.lineno)

        if kind in ("initialize", "script", "finalize"):
            imports, outputs = parse_script_header(raw.metavar_text)
            # SmPL allows '//' comment lines inside script bodies (the paper's
            # OpenACC listing has one); they are not Python, so drop them.
            body = [line for _, line in raw.body_lines
                    if not line.lstrip().startswith("//")]
            code = textwrap.dedent("\n".join(body)).strip("\n")
            rules.append(ScriptRule(name=name, language=language, when=kind,
                                    imports=imports, outputs=outputs, code=code,
                                    dependencies=deps, lineno=raw.lineno))
            continue

        metavars = parse_metavar_declarations(raw.metavar_text)
        pattern_lines = _pattern_lines(raw.body_lines)
        slice_source, annots, slice_lines = _assemble_minus_slice(pattern_lines)
        slice_tokens = _lex_slice(slice_source, annots, slice_lines)
        plus_blocks = _extract_plus_blocks(pattern_lines)
        pattern_kind, pattern_nodes = _classify_and_parse(
            name, slice_tokens, slice_source, metavars, options)

        has_minus = any(t.annot == ANNOT_MINUS for t in slice_tokens
                        if t.kind is not TokenKind.EOF)
        rule = PatchRule(
            name=name,
            metavars=metavars,
            dependencies=deps,
            pattern_lines=pattern_lines,
            plus_blocks=plus_blocks,
            slice_source=slice_source,
            slice_tokens=slice_tokens,
            pattern_nodes=pattern_nodes,
            pattern_kind=pattern_kind,
            is_pure_match=not has_minus and not plus_blocks,
            lineno=raw.lineno,
            is_anonymous=(raw.header.strip() == ""),
        )
        rules.append(rule)

    return SemanticPatchAST(rules=rules, options=options, source_text=text)
