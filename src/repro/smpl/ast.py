"""Structured representation of a parsed semantic patch.

A semantic patch is a sequence of rules.  Transformation/matching rules
(:class:`PatchRule`) carry their metavariable table, the annotated pattern
(minus slice parsed into AST pattern nodes, with per-token CONTEXT/MINUS
annotations) and the plus blocks with their anchors.  Scripting rules
(:class:`ScriptRule`) carry Python code together with the metavariables they
import and export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..lang.lexer import Token
from ..lang.source import SourceFile
from ..lang.ast_nodes import Node
from ..options import SpatchOptions, DEFAULT_OPTIONS
from .metavars import MetavarTable


#: pattern-kind classification of a rule body
KIND_TOPLEVEL = "toplevel"       # function definitions / includes / attributes
KIND_STATEMENTS = "statements"   # statement sequence, matched in every block
KIND_EXPRESSION = "expression"   # a single expression, matched at every node
KIND_EMPTY = "empty"             # no context/minus material (unsupported)


@dataclass
class PatternLine:
    """One line of a rule body with its annotation column removed."""

    annot: str       # " " (context), "-" or "+"
    text: str        # the line content without the annotation character
    lineno: int      # 1-based line number within the semantic patch file

    @property
    def is_plus(self) -> bool:
        return self.annot == "+"

    @property
    def is_minus(self) -> bool:
        return self.annot == "-"

    @property
    def is_context(self) -> bool:
        return self.annot == " "

    @property
    def is_dots_only(self) -> bool:
        return self.text.strip() == "..."

    @property
    def is_marker_only(self) -> bool:
        """Column-0 disjunction marker lines: ``(``, ``|``, ``&``, ``)``."""
        return self.text.strip() in ("(", "|", "&", ")") and self.text == self.text.strip()


@dataclass
class PlusBlock:
    """A group of consecutive ``+`` lines with their attachment point.

    ``anchor`` is ``"after"`` or ``"before"``; ``anchor_slice_line`` is the
    1-based line number *within the minus slice* of the pattern line the block
    attaches to (Coccinelle attaches plus code to the closest context/minus
    line).
    """

    lines: list[str]
    anchor: str
    anchor_slice_line: int
    patch_lineno: int = 0

    def rendered(self) -> str:  # pragma: no cover - debugging aid
        return "\n".join("+ " + ln for ln in self.lines)


@dataclass
class DependencyExpr:
    """A (simplified) ``depends on`` clause: a conjunction of rule names,
    each possibly negated with ``!``/``never``."""

    required: tuple[str, ...] = ()
    forbidden: tuple[str, ...] = ()

    def is_satisfied(self, applied_rules: set[str]) -> bool:
        if any(r not in applied_rules for r in self.required):
            return False
        if any(r in applied_rules for r in self.forbidden):
            return False
        return True

    @property
    def is_empty(self) -> bool:
        return not self.required and not self.forbidden


@dataclass
class PatchRule:
    """A transformation / matching rule."""

    name: str
    metavars: MetavarTable
    dependencies: DependencyExpr = field(default_factory=DependencyExpr)
    pattern_lines: list[PatternLine] = field(default_factory=list)
    plus_blocks: list[PlusBlock] = field(default_factory=list)
    #: minus-slice artifacts (filled by the SmPL parser)
    slice_source: Optional[SourceFile] = None
    slice_tokens: list[Token] = field(default_factory=list)
    pattern_nodes: list[Node] = field(default_factory=list)
    pattern_kind: str = KIND_EMPTY
    #: True when the rule has no '-' tokens and no '+' blocks (pure match)
    is_pure_match: bool = False
    lineno: int = 0
    is_anonymous: bool = False

    @property
    def is_script(self) -> bool:
        return False

    @property
    def exported_metavars(self) -> list[str]:
        """Names this rule can export to later rules (everything it binds)."""
        return [name for name, d in self.metavars.decls.items() if not d.is_fresh] + \
               [d.name for d in self.metavars.fresh()]

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (f"rule {self.name} [{self.pattern_kind}] "
                f"({len(self.pattern_lines)} pattern lines, "
                f"{len(self.plus_blocks)} plus blocks)")


@dataclass
class ScriptRule:
    """An ``initialize:python`` / ``script:python`` / ``finalize:python`` rule."""

    name: str
    language: str = "python"
    when: str = "script"                      # "initialize" | "script" | "finalize"
    imports: list[tuple[str, str, str]] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    code: str = ""
    dependencies: DependencyExpr = field(default_factory=DependencyExpr)
    lineno: int = 0

    @property
    def is_script(self) -> bool:
        return True

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.when}:{self.language} rule {self.name}"


Rule = Union[PatchRule, ScriptRule]


@dataclass
class SemanticPatchAST:
    """A fully parsed semantic patch: ordered rules plus global options."""

    rules: list[Rule] = field(default_factory=list)
    options: SpatchOptions = field(default_factory=lambda: DEFAULT_OPTIONS)
    source_text: str = ""

    def rule_named(self, name: str) -> Optional[Rule]:
        for rule in self.rules:
            if rule.name == name:
                return rule
        return None

    def patch_rules(self) -> list[PatchRule]:
        return [r for r in self.rules if isinstance(r, PatchRule)]

    def script_rules(self) -> list[ScriptRule]:
        return [r for r in self.rules if isinstance(r, ScriptRule)]

    def guard_rule_names(self) -> frozenset[str]:
        """Pure-match rules that exist to *suppress* other rules via
        ``depends on !guard`` (the idempotence-guard idiom of the cookbook):
        their matching means "nothing to do here", so callers deciding
        whether the patch 'matched' (the CLI's exit status, notably) should
        not count them."""
        forbidden: set[str] = set()
        for rule in self.rules:
            forbidden.update(rule.dependencies.forbidden)
        return frozenset(rule.name for rule in self.patch_rules()
                         if rule.is_pure_match and rule.name in forbidden)

    @property
    def rule_names(self) -> list[str]:
        return [r.name for r in self.rules]

    def loc(self) -> int:
        """Semantic-patch lines of code (non-blank, non-comment)."""
        count = 0
        for line in self.source_text.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("//"):
                count += 1
        return count
