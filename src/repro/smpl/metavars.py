"""Metavariable declarations for SmPL rules.

A rule's metavariable section declares, for example::

    type T;
    identifier f =~ "kernel";
    parameter list PL;
    constant k={4};
    fresh identifier f512 = "avx512_" ## f;
    statement p1.A;          // inherited from rule p1
    position cfe.p;          // inherited position

This module models those declarations and parses them from the text between
the ``@rule@`` header and the closing ``@@``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from ..errors import MetavarError


#: Metavariable kinds supported by the engine, in longest-first order so the
#: declaration parser can greedily match multi-word kinds.
KINDS = (
    "fresh identifier",
    "parameter list",
    "statement list",
    "expression list",
    "attribute name",
    "local idexpression",
    "idexpression",
    "identifier",
    "expression",
    "statement",
    "constant",
    "position",
    "pragmainfo",
    "function",
    "symbol",
    "type",
    "declarer",
    "iterator",
)

#: Kinds that bind names rather than full subtrees.
NAME_KINDS = {"identifier", "function", "declarer", "iterator", "attribute name"}


@dataclass
class FreshPart:
    """One component of a fresh-identifier seed: a literal string or the name
    of another metavariable whose bound text is spliced in (``##``)."""

    kind: str  # "str" | "mv"
    value: str


@dataclass
class MetavarDecl:
    """One declared metavariable."""

    kind: str
    name: str
    #: constraint: the bound name must match this regular expression (=~)
    regex: Optional[str] = None
    #: constraint: the bound value must be one of these literal spellings
    values: tuple[str, ...] = ()
    #: inherited metavariables: the rule and name they come from
    source_rule: Optional[str] = None
    source_name: Optional[str] = None
    #: seed of a ``fresh identifier``
    fresh_parts: tuple[FreshPart, ...] = ()

    @property
    def is_inherited(self) -> bool:
        return self.source_rule is not None

    @property
    def is_fresh(self) -> bool:
        return self.kind == "fresh identifier"

    @property
    def binds_name(self) -> bool:
        return self.kind in NAME_KINDS

    def check_name_constraint(self, name: str) -> bool:
        """Check the regex / value-set constraints against a candidate name."""
        if self.regex is not None and not re.search(self.regex, name):
            return False
        if self.values and name not in self.values:
            return False
        return True

    def check_constant_constraint(self, text: str) -> bool:
        if self.values and text not in self.values:
            return False
        if self.regex is not None and not re.search(self.regex, text):
            return False
        return True

    def describe(self) -> str:  # pragma: no cover - cosmetic
        extra = ""
        if self.regex:
            extra += f' =~ "{self.regex}"'
        if self.values:
            extra += " = {" + ",".join(self.values) + "}"
        if self.is_inherited:
            return f"{self.kind} {self.source_rule}.{self.source_name}{extra}"
        return f"{self.kind} {self.name}{extra}"


@dataclass
class MetavarTable:
    """All metavariables of one rule, by local name."""

    decls: dict[str, MetavarDecl] = field(default_factory=dict)

    def add(self, decl: MetavarDecl) -> None:
        if decl.name in self.decls:
            raise MetavarError(f"metavariable {decl.name!r} declared twice")
        self.decls[decl.name] = decl

    def __contains__(self, name: str) -> bool:
        return name in self.decls

    def __getitem__(self, name: str) -> MetavarDecl:
        return self.decls[name]

    def get(self, name: str) -> Optional[MetavarDecl]:
        return self.decls.get(name)

    def kind_of(self, name: str) -> Optional[str]:
        decl = self.decls.get(name)
        return decl.kind if decl else None

    def names(self) -> list[str]:
        return list(self.decls)

    def inherited(self) -> list[MetavarDecl]:
        return [d for d in self.decls.values() if d.is_inherited]

    def fresh(self) -> list[MetavarDecl]:
        return [d for d in self.decls.values() if d.is_fresh]

    def kinds_for_parser(self) -> dict[str, str]:
        """The ``{name: kind}`` mapping handed to the pattern-mode C parser."""
        return {name: decl.kind for name, decl in self.decls.items()}


# ---------------------------------------------------------------------------
# declaration parsing
# ---------------------------------------------------------------------------

_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _strip_comment(text: str) -> str:
    out_lines = []
    for line in text.splitlines():
        if "//" in line:
            line = line.split("//", 1)[0]
        out_lines.append(line)
    return "\n".join(out_lines)


def parse_metavar_declarations(text: str) -> MetavarTable:
    """Parse the metavariable section of a rule (text between the header and
    the terminating ``@@``)."""
    table = MetavarTable()
    text = _strip_comment(text)
    for raw_decl in text.split(";"):
        decl_text = raw_decl.strip()
        if not decl_text:
            continue
        _parse_one_declaration(decl_text, table)
    return table


def _parse_one_declaration(decl_text: str, table: MetavarTable) -> None:
    # identify the kind (longest match first)
    kind = None
    rest = ""
    lowered = decl_text
    for candidate in KINDS:
        if lowered.startswith(candidate + " ") or lowered == candidate:
            kind = candidate
            rest = decl_text[len(candidate):].strip()
            break
    if kind is None:
        raise MetavarError(f"cannot parse metavariable declaration: {decl_text!r}")

    if kind == "fresh identifier":
        _parse_fresh(rest, table)
        return

    # split the declarator list on top-level commas (commas inside {...} or
    # quotes belong to value sets / regexes)
    for declarator in _split_top_level_commas(rest):
        declarator = declarator.strip()
        if not declarator:
            continue
        _parse_declarator(kind, declarator, table)


def _split_top_level_commas(text: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    in_str = False
    current = ""
    for ch in text:
        if ch == '"' :
            in_str = not in_str
            current += ch
        elif in_str:
            current += ch
        elif ch in "{(":
            depth += 1
            current += ch
        elif ch in "})":
            depth -= 1
            current += ch
        elif ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current)
    return parts


def _parse_declarator(kind: str, declarator: str, table: MetavarTable) -> None:
    regex = None
    values: tuple[str, ...] = ()

    # regular-expression constraint:  f =~ "kernel"
    if "=~" in declarator:
        name_part, regex_part = declarator.split("=~", 1)
        m = _STRING_RE.search(regex_part)
        if not m:
            raise MetavarError(f"malformed regex constraint in {declarator!r}")
        regex = m.group(1)
        declarator = name_part.strip()
    # value-set constraint:  k = {4}   /   c = {i,j}
    elif "=" in declarator and "{" in declarator:
        name_part, values_part = declarator.split("=", 1)
        inner = values_part.strip()
        if not (inner.startswith("{") and inner.endswith("}")):
            raise MetavarError(f"malformed value set in {declarator!r}")
        values = tuple(v.strip() for v in inner[1:-1].split(",") if v.strip())
        declarator = name_part.strip()

    declarator = declarator.strip()
    if not declarator:
        raise MetavarError(f"missing metavariable name for kind {kind!r}")

    source_rule = source_name = None
    name = declarator
    if "." in declarator and not declarator.startswith('"'):
        source_rule, source_name = declarator.split(".", 1)
        name = source_name

    table.add(MetavarDecl(kind=kind, name=name, regex=regex, values=values,
                          source_rule=source_rule, source_name=source_name))


def _parse_fresh(rest: str, table: MetavarTable) -> None:
    """``fresh identifier f512 = "avx512_" ## f`` (several may share a decl)."""
    for declarator in _split_top_level_commas(rest):
        declarator = declarator.strip()
        if not declarator:
            continue
        if "=" not in declarator:
            raise MetavarError(f"fresh identifier needs a seed: {declarator!r}")
        name_part, seed_part = declarator.split("=", 1)
        name = name_part.strip()
        parts: list[FreshPart] = []
        for chunk in seed_part.split("##"):
            chunk = chunk.strip()
            if not chunk:
                continue
            m = _STRING_RE.fullmatch(chunk)
            if m:
                parts.append(FreshPart(kind="str", value=m.group(1)))
            else:
                parts.append(FreshPart(kind="mv", value=chunk))
        table.add(MetavarDecl(kind="fresh identifier", name=name,
                              fresh_parts=tuple(parts)))


def parse_script_header(text: str) -> tuple[list[tuple[str, str, str]], list[str]]:
    """Parse the header section of a ``script:python`` rule.

    Returns ``(imports, outputs)`` where imports are
    ``(local_name, source_rule, source_name)`` triples (``x << rule.mv;``)
    and outputs are names of new metavariables the script will define
    (``nf;``).
    """
    imports: list[tuple[str, str, str]] = []
    outputs: list[str] = []
    text = _strip_comment(text)
    for raw in text.split(";"):
        decl = raw.strip()
        if not decl:
            continue
        if "<<" in decl:
            local, source = decl.split("<<", 1)
            local = local.strip()
            source = source.strip()
            if "." not in source:
                raise MetavarError(f"script import must be rule.name: {decl!r}")
            rule, mv = source.split(".", 1)
            imports.append((local, rule.strip(), mv.strip()))
        else:
            # possibly "identifier nf" style with an explicit kind prefix
            words = decl.split()
            outputs.append(words[-1])
    return imports, outputs
