"""Result and report types for semantic patch application."""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from ..errors import Diagnostic


@dataclass
class RuleReport:
    """What one rule did in one file."""

    rule: str
    matches: int = 0
    deletions: int = 0
    insertions: int = 0

    @property
    def changed_anything(self) -> bool:
        return self.deletions > 0 or self.insertions > 0


@dataclass
class FileResult:
    """The outcome of applying a semantic patch to one file."""

    filename: str
    original_text: str
    text: str
    rule_reports: list[RuleReport] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.text != self.original_text

    def copy(self) -> "FileResult":
        """An independent, equal snapshot: incremental re-application splices
        cached results into fresh :class:`PatchResult`\\ s, and mutating one
        view must not leak into the other (reports included)."""
        return FileResult(filename=self.filename,
                          original_text=self.original_text, text=self.text,
                          rule_reports=[replace(r) for r in self.rule_reports],
                          diagnostics=list(self.diagnostics))

    @property
    def total_matches(self) -> int:
        return sum(r.matches for r in self.rule_reports)

    def matches_of(self, rule: str) -> int:
        # a name can legitimately appear in several reports (a pipeline's
        # combined result concatenates reports across patches, and two
        # patches may both name a rule "r1"); sum them all
        return sum(report.matches for report in self.rule_reports
                   if report.rule == rule)

    def diff(self, context: int = 3) -> str:
        """Unified diff between the original and the patched text."""
        if not self.changed:
            return ""
        original = self.original_text.splitlines(keepends=True)
        patched = self.text.splitlines(keepends=True)
        lines = difflib.unified_diff(original, patched,
                                     fromfile=f"a/{self.filename}",
                                     tofile=f"b/{self.filename}", n=context)
        return "".join(lines)

    def added_lines(self) -> list[str]:
        return [line[1:] for line in self.diff().splitlines()
                if line.startswith("+") and not line.startswith("+++")]

    def removed_lines(self) -> list[str]:
        return [line[1:] for line in self.diff().splitlines()
                if line.startswith("-") and not line.startswith("---")]


@dataclass
class PatchResult:
    """The outcome of applying a semantic patch to a whole code base."""

    files: dict[str, FileResult] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: driver timing/coverage breakdown (a ``DriverStats``); not part of the
    #: semantic outcome, so excluded from equality
    stats: object = field(default=None, compare=False, repr=False)

    def __iter__(self) -> Iterator[FileResult]:
        return iter(self.files.values())

    def __getitem__(self, filename: str) -> FileResult:
        return self.files[filename]

    def get(self, filename: str) -> Optional[FileResult]:
        return self.files.get(filename)

    @property
    def changed_files(self) -> list[FileResult]:
        return [f for f in self.files.values() if f.changed]

    @property
    def total_matches(self) -> int:
        return sum(f.total_matches for f in self.files.values())

    def matches_of(self, rule: str) -> int:
        return sum(f.matches_of(rule) for f in self.files.values())

    def diff(self, context: int = 3) -> str:
        """Concatenated unified diff across all changed files."""
        return "".join(f.diff(context) for f in self.files.values() if f.changed)

    def lines_added(self) -> int:
        return sum(len(f.added_lines()) for f in self.files.values())

    def lines_removed(self) -> int:
        return sum(len(f.removed_lines()) for f in self.files.values())

    def summary(self) -> dict[str, int]:
        return {
            "files": len(self.files),
            "changed_files": len(self.changed_files),
            "matches": self.total_matches,
            "lines_added": self.lines_added(),
            "lines_removed": self.lines_removed(),
        }
