"""Rule orchestration: apply a whole semantic patch to files.

The engine applies rules in the order they appear in the patch.  After a rule
produced edits they are applied to the text and the file is re-parsed before
the next rule runs, so later rules see the already-transformed program — this
is what lets the paper's unrolling rule ``r1`` match the statements that rule
``p1`` just made identical, or rule ``d`` see which clones rule ``c`` removed.

Metavariable bindings are threaded between rules as *environment chains*:
every match (or script execution) extends the environment it inherited, and a
later rule that inherits ``other.mv`` is attempted once per exported
environment of the latest rule in its inheritance chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import Diagnostic
from ..lang.parser import ParseTree, parse_source
from ..options import SpatchOptions, DEFAULT_OPTIONS
from ..smpl.ast import PatchRule, ScriptRule, SemanticPatchAST
from .bindings import BoundValue, Env, EMPTY_ENV
from .edits import EditSet
from .matcher import Matcher, MatchInstance
from .report import FileResult, PatchResult, RuleReport
from .scripting import ScriptRunner
from .transform import FreshNameRegistry, Transformer


@dataclass
class _FileState:
    """Mutable per-file state while rules are applied in sequence."""

    filename: str
    text: str
    tree: Optional[ParseTree] = None
    applied_rules: set[str] = field(default_factory=set)
    exported: dict[str, list[Env]] = field(default_factory=dict)
    reports: list[RuleReport] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)


class Engine:
    """Applies one parsed semantic patch to source files."""

    def __init__(self, patch: SemanticPatchAST,
                 options: Optional[SpatchOptions] = None):
        self.patch = patch
        self.options = options or patch.options
        self.runner = ScriptRunner(enabled=self.options.python_scripting)
        self._initialize_done = False

    # -- public API -----------------------------------------------------------

    def apply_to_file(self, filename: str, text: str) -> FileResult:
        """Apply the whole patch to one file's contents."""
        self._run_initialize_rules()
        state = _FileState(filename=filename, text=text)

        for rule in self.patch.rules:
            if isinstance(rule, ScriptRule):
                self._apply_script_rule(rule, state)
            else:
                self._apply_patch_rule(rule, state)

        return FileResult(filename=filename, original_text=text, text=state.text,
                          rule_reports=state.reports, diagnostics=state.diagnostics)

    def apply_to_files(self, files: dict[str, str]) -> PatchResult:
        """Apply the patch to a mapping ``{filename: text}``."""
        result = PatchResult()
        for filename, text in files.items():
            result.files[filename] = self.apply_to_file(filename, text)
        self._run_finalize_rules(result)
        return result

    # -- initialize / finalize ----------------------------------------------------

    def _run_initialize_rules(self) -> None:
        if self._initialize_done:
            return
        self._initialize_done = True
        for rule in self.patch.rules:
            if isinstance(rule, ScriptRule) and rule.when == "initialize":
                self.runner.run_initialize(rule)

    def _run_finalize_rules(self, result: PatchResult) -> None:
        for rule in self.patch.rules:
            if isinstance(rule, ScriptRule) and rule.when == "finalize":
                result.diagnostics.extend(self.runner.run_finalize(rule))

    # -- environment chains ----------------------------------------------------------

    @staticmethod
    def _source_rules_of(rule) -> list[str]:
        if isinstance(rule, ScriptRule):
            return [src for _local, src, _name in rule.imports]
        return [d.source_rule for d in rule.metavars.inherited() if d.source_rule]

    def _base_environments(self, rule, state: _FileState) -> list[Env]:
        """Environments a rule is attempted under: the exports of the latest
        rule in its inheritance chain, or a single empty environment when it
        inherits nothing.

        Rules this one ``depends on`` also count as chain candidates when they
        exported environments: a script rule that filtered the environments of
        an earlier matching rule (``cocci.include_match(False)``) then
        correctly restricts the rules downstream of it.
        """
        sources = self._source_rules_of(rule)
        dep_candidates = [d for d in rule.dependencies.required if d in state.exported]
        if not sources and not dep_candidates:
            return [EMPTY_ENV]
        order = {name: idx for idx, name in enumerate(self.patch.rule_names)}
        available = [s for s in sources if s in state.exported]
        if set(sources) - set(available):
            return []
        candidates = set(available) | set(dep_candidates)
        if not candidates:
            return [EMPTY_ENV]
        latest = max(candidates, key=lambda s: order.get(s, -1))
        return state.exported[latest]

    # -- script rules --------------------------------------------------------------------

    def _apply_script_rule(self, rule: ScriptRule, state: _FileState) -> None:
        if rule.when in ("initialize", "finalize"):
            return
        if not rule.dependencies.is_satisfied(state.applied_rules):
            return
        base_envs = self._base_environments(rule, state)
        if not base_envs:
            return
        outcome = self.runner.run_script(rule, base_envs)
        state.diagnostics.extend(outcome.diagnostics)
        if outcome.environments:
            state.applied_rules.add(rule.name)
            state.exported[rule.name] = outcome.environments

    # -- patch rules ----------------------------------------------------------------------

    def _current_tree(self, state: _FileState) -> ParseTree:
        if state.tree is None:
            state.tree = parse_source(state.text, name=state.filename,
                                      options=self.options, tolerant=True)
        return state.tree

    def _apply_patch_rule(self, rule: PatchRule, state: _FileState) -> None:
        if not rule.dependencies.is_satisfied(state.applied_rules):
            return
        base_envs = self._base_environments(rule, state)
        if not base_envs:
            return

        tree = self._current_tree(state)
        inherited = {d.name: (d.source_rule, d.source_name)
                     for d in rule.metavars.inherited()}

        instances: list[MatchInstance] = []
        seen_signatures: set = set()
        for base_env in base_envs:
            seeded = base_env.locals_from_inherited(inherited)
            if seeded is None:
                continue
            matcher = Matcher(rule, tree, options=self.options)
            for inst in matcher.match_all(seeded):
                sig = inst.signature()
                if sig in seen_signatures:
                    continue
                seen_signatures.add(sig)
                instances.append(inst)

        if not instances:
            return

        state.applied_rules.add(rule.name)

        edit_set = EditSet(source=tree.source)
        transformer = Transformer(rule, tree, options=self.options,
                                  fresh_registry=FreshNameRegistry.for_tree(tree))
        exported_envs: list[Env] = []
        local_names = rule.exported_metavars
        for inst in instances:
            fresh = transformer.apply_instance(inst, edit_set)
            env = inst.env
            for name, value in fresh.items():
                bound = env.bind(name, value)
                if bound is not None:
                    env = bound
            exported_envs.append(env.exported(rule.name, local_names))
        state.diagnostics.extend(transformer.diagnostics)
        state.exported[rule.name] = exported_envs

        summary = edit_set.summary()
        state.reports.append(RuleReport(rule=rule.name, matches=len(instances),
                                        deletions=summary["deletions"],
                                        insertions=summary["insertions"]))

        if not edit_set.is_empty:
            state.text = edit_set.apply()
            state.tree = None  # force a re-parse for the next rule
        if self.options.verbose:
            state.diagnostics.append(Diagnostic(
                severity="info",
                message=(f"rule {rule.name}: {len(instances)} match(es), "
                         f"{summary['deletions']} deletion(s), "
                         f"{summary['insertions']} insertion(s)"),
                filename=state.filename))
