"""Rule orchestration: apply a whole semantic patch to files.

The heavy lifting lives in three cooperating layers:

* :class:`~repro.engine.session.FileSession` — per-file rule sequencing,
  environment chains and re-parse-after-edit;
* :class:`~repro.engine.prefilter.PatchPrefilter` — required-token analysis
  that skips files a rule cannot possibly match, without parsing them;
* :class:`~repro.engine.driver.Driver` — code-base-level orchestration with
  a content-hash parse cache and optional parallel workers.

:class:`Engine` remains the stable entry point the public API and older
callers use: ``apply_to_file`` runs one session, ``apply_to_files`` is a
thin wrapper over a serial, prefilter-less driver run — i.e. exactly the
historical semantics.  Initialize rules run once per engine before the
first file; finalize rules run once after a whole-code-base application.
"""

from __future__ import annotations

from typing import Optional

from ..options import SpatchOptions
from ..smpl.ast import ScriptRule, SemanticPatchAST
from .cache import TreeCache
from .compile import CompiledPatch, backend_enabled, compiled_patch_for
from .report import FileResult, PatchResult
from .scripting import ScriptRunner
from .session import FileSession


class Engine:
    """Applies one parsed semantic patch to source files."""

    def __init__(self, patch: SemanticPatchAST,
                 options: Optional[SpatchOptions] = None,
                 tree_cache: Optional[TreeCache] = None,
                 compile: Optional[bool] = None):
        self.patch = patch
        self.options = options or patch.options
        self.runner = ScriptRunner(enabled=self.options.python_scripting)
        self.tree_cache = tree_cache
        self.compile_enabled = backend_enabled(compile)
        self._initialize_done = False

    # -- public API -----------------------------------------------------------

    def compiled(self) -> Optional[CompiledPatch]:
        """The patch's compiled matchers (globally cached by fingerprint), or
        ``None`` when the interpreted reference backend is selected."""
        if not self.compile_enabled:
            return None
        return compiled_patch_for(self.patch, self.options)

    def session_for(self, filename: str, text: str,
                    allowed_rules: Optional[frozenset[str]] = None) -> FileSession:
        """A session applying this engine's patch to one file (sharing the
        engine's script namespace and parse cache)."""
        return FileSession(self.patch, self.options, self.runner,
                           filename, text, allowed_rules=allowed_rules,
                           tree_cache=self.tree_cache,
                           compiled=self.compiled())

    def apply_to_file(self, filename: str, text: str) -> FileResult:
        """Apply the whole patch to one file's contents."""
        self._run_initialize_rules()
        return self.session_for(filename, text).run()

    def apply_to_files(self, files: dict[str, str]) -> PatchResult:
        """Apply the patch to a mapping ``{filename: text}`` (serial, no
        prefilter — the driver's compatibility path)."""
        from .driver import Driver

        driver = Driver(self.patch, options=self.options, jobs=1,
                        prefilter=False, engine=self,
                        tree_cache=self.tree_cache)
        return driver.run(files)

    # -- initialize / finalize ------------------------------------------------

    def _run_initialize_rules(self) -> None:
        if self._initialize_done:
            return
        self._initialize_done = True
        for rule in self.patch.rules:
            if isinstance(rule, ScriptRule) and rule.when == "initialize":
                self.runner.run_initialize(rule)

    def _run_finalize_rules(self, result: PatchResult) -> None:
        for rule in self.patch.rules:
            if isinstance(rule, ScriptRule) and rule.when == "finalize":
                result.diagnostics.extend(self.runner.run_finalize(rule))
