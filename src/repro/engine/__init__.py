"""Matching and transformation engine for semantic patches."""

from .bindings import BoundValue, Env, Position, EMPTY_ENV
from .edits import Deletion, EditSet, Insertion
from .matcher import Correspondence, Matcher, MatchInstance, MState
from .transform import Transformer, FreshNameRegistry
from .scripting import CocciHelpers, ScriptRunner, TaggedValue
from .report import FileResult, PatchResult, RuleReport
from .engine import Engine

__all__ = [
    "BoundValue", "Env", "Position", "EMPTY_ENV",
    "Deletion", "EditSet", "Insertion",
    "Correspondence", "Matcher", "MatchInstance", "MState",
    "Transformer", "FreshNameRegistry",
    "CocciHelpers", "ScriptRunner", "TaggedValue",
    "FileResult", "PatchResult", "RuleReport",
    "Engine",
]
