"""Matching and transformation engine for semantic patches.

Layered as driver → prefilter → cache → session → matcher/transform: the
:class:`Driver` orchestrates whole code bases (prefilter skipping, parse
caching, optional parallel workers), each :class:`FileSession` applies the
rule sequence to one file, and :class:`Engine` is the stable per-patch entry
point wrapping both.
"""

from .bindings import BoundValue, Env, Position, EMPTY_ENV
from .edits import Deletion, EditSet, Insertion
from .matcher import Correspondence, Matcher, MatchInstance, MState
from .transform import Transformer, FreshNameRegistry
from .scripting import CocciHelpers, ScriptRunner, TaggedValue
from .report import FileResult, PatchResult, RuleReport
from .cache import DEFAULT_TREE_CACHE, TreeCache, content_sha1
from .memo import MemoEntry, TransformMemo
from .session import FileSession
from .prefilter import PatchPrefilter, TokenIndex, required_tokens, scan_token_set
from .engine import Engine
from .driver import Driver, DriverStats, resolve_jobs
from .pipeline import (FileRecord, PatchPipeline, PipelinePrefilter,
                       PipelineResult, PipelineStats, boundary_hashes,
                       patch_fingerprint, patchset_fingerprint)
from .incremental import (IncrementalPipeline, IncrementalStats,
                          PipelineState)

__all__ = [
    "BoundValue", "Env", "Position", "EMPTY_ENV",
    "Deletion", "EditSet", "Insertion",
    "Correspondence", "Matcher", "MatchInstance", "MState",
    "Transformer", "FreshNameRegistry",
    "CocciHelpers", "ScriptRunner", "TaggedValue",
    "FileResult", "PatchResult", "RuleReport",
    "DEFAULT_TREE_CACHE", "TreeCache", "content_sha1",
    "MemoEntry", "TransformMemo",
    "FileSession",
    "PatchPrefilter", "TokenIndex", "required_tokens", "scan_token_set",
    "Engine",
    "Driver", "DriverStats", "resolve_jobs",
    "FileRecord", "PatchPipeline", "PipelinePrefilter", "PipelineResult",
    "PipelineStats", "boundary_hashes", "patch_fingerprint",
    "patchset_fingerprint",
    "IncrementalPipeline", "IncrementalStats", "PipelineState",
]
