"""Compiled matching: per-rule specialized matchers over a fused node index.

The interpreted :class:`~repro.engine.matcher.Matcher` re-discovers the same
facts for every candidate node: which metavariable declaration a pattern
identifier refers to, which isomorphisms are live for a pattern shape, which
handler a pattern node kind dispatches to — and it enumerates *every*
expression (or statement-sequence start) of a file as a candidate for every
rule.  This module performs that work **once per rule** instead:

* :class:`CompiledRule` lowers a rule's pattern into a chain of closures —
  one specialized match function per pattern node, with the metavariable
  declaration, isomorphism flags, ``E + 0`` base pattern and position
  metavariables resolved at compile time.  Pattern kinds without a
  specialized lowering fall back to the interpreted matcher *for that node
  only*, so the compiled path is byte-identical by construction.
* :class:`NodeIndex` replaces the per-rule tree walks with **one** pre-order
  walk per parse tree, bucketing candidates by root node type (plus callee
  name for calls).  The index is cached on the tree object, and because the
  :class:`~repro.engine.cache.TreeCache` shares parse trees across the patch
  boundaries of a :class:`~repro.engine.pipeline.PatchPipeline`, a 12-patch
  cookbook pays ~one walk per patch boundary instead of twelve.
* :class:`PatternTrie` records which rules of a patch share candidate root
  keys: rules with a common structural prefix probe the same index bucket,
  and their results demultiplex into the ordinary per-rule reports because
  every rule still consumes its own match list.

Soundness of candidate filtering
--------------------------------
A bucket filter must never drop a candidate the interpreter would match.
The filters are therefore isomorphism-aware: a ``++``/``--`` unary pattern
also admits :class:`~repro.lang.ast_nodes.Assignment` candidates (the
``E += 1`` isomorphism), a ``+=``/``-=`` assignment pattern admits
:class:`~repro.lang.ast_nodes.UnaryOp` candidates, an ``E + 0`` pattern
admits everything its base pattern admits, and disjunctions take the union
(conjunctions the intersection) of their branches.  Parenthesized
candidates may be skipped even though the interpreter matches them after
stripping: the stripped expression is itself the next candidate in
pre-order and produces the same correspondences and bindings, so the
signature-level de-duplication of ``match_all`` makes the omission
invisible.  Identifier buckets keyed by *name* (call callees) are consulted
only when the inherited environment cannot rebind that name, because an
undeclared identifier pattern matches whatever an inherited binding says.

Compiled patches are cached globally by
:func:`~repro.engine.pipeline.patch_fingerprint`, so warm spatchd
workspaces and ``--watch`` loops never recompile an unchanged rule.  The
interpreted matcher remains the reference implementation behind
``REPRO_MATCHER=interp`` (or ``compile=False``).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, fields as dc_fields
from itertools import chain
from operator import itemgetter
from threading import Lock
from typing import Callable, Optional, Sequence

from ..lang import ast_nodes as A
from ..lang.parser import ParseTree
from ..obs import registry as _obs
from ..options import SpatchOptions
from ..smpl.ast import (KIND_EXPRESSION, KIND_STATEMENTS, KIND_TOPLEVEL,
                        PatchRule, SemanticPatchAST)
from ..smpl.isomorphisms import (DEFAULT_ISOS, IsoConfig, increment_variants,
                                 plus_zero_operand)
from .bindings import BoundValue, Env, EMPTY_ENV
from .matcher import Matcher, MatchInstance, MState


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------

def backend_enabled(compile_flag: Optional[bool] = None) -> bool:
    """Resolve the matching backend: an explicit ``compile=`` argument wins,
    otherwise the ``REPRO_MATCHER`` environment variable (``interp`` selects
    the reference interpreter; anything else — including unset — selects the
    compiled matcher)."""
    if compile_flag is not None:
        return bool(compile_flag)
    return os.environ.get("REPRO_MATCHER", "compiled").strip().lower() != "interp"


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------

@dataclass
class MatcherStats:
    """Process-wide matcher counters (the ``counters()``/``as_dict()`` hook
    convention TreeCache and TokenIndex already follow).

    Deliberately *not* part of ``DriverStats``/``PipelineStats``: those are
    reconstructed exactly by incremental splicing ("stats match a cold run's
    modulo timing"), which volatile matcher traffic would break.  Surfaced
    through ``--profile`` and the server's ``"profile"`` payload instead.
    """

    #: compiled match_all invocations
    match_calls: int = 0
    #: candidate nodes / sequence starts actually attempted
    candidates_visited: int = 0
    #: candidates skipped by the root-type / secondary-key filters
    candidates_filtered: int = 0
    #: pattern nodes answered by the interpreted fallback closure
    dispatch_fallbacks: int = 0
    #: rules lowered to closure chains
    rules_compiled: int = 0
    #: rules whose whole pattern fell back to the interpreter
    rules_fallback: int = 0
    #: compiled-patch cache traffic (fingerprint-keyed)
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    compile_cache_evictions: int = 0
    #: fused-walk traffic: fresh NodeIndex walks vs. reuses of a cached one
    trees_indexed: int = 0
    index_reuses: int = 0
    #: pattern-trie shape of the most recently built compiled patch
    trie_rules: int = 0
    trie_roots: int = 0

    @property
    def filter_rate(self) -> float:
        total = self.candidates_visited + self.candidates_filtered
        return self.candidates_filtered / total if total else 0.0

    @property
    def fusion_factor(self) -> float:
        """Tree walks saved by index sharing: matches served per walk."""
        return (self.trees_indexed + self.index_reuses) / self.trees_indexed \
            if self.trees_indexed else 0.0

    def as_dict(self) -> dict:
        from dataclasses import asdict

        payload = asdict(self)
        payload["filter_rate"] = self.filter_rate
        payload["fusion_factor"] = self.fusion_factor
        return payload

    def counters(self) -> dict:
        return self.as_dict()

    def reset(self) -> None:
        for f in dc_fields(self):
            setattr(self, f.name, f.default)


MATCHER_STATS = MatcherStats()


def matcher_counters() -> dict:
    """The process-wide matcher counters (``--profile`` / server profile)."""
    return MATCHER_STATS.counters()


def reset_matcher_stats() -> None:
    MATCHER_STATS.reset()


def _matcher_collector():
    """Surface :data:`MATCHER_STATS` and the compile cache through the
    metrics registry (see :mod:`repro.obs.registry`).  A collector rather
    than in-place registry counters: the matcher hot path stays untouched
    and the registry still sees exact process-wide totals at scrape time."""
    stats = MATCHER_STATS
    for field in dc_fields(stats):
        yield (f"repro_matcher_{field.name}_total", "counter",
               f"Matcher counter {field.name!r} (see MatcherStats)",
               {}, float(getattr(stats, field.name)))
    info = compile_cache_info()
    yield ("repro_compile_cache_entries", "gauge",
           "Compiled patches currently cached", {}, float(info["entries"]))


_obs.REGISTRY.register_collector(_matcher_collector)


# ---------------------------------------------------------------------------
# the fused per-tree candidate index
# ---------------------------------------------------------------------------

_EMPTY: tuple = ()


class NodeIndex:
    """Candidate buckets for one parse tree, built in a single pre-order walk.

    ``exprs`` lists every expression as ``(rank, node)`` in the exact order
    ``ast_nodes.expressions_of`` yields them; ``exprs_by_type`` buckets the
    same entries by concrete node type and ``by_callee`` additionally keys
    calls by their (paren-stripped) callee identifier.  ``stmt_seqs`` are
    the statement candidate sequences in the interpreter's
    ``_candidate_sequences`` order: the top-level declarations first, then
    every compound block in pre-order.
    """

    __slots__ = ("exprs", "exprs_by_type", "by_callee", "stmt_seqs",
                 "seq_starts", "stmt_total", "_filter_starts")

    def __init__(self, tree: ParseTree):
        exprs: list[tuple[int, A.Node]] = []
        by_type: dict[type, list[tuple[int, A.Node]]] = {}
        by_callee: dict[str, list[tuple[int, A.Node]]] = {}
        seqs: list[list[A.Node]] = [list(tree.unit.decls)]
        rank = 0
        for node in A.walk(tree.unit):
            if isinstance(node, A.Expr):
                entry = (rank, node)
                exprs.append(entry)
                by_type.setdefault(type(node), []).append(entry)
                if type(node) is A.Call:
                    callee = node.func
                    while isinstance(callee, A.Paren) and callee.expr is not None:
                        callee = callee.expr
                    if isinstance(callee, A.Ident):
                        by_callee.setdefault(callee.name, []).append(entry)
            elif isinstance(node, A.CompoundStmt):
                seqs.append(node.stmts)
            rank += 1
        self.exprs = exprs
        self.exprs_by_type = by_type
        self.by_callee = by_callee
        self.stmt_seqs = seqs
        #: per sequence: concrete element type -> ascending start positions,
        #: so a type-filtered rule probes only viable sequence starts
        starts: list[dict[type, list[int]]] = []
        for seq in seqs:
            by_start: dict[type, list[int]] = {}
            for position, stmt in enumerate(seq):
                by_start.setdefault(type(stmt), []).append(position)
            starts.append(by_start)
        self.seq_starts = starts
        self.stmt_total = sum(len(seq) for seq in seqs)
        self._filter_starts: dict[frozenset, list] = {}

    def starts_for(self, filt: frozenset) -> list:
        """``(sequence index, ascending start positions)`` pairs for the
        sequences holding at least one element whose type is in ``filt`` —
        merged once per (tree, filter) and shared by every rule with the
        same start filter."""
        cached = self._filter_starts.get(filt)
        if cached is None:
            cached = []
            for seq_index, by_type in enumerate(self.seq_starts):
                lists = [bucket for t in filt
                         if (bucket := by_type.get(t))]
                if not lists:
                    continue
                merged = lists[0] if len(lists) == 1 \
                    else sorted(chain.from_iterable(lists))
                cached.append((seq_index, merged))
            self._filter_starts[filt] = cached
        return cached


def index_for(tree: ParseTree) -> NodeIndex:
    """The (cached) candidate index of a tree.  Attached to the tree object
    itself so :class:`~repro.engine.cache.TreeCache` sharing across rules,
    patches and pipeline patch boundaries fuses their walks automatically."""
    index = getattr(tree, "_node_index", None)
    if index is not None:
        MATCHER_STATS.index_reuses += 1
        return index
    index = NodeIndex(tree)
    tree._node_index = index
    MATCHER_STATS.trees_indexed += 1
    return index


# ---------------------------------------------------------------------------
# candidate root filters (isomorphism-aware; see the module docstring)
# ---------------------------------------------------------------------------

#: expression pattern kinds whose dispatch admits exactly their own type
_EXACT_EXPR = (A.Ternary, A.Call, A.KernelLaunch, A.Subscript, A.Member,
               A.Cast, A.InitList, A.CommaExpr, A.SizeofExpr, A.Lambda)


def _expr_filter(pat: A.Node, mvs, isos: IsoConfig) -> Optional[frozenset]:
    """Concrete code node types an expression pattern could match at its
    root (post paren-stripping), or ``None`` when unfilterable."""
    base = _expr_filter_base(pat, mvs, isos)
    if base is None:
        return None
    # the match_expr envelope also tries the 'E + 0' base pattern
    pz = plus_zero_operand(pat, isos)
    if pz is not None:
        sub = _expr_filter(pz, mvs, isos)
        if sub is None:
            return None
        base = base | sub
    return frozenset(base)


def _expr_filter_base(pat: A.Node, mvs, isos: IsoConfig):
    if isinstance(pat, (A.DotsExpr, A.MetaExprList)):
        return None
    if isinstance(pat, A.Disjunction):
        out: set = set()
        for branch in pat.branches:
            f = _expr_filter(branch, mvs, isos)
            if f is None:
                return None
            out |= f
        return out
    if isinstance(pat, A.Conjunction):
        out = None
        for branch in pat.branches:
            f = _expr_filter(branch, mvs, isos)
            if f is not None:
                out = set(f) if out is None else out & f
        return out
    if isinstance(pat, A.Paren):
        if pat.expr is None:
            return None
        inner = _expr_filter(pat.expr, mvs, isos)
        if inner is None:
            return None
        return set(inner) | {A.Paren}
    if isinstance(pat, A.Ident):
        decl = mvs.get(pat.name)
        kind = decl.kind if decl is not None else None
        if kind is None or kind in ("symbol", "identifier", "function",
                                    "declarer", "iterator", "type"):
            return {A.Ident}
        if kind == "constant":
            return {A.Literal}
        return None  # expression-valued metavariables match anything
    if isinstance(pat, A.Literal):
        return {A.Literal}
    if isinstance(pat, A.UnaryOp):
        out = {A.UnaryOp}
        if isos.increment_forms and pat.op in ("++", "--"):
            out.add(A.Assignment)  # i += 1 matches a ++ pattern
        return out
    if isinstance(pat, A.Assignment):
        out = {A.Assignment}
        if isos.increment_forms and pat.op in ("+=", "-="):
            out.add(A.UnaryOp)  # i++ matches a += 1 pattern
        return out
    if isinstance(pat, A.BinaryOp):
        return {A.BinaryOp}
    # dedicated handlers and the generic structural fallback both require
    # the exact code type (the hierarchy is flat: every concrete node class
    # is a leaf)
    return {type(pat)}


def _stmt_filter(pat: A.Node, mvs) -> Optional[frozenset]:
    """Concrete code node types a statement pattern could match, or ``None``
    when unfilterable (dots / statement metavariables / containment)."""
    if isinstance(pat, (A.DotsStmt, A.MetaStmt, A.MetaStmtList)):
        return None
    if isinstance(pat, A.Disjunction):
        out: set = set()
        for branch in pat.branches:
            f = _stmt_branch_filter(branch, mvs)
            if f is None:
                return None
            out |= f
        return frozenset(out)
    if isinstance(pat, A.Conjunction):
        out = None
        for branch in pat.branches:
            f = _stmt_branch_filter(branch, mvs)
            if f is not None:
                out = set(f) if out is None else out & f
        return frozenset(out) if out is not None else None
    if isinstance(pat, A.ExprStmt):
        return frozenset({A.ExprStmt})
    if isinstance(pat, A.DeclStmt):
        return frozenset({A.DeclStmt, A.Declaration})
    if isinstance(pat, A.Declaration):
        return frozenset({A.Declaration, A.DeclStmt})
    return frozenset({type(pat)})


def _stmt_branch_filter(branch: A.Node, mvs) -> Optional[frozenset]:
    if isinstance(branch, A.ExprStmt) and not branch.has_semicolon:
        return None  # containment: the expression may occur in any statement
    return _stmt_filter(branch, mvs)


def _stmt_first_pred(pat: A.Node, mvs) -> Optional[Callable]:
    """Secondary candidate key for a sequence's first pattern element:
    directive matching is prefix-based and environment-independent, so a
    literal leading pragma word (or an include's exact target) can prune
    starts before any match state is built."""
    if isinstance(pat, A.PragmaDirective):
        words = pat.text.split()
        if words and words[0] != "...":
            decl = mvs.get(words[0])
            if decl is None or decl.kind != "pragmainfo":
                first = words[0]

                def pragma_pred(node: A.Node) -> bool:
                    head = node.text.split(None, 1)
                    return bool(head) and head[0] == first

                return pragma_pred
        return None
    if isinstance(pat, A.IncludeDirective):
        target, system = pat.target, pat.system

        def include_pred(node: A.Node) -> bool:
            return node.target == target and node.system == system

        return include_pred
    return None


# ---------------------------------------------------------------------------
# the rule compiler
# ---------------------------------------------------------------------------

def _match_none(m: Matcher, code, st: MState) -> list[MState]:
    """Compiled form of ``match_expr(None, code, st)``."""
    return [st] if code is None else []


class CompiledRule:
    """One rule lowered to specialized closures plus a candidate plan.

    Every closure takes ``(m, code, st)`` where ``m`` is a per-(rule, tree)
    interpreted :class:`~repro.engine.matcher.Matcher` — the runtime context
    providing ``_code_value``/``_bind_positions`` and the reference
    implementation for pattern kinds without a specialized lowering.
    """

    def __init__(self, rule: PatchRule, options: SpatchOptions):
        self.rule = rule
        self.options = options
        self.isos = DEFAULT_ISOS if options.apply_isomorphisms \
            else IsoConfig.all_disabled()
        self.mvs = rule.metavars
        self.kind = rule.pattern_kind
        self._full_cache: dict[int, Callable] = {}
        self._dispatch_cache: dict[int, Callable] = {}
        self._stmt_cache: dict[int, Callable] = {}
        self._fallback = False
        self.expr_filter: Optional[frozenset] = None
        self.first_filter: Optional[frozenset] = None
        self.first_pred: Optional[Callable] = None
        self.callee_key: Optional[tuple[str, str]] = None
        self.min_len = 0
        try:
            self._lower()
            MATCHER_STATS.rules_compiled += 1
        except Exception:
            # a pattern shape the compiler does not understand: keep the
            # rule correct by running it through the reference interpreter
            self._fallback = True
            MATCHER_STATS.rules_fallback += 1

    def _lower(self) -> None:
        rule = self.rule
        if self.kind == KIND_EXPRESSION:
            if not rule.pattern_nodes:
                raise ValueError("empty expression pattern")
            pat = rule.pattern_nodes[0]
            self._expr_f = self._expr_full(pat)
            self.expr_filter = _expr_filter(pat, self.mvs, self.isos)
            if isinstance(pat, A.Call) and isinstance(pat.func, A.Ident) \
                    and plus_zero_operand(pat, self.isos) is None:
                decl = self.mvs.get(pat.func.name)
                if decl is None:
                    self.callee_key = ("env", pat.func.name)
                elif decl.kind == "symbol":
                    self.callee_key = ("always", pat.func.name)
        elif self.kind in (KIND_STATEMENTS, KIND_TOPLEVEL):
            if not rule.pattern_nodes:
                raise ValueError("empty statement pattern")
            self._seq_f = self._compile_seq(rule.pattern_nodes)
            first = rule.pattern_nodes[0]
            self.first_filter = _stmt_filter(first, self.mvs)
            self.first_pred = _stmt_first_pred(first, self.mvs)
            self.min_len = sum(
                1 for p in rule.pattern_nodes
                if not isinstance(p, (A.DotsStmt, A.MetaStmtList)))

    # -- entry point ----------------------------------------------------------

    def match_all(self, tree: ParseTree,
                  inherited_env: Env = EMPTY_ENV) -> list[MatchInstance]:
        m = Matcher(self.rule, tree, options=self.options)
        if self._fallback:
            return m.match_all(inherited_env)
        MATCHER_STATS.match_calls += 1
        base = MState(env=inherited_env)
        results: list[MState] = []
        if self.kind == KIND_EXPRESSION:
            index = index_for(tree)
            expr_f = self._expr_f
            for _rank, node in self._expr_candidates(index, inherited_env):
                results.extend(expr_f(m, node, base))
        elif self.kind == KIND_STATEMENTS:
            self._seq_results(m, index_for(tree), base, results)
        elif self.kind == KIND_TOPLEVEL:
            self._seq_results(m, index_for(tree), base, results,
                              toplevel=True)

        instances = [MatchInstance(rule=self.rule, env=st.env,
                                   correspondences=st.corr, tree=tree)
                     for st in results]
        seen: set = set()
        unique: list[MatchInstance] = []
        for inst in instances:
            sig = inst.signature()
            if sig in seen:
                continue
            seen.add(sig)
            unique.append(inst)
        return unique

    # -- candidate plans ------------------------------------------------------

    def _expr_candidates(self, index: NodeIndex, env: Env):
        stats = MATCHER_STATS
        if self.callee_key is not None:
            mode, name = self.callee_key
            if mode == "always" or env.get(name) is None:
                bucket = index.by_callee.get(name, _EMPTY)
                stats.candidates_visited += len(bucket)
                stats.candidates_filtered += len(index.exprs) - len(bucket)
                return bucket
        filt = self.expr_filter
        if filt is None:
            stats.candidates_visited += len(index.exprs)
            return index.exprs
        lists = [bucket for t in filt
                 if (bucket := index.exprs_by_type.get(t))]
        if not lists:
            stats.candidates_filtered += len(index.exprs)
            return _EMPTY
        if len(lists) == 1:
            merged = lists[0]
        else:
            merged = sorted(chain.from_iterable(lists), key=itemgetter(0))
        stats.candidates_visited += len(merged)
        stats.candidates_filtered += len(index.exprs) - len(merged)
        return merged

    def _seq_results(self, m: Matcher, index: NodeIndex, base: MState,
                     results: list[MState], toplevel: bool = False) -> None:
        filt, pred, min_len = self.first_filter, self.first_pred, self.min_len
        seq_f = self._seq_f
        seqs = index.stmt_seqs
        total = len(seqs[0]) if toplevel else index.stmt_total
        visited = 0
        if filt is None:
            for seq in (seqs[:1] if toplevel else seqs):
                n = len(seq)
                # the interpreter attempts starts 0..n-min_len (every start
                # when min_len is 0): later ones cannot fit the pattern's
                # concrete elements
                limit = n - min_len if min_len else n - 1
                for start in range(limit + 1):
                    for st, _end in seq_f(m, seq, start, base, False, 0):
                        results.append(st)
                if limit >= 0:
                    visited += limit + 1
        else:
            for seq_index, starts in index.starts_for(filt):
                if toplevel and seq_index:
                    break
                seq = seqs[seq_index]
                n = len(seq)
                limit = n - min_len if min_len else n - 1
                for start in starts:
                    if start > limit:
                        break
                    if pred is not None and not pred(seq[start]):
                        continue
                    visited += 1
                    for st, _end in seq_f(m, seq, start, base, False, 0):
                        results.append(st)
        MATCHER_STATS.candidates_visited += visited
        MATCHER_STATS.candidates_filtered += total - visited

    # -- statement lowering ---------------------------------------------------

    def _stmt_full(self, pat: A.Node) -> Callable:
        key = id(pat)
        cached = self._stmt_cache.get(key)
        if cached is None:
            cached = self._compile_stmt(pat)
            self._stmt_cache[key] = cached
        return cached

    def _with_stmt_envelope(self, pat: A.Node, handler: Callable) -> Callable:
        if not pat.pos_metavars:
            return handler

        def full(m, code, st):
            out = []
            for s in handler(m, code, st):
                s2 = m._bind_positions(pat, code, s)
                if s2 is not None:
                    out.append(s2)
            return out

        return full

    def _stmt_interp(self, pat: A.Node) -> Callable:
        def fallback(m, code, st):
            MATCHER_STATS.dispatch_fallbacks += 1
            return m.match_stmt(pat, code, st)

        return fallback

    def _compile_stmt(self, pat: A.Node) -> Callable:
        if isinstance(pat, A.Disjunction):
            branches = [self._compile_stmt_branch(b) for b in pat.branches]

            def disj(m, code, st):
                for branch_f in branches:
                    results = branch_f(m, code, st)
                    if results:
                        return results
                return []

            return disj

        if isinstance(pat, A.Conjunction):
            branches = [self._compile_stmt_branch(b) for b in pat.branches]

            def conj(m, code, st):
                states = [st]
                for branch_f in branches:
                    states = [s2 for s in states for s2 in branch_f(m, code, s)]
                    if not states:
                        return []
                return states

            return conj

        if isinstance(pat, A.MetaStmt):
            name = pat.name

            def meta_stmt(m, code, st):
                st2 = st.bind(name, m._code_value("statement", code))
                if st2 is None:
                    return []
                st2 = m._bind_positions(pat, code, st2)
                if st2 is None:
                    return []
                return [st2.add("binding", pat, code)]

            return meta_stmt

        if isinstance(pat, A.MetaStmtList):
            name = pat.name

            def meta_list(m, code, st):
                st2 = st.bind(name, m._code_value("statement list", [code]))
                return [st2.add("binding", pat, [code])] if st2 is not None else []

            return meta_list

        if isinstance(pat, A.ExprStmt) and pat.expr is not None:
            expr_f = self._expr_full(pat.expr)

            def expr_stmt(m, code, st):
                if not isinstance(code, A.ExprStmt):
                    return []
                return [s.add("node", pat, code)
                        for s in expr_f(m, code.expr, st)]

            return self._with_stmt_envelope(pat, expr_stmt)

        if isinstance(pat, A.PragmaDirective):
            return self._with_stmt_envelope(pat, self._compile_pragma(pat))

        if isinstance(pat, A.IncludeDirective):
            target, system = pat.target, pat.system

            def include(m, code, st):
                if isinstance(code, A.IncludeDirective) and \
                        code.target == target and code.system == system:
                    return [st.add("node", pat, code)]
                return []

            return self._with_stmt_envelope(pat, include)

        if isinstance(pat, A.ReturnStmt):
            value_f = self._expr_full(pat.value) if pat.value is not None else None

            def return_stmt(m, code, st):
                if not isinstance(code, A.ReturnStmt):
                    return []
                if value_f is None:
                    return [st.add("node", pat, code)] if code.value is None else []
                if code.value is None:
                    return []
                return [s.add("node", pat, code)
                        for s in value_f(m, code.value, st)]

            return self._with_stmt_envelope(pat, return_stmt)

        if isinstance(pat, (A.BreakStmt, A.ContinueStmt, A.EmptyStmt)):
            want = type(pat)

            def leaf(m, code, st):
                return [st.add("node", pat, code)] if type(code) is want else []

            return self._with_stmt_envelope(pat, leaf)

        if isinstance(pat, A.IfStmt) and pat.cond is not None \
                and pat.then is not None:
            cond_f = self._expr_full(pat.cond)
            then_f = self._stmt_full(pat.then)
            orelse_f = self._stmt_full(pat.orelse) if pat.orelse is not None \
                else None

            def if_stmt(m, code, st):
                if not isinstance(code, A.IfStmt):
                    return []
                out = []
                for s1 in cond_f(m, code.cond, st):
                    for s2 in then_f(m, code.then, s1):
                        if orelse_f is None and code.orelse is None:
                            out.append(s2.add("node", pat, code))
                        elif orelse_f is not None and code.orelse is not None:
                            for s3 in orelse_f(m, code.orelse, s2):
                                out.append(s3.add("node", pat, code))
                return out

            return self._with_stmt_envelope(pat, if_stmt)

        if isinstance(pat, A.WhileStmt) and pat.cond is not None \
                and pat.body is not None:
            cond_f = self._expr_full(pat.cond)
            body_f = self._stmt_full(pat.body)

            def while_stmt(m, code, st):
                if not isinstance(code, A.WhileStmt):
                    return []
                out = []
                for s in cond_f(m, code.cond, st):
                    for s2 in body_f(m, code.body, s):
                        out.append(s2.add("node", pat, code))
                return out

            return self._with_stmt_envelope(pat, while_stmt)

        if isinstance(pat, A.DoWhileStmt) and pat.cond is not None \
                and pat.body is not None:
            cond_f = self._expr_full(pat.cond)
            body_f = self._stmt_full(pat.body)

            def do_while(m, code, st):
                if not isinstance(code, A.DoWhileStmt):
                    return []
                out = []
                for s in body_f(m, code.body, st):
                    for s2 in cond_f(m, code.cond, s):
                        out.append(s2.add("node", pat, code))
                return out

            return self._with_stmt_envelope(pat, do_while)

        if isinstance(pat, A.ForStmt):
            return self._with_stmt_envelope(pat, self._compile_for(pat))

        if isinstance(pat, A.CompoundStmt):
            seq_f = self._compile_seq(pat.stmts)

            def compound(m, code, st):
                if not isinstance(code, A.CompoundStmt):
                    return []
                return [s.add("node", pat, code)
                        for s, _pos in seq_f(m, code.stmts, 0, st, True, 0)]

            return self._with_stmt_envelope(pat, compound)

        # declarations, function definitions, range-for and anything else:
        # the interpreter's handlers (which do their own position binding)
        return self._stmt_interp(pat)

    def _compile_stmt_branch(self, branch: A.Node) -> Callable:
        if isinstance(branch, (A.Disjunction, A.Conjunction)):
            return self._stmt_full(branch)
        if isinstance(branch, A.ExprStmt) and not branch.has_semicolon:
            if branch.expr is None:
                return lambda m, code, st: []
            expr_f = self._expr_full(branch.expr)

            def containment(m, code, st):
                current, matched = st, False
                for sub in A.expressions_of(code):
                    results = expr_f(m, sub, current)
                    if results:
                        current = results[0]
                        matched = True
                return [current] if matched else []

            return containment
        return self._stmt_full(branch)

    def _compile_pragma(self, pat: A.PragmaDirective) -> Callable:
        plan: list[tuple] = []
        open_ended = False
        for word in pat.text.split():
            if word == "...":
                plan.append(("dots",))
                open_ended = True
                break
            decl = self.mvs.get(word)
            if decl is not None and decl.kind == "pragmainfo":
                plan.append(("info", word))
                open_ended = True
                break
            plan.append(("lit", word))
        n_words = len(pat.text.split())

        def pragma(m, code, st):
            if not isinstance(code, A.PragmaDirective):
                return []
            code_words = code.text.split()
            for i, item in enumerate(plan):
                op = item[0]
                if op == "dots":
                    return [st.add("node", pat, code)]
                if op == "info":
                    rest = " ".join(code_words[i:])
                    st2 = st.bind(item[1], BoundValue(kind="pragmainfo",
                                                      text=rest,
                                                      source_text=rest))
                    return [st2.add("node", pat, code)] if st2 is not None else []
                if i >= len(code_words) or code_words[i] != item[1]:
                    return []
            if not open_ended and len(code_words) != n_words:
                return []
            return [st.add("node", pat, code)]

        return pragma

    def _compile_for(self, pat: A.ForStmt) -> Callable:
        def part_plan(part, compile_expr: bool):
            if isinstance(part, A.DotsExpr):
                return ("dots", part)
            if part is None:
                return ("none",)
            if compile_expr:
                return ("match", self._expr_full(part))
            return ("init", part)

        init_plan = part_plan(pat.init, compile_expr=False)
        cond_plan = part_plan(pat.cond, compile_expr=True)
        step_plan = part_plan(pat.step, compile_expr=True)
        body_f = self._stmt_full(pat.body) if pat.body is not None else None

        def run_part(plan, m, code_part, states):
            out = []
            op = plan[0]
            for s in states:
                if op == "dots":
                    absorbed = [code_part] if code_part is not None else []
                    out.append(s.add("dots", plan[1], absorbed))
                elif op == "none":
                    if code_part is None:
                        out.append(s)
                elif code_part is not None:
                    if op == "init":
                        out.extend(m.match_for_init(plan[1], code_part, s))
                    else:
                        out.extend(plan[1](m, code_part, s))
            return out

        def for_stmt(m, code, st):
            if not isinstance(code, A.ForStmt):
                return []
            states = [st]
            states = run_part(init_plan, m, code.init, states)
            states = run_part(cond_plan, m, code.cond, states)
            states = run_part(step_plan, m, code.step, states)
            out = []
            for s in states:
                if body_f is None and code.body is None:
                    out.append(s.add("node", pat, code))
                elif body_f is not None and code.body is not None:
                    for s2 in body_f(m, code.body, s):
                        out.append(s2.add("node", pat, code))
            return out

        return for_stmt

    def _compile_seq(self, pats: Sequence[A.Node]) -> Callable:
        steps: list[tuple] = []
        for p in pats:
            if isinstance(p, A.MetaStmtList):
                steps.append(("list", p))
            elif isinstance(p, A.DotsStmt):
                steps.append(("dots", p))
            else:
                steps.append(("stmt", p, self._stmt_full(p)))
        n_steps = len(steps)
        max_dots = self.options.max_dots_statements

        def mseq(m, codes, pos, st, anchored_end, step):
            if step == n_steps:
                if anchored_end and pos != len(codes):
                    return []
                return [(st, pos)]
            item = steps[step]
            if item[0] != "stmt":
                head = item[1]
                out = []
                max_skip = min(len(codes) - pos, max_dots)
                last = step == n_steps - 1
                for skip in range(0, max_skip + 1):
                    absorbed = list(codes[pos:pos + skip])
                    if item[0] == "list":
                        st2 = st.bind(head.name,
                                      m._code_value("statement list", absorbed))
                        if st2 is None:
                            continue
                        st2 = st2.add("binding", head, absorbed)
                    else:
                        st2 = st.add("dots", head, absorbed)
                    tails = mseq(m, codes, pos + skip, st2, anchored_end,
                                 step + 1)
                    out.extend(tails)
                    if tails and not anchored_end and last:
                        break
                return out
            if pos >= len(codes):
                return []
            stmt_f = item[2]
            out = []
            for st2 in stmt_f(m, codes[pos], st):
                out.extend(mseq(m, codes, pos + 1, st2, anchored_end, step + 1))
            return out

        return mseq

    # -- expression lowering --------------------------------------------------

    def _expr_full_opt(self, pat: Optional[A.Node]) -> Callable:
        if pat is None:
            return _match_none
        return self._expr_full(pat)

    def _expr_full(self, pat: A.Node) -> Callable:
        key = id(pat)
        cached = self._full_cache.get(key)
        if cached is not None:
            return cached
        dispatch = self._expr_dispatch(pat)
        strip = self.isos.drop_parens and not isinstance(pat, A.Paren)
        pz = plus_zero_operand(pat, self.isos)
        pz_dispatch = self._expr_dispatch(pz) if pz is not None else None
        pos_names = pat.pos_metavars
        Paren = A.Paren

        def full(m, code, st):
            if code is None:
                return []
            if strip and isinstance(code, Paren):
                stripped = code
                while isinstance(stripped, Paren) and stripped.expr is not None:
                    stripped = stripped.expr
                code = stripped
            results = dispatch(m, code, st)
            if not results and pz_dispatch is not None:
                results = [s.add("binding", pat, code)
                           for s in pz_dispatch(m, code, st)]
            if not pos_names:
                return results
            out = []
            for s in results:
                s2 = m._bind_positions(pat, code, s)
                if s2 is not None:
                    out.append(s2)
            return out

        self._full_cache[key] = full
        return full

    def _expr_interp(self, pat: A.Node) -> Callable:
        def fallback(m, code, st):
            MATCHER_STATS.dispatch_fallbacks += 1
            return m._match_expr_dispatch(pat, code, st)

        return fallback

    def _expr_dispatch(self, pat: A.Node) -> Callable:
        key = id(pat)
        cached = self._dispatch_cache.get(key)
        if cached is None:
            cached = self._compile_dispatch(pat)
            self._dispatch_cache[key] = cached
        return cached

    def _compile_dispatch(self, pat: A.Node) -> Callable:
        isos = self.isos

        if isinstance(pat, A.DotsExpr):
            def dots(m, code, st):
                return [st.add("dots", pat, [code])]

            return dots

        if isinstance(pat, A.Disjunction):
            branches = [self._expr_full(b) for b in pat.branches]

            def disj(m, code, st):
                for branch_f in branches:
                    results = branch_f(m, code, st)
                    if results:
                        return results
                return []

            return disj

        if isinstance(pat, A.Conjunction):
            branches = [self._expr_full(b) for b in pat.branches]

            def conj(m, code, st):
                states = [st]
                for branch_f in branches:
                    states = [s2 for s in states for s2 in branch_f(m, code, s)]
                    if not states:
                        return []
                return states

            return conj

        if isinstance(pat, A.Ident):
            return self._compile_ident(pat)

        if isinstance(pat, A.Literal):
            value = pat.value

            def literal(m, code, st):
                if isinstance(code, A.Literal) and value == code.value:
                    return [st.add("node", pat, code)]
                return []

            return literal

        if isinstance(pat, A.Paren):
            inner_f = self._expr_full_opt(pat.expr)

            def paren(m, code, st):
                if isinstance(code, A.Paren):
                    return [s.add("node", pat, code)
                            for s in inner_f(m, code.expr, st)]
                return inner_f(m, code, st)

            return paren

        if isinstance(pat, A.BinaryOp):
            op = pat.op
            left_f = self._expr_full_opt(pat.left)
            right_f = self._expr_full_opt(pat.right)
            commute = isos.commutative and op in A.COMMUTATIVE_OPS

            def binary(m, code, st):
                if not (isinstance(code, A.BinaryOp) and code.op == op):
                    return []
                out = []
                for s in left_f(m, code.left, st):
                    for s2 in right_f(m, code.right, s):
                        out.append(s2.add("node", pat, code))
                if out or not commute:
                    return out
                for s in left_f(m, code.right, st):
                    for s2 in right_f(m, code.left, s):
                        out.append(s2.add("node", pat, code))
                return out

            return binary

        if isinstance(pat, A.UnaryOp):
            op, prefix = pat.op, pat.prefix
            operand_f = self._expr_full_opt(pat.operand)
            inc = isos.increment_forms

            def unary(m, code, st):
                out = []
                if isinstance(code, A.UnaryOp) and code.op == op \
                        and code.prefix == prefix:
                    out = [s.add("node", pat, code)
                           for s in operand_f(m, code.operand, st)]
                if not out and inc:
                    for alt in increment_variants(code, isos):
                        inner = unary(m, alt, st)
                        out = [s.add("binding", pat, code) for s in inner]
                        if out:
                            break
                return out

            return unary

        if isinstance(pat, A.Assignment):
            op = pat.op
            target_f = self._expr_full_opt(pat.target)
            value_f = self._expr_full_opt(pat.value)
            inc = isos.increment_forms

            def assign(m, code, st):
                if isinstance(code, A.Assignment) and code.op == op:
                    out = []
                    for s in target_f(m, code.target, st):
                        for s2 in value_f(m, code.value, s):
                            out.append(s2.add("node", pat, code))
                    return out
                if inc:
                    for alt in increment_variants(code, isos):
                        if isinstance(alt, A.Assignment):
                            inner = assign(m, alt, st)
                            if inner:
                                return [s.add("binding", pat, code)
                                        for s in inner]
                return []

            return assign

        if isinstance(pat, A.Ternary):
            cond_f = self._expr_full_opt(pat.cond)
            then_f = self._expr_full_opt(pat.then)
            orelse_f = self._expr_full_opt(pat.orelse)

            def ternary(m, code, st):
                if not isinstance(code, A.Ternary):
                    return []
                out = []
                for s in cond_f(m, code.cond, st):
                    for s2 in then_f(m, code.then, s):
                        for s3 in orelse_f(m, code.orelse, s2):
                            out.append(s3.add("node", pat, code))
                return out

            return ternary

        if isinstance(pat, A.Call):
            func_f = self._expr_full_opt(pat.func)
            args_f = self._compile_expr_list(pat.args)

            def call(m, code, st):
                if not isinstance(code, A.Call):
                    return []
                out = []
                for s in func_f(m, code.func, st):
                    for s2, _pos in args_f(m, code.args, 0, s, 0):
                        out.append(s2.add("node", pat, code))
                return out

            return call

        if isinstance(pat, A.KernelLaunch):
            func_f = self._expr_full_opt(pat.func)
            config_f = self._compile_expr_list(pat.config)
            args_f = self._compile_expr_list(pat.args)

            def launch(m, code, st):
                if not isinstance(code, A.KernelLaunch):
                    return []
                out = []
                for s in func_f(m, code.func, st):
                    for s2, _p in config_f(m, code.config, 0, s, 0):
                        for s3, _p2 in args_f(m, code.args, 0, s2, 0):
                            out.append(s3.add("node", pat, code))
                return out

            return launch

        if isinstance(pat, A.Subscript):
            base_f = self._expr_full_opt(pat.base)
            indices_f = self._compile_expr_list(pat.indices)

            def subscript(m, code, st):
                if not isinstance(code, A.Subscript):
                    return []
                out = []
                for s in base_f(m, code.base, st):
                    for s2, _pos in indices_f(m, code.indices, 0, s, 0):
                        out.append(s2.add("node", pat, code))
                return out

            return subscript

        if isinstance(pat, A.Member):
            op, name = pat.op, pat.name
            base_f = self._expr_full_opt(pat.base)

            def member(m, code, st):
                if not isinstance(code, A.Member) or op != code.op:
                    return []
                out = []
                for s in base_f(m, code.base, st):
                    s2 = m._match_name(name, code.name, s)
                    if s2 is not None:
                        out.append(s2.add("node", pat, code))
                return out

            return member

        if isinstance(pat, A.MetaExprList):
            name = pat.name

            def meta_expr_list(m, code, st):
                st2 = st.bind(name, m._code_value("expression list", [code]))
                return [st2.add("binding", pat, [code])] if st2 is not None \
                    else []

            return meta_expr_list

        # Cast / InitList / CommaExpr / SizeofExpr / Lambda and anything the
        # parser grows later: the interpreter's dispatch ladder is the
        # reference for these colder shapes
        return self._expr_interp(pat)

    def _compile_ident(self, pat: A.Ident) -> Callable:
        name = pat.name
        decl = self.mvs.get(name)
        kind = decl.kind if decl is not None else None

        if decl is None:
            def plain(m, code, st):
                if isinstance(code, A.Ident):
                    bound = st.env.get(name)
                    target = bound.text if bound is not None else name
                    if code.name == target:
                        return [st.add("node", pat, code)]
                return []

            return plain

        if kind == "symbol":
            def symbol(m, code, st):
                if isinstance(code, A.Ident) and code.name == name:
                    return [st.add("node", pat, code)]
                return []

            return symbol

        if kind in ("identifier", "function", "declarer", "iterator"):
            check = decl.check_name_constraint

            def ident(m, code, st):
                if not isinstance(code, A.Ident):
                    return []
                if not check(code.name):
                    return []
                st2 = st.bind(name, BoundValue.for_name(kind, code.name))
                return [st2.add("binding", pat, code)] if st2 is not None else []

            return ident

        if kind == "constant":
            check = decl.check_constant_constraint

            def constant(m, code, st):
                if not isinstance(code, A.Literal):
                    return []
                if not check(code.value):
                    return []
                st2 = st.bind(name, BoundValue(kind="constant", text=code.value,
                                               source_text=code.value))
                return [st2.add("binding", pat, code)] if st2 is not None else []

            return constant

        if kind in ("expression", "idexpression", "local idexpression"):
            def expr_mv(m, code, st):
                st2 = st.bind(name, m._code_value("expression", code))
                return [st2.add("binding", pat, code)] if st2 is not None else []

            return expr_mv

        if kind == "expression list":
            def expr_list_mv(m, code, st):
                st2 = st.bind(name, m._code_value("expression list", [code]))
                return [st2.add("binding", pat, [code])] if st2 is not None \
                    else []

            return expr_list_mv

        if kind == "type":
            def type_mv(m, code, st):
                if isinstance(code, A.Ident):
                    st2 = st.bind(name, BoundValue(kind="type", text=code.name,
                                                   source_text=code.name))
                    return [st2.add("binding", pat, code)] if st2 is not None \
                        else []
                return []

            return type_mv

        def never(m, code, st):
            return []

        return never

    def _compile_expr_list(self, pats: Sequence[A.Node]) -> Callable:
        elems: list[tuple] = []
        for p in pats:
            if isinstance(p, A.MetaExprList):
                elems.append(("list", p))
            elif isinstance(p, A.DotsExpr):
                elems.append(("dots", p))
            else:
                elems.append(("expr", p, self._expr_full(p)))
        n_elems = len(elems)

        def mlist(m, codes, pos, st, step):
            if step == n_elems:
                return [(st, pos)] if pos == len(codes) else []
            item = elems[step]
            if item[0] != "expr":
                head = item[1]
                out = []
                for skip in range(0, len(codes) - pos + 1):
                    absorbed = list(codes[pos:pos + skip])
                    if item[0] == "list":
                        st2 = st.bind(head.name,
                                      m._code_value("expression list", absorbed))
                        if st2 is None:
                            continue
                        st2 = st2.add("binding", head, absorbed)
                    else:
                        st2 = st.add("dots", head, absorbed)
                    out.extend(mlist(m, codes, pos + skip, st2, step + 1))
                return out
            if pos >= len(codes):
                return []
            out = []
            for s in item[2](m, codes[pos], st):
                out.extend(mlist(m, codes, pos + 1, s, step + 1))
            return out

        return mlist


# ---------------------------------------------------------------------------
# the per-patch trie + compiled-patch container
# ---------------------------------------------------------------------------

class PatternTrie:
    """Which rules of one compiled patch share candidate root keys.

    The first trie level is the candidate root (node type for expression and
    statement patterns, ``*`` for unfilterable rules); the second level is
    the secondary key where one exists (call callee name, leading pragma
    word, include target).  Rules mapped to the same path probe the same
    :class:`NodeIndex` bucket — one shared walk, per-rule demultiplexed
    results — which is what makes a multi-rule patch cost ~one traversal
    per tree state instead of one per rule.
    """

    def __init__(self, rules: Sequence[CompiledRule]):
        self.paths: dict[tuple, list[str]] = {}
        for crule in rules:
            for path in self._paths_of(crule):
                self.paths.setdefault(path, []).append(crule.rule.name)
        self.n_rules = len(rules)
        MATCHER_STATS.trie_rules = self.n_rules
        MATCHER_STATS.trie_roots = len(self.paths)

    @staticmethod
    def _paths_of(crule: CompiledRule) -> list[tuple]:
        kind = crule.kind
        if kind == KIND_EXPRESSION:
            if crule.callee_key is not None:
                return [("expr", A.Call.__name__, crule.callee_key[1])]
            if crule.expr_filter is None:
                return [("expr", "*")]
            return [("expr", t.__name__) for t in sorted(
                crule.expr_filter, key=lambda t: t.__name__)]
        if kind in (KIND_STATEMENTS, KIND_TOPLEVEL):
            if crule.first_filter is None:
                return [("stmt", "*")]
            first = crule.rule.pattern_nodes[0]
            if isinstance(first, A.PragmaDirective) and crule.first_pred:
                return [("stmt", A.PragmaDirective.__name__,
                         first.text.split()[0])]
            if isinstance(first, A.IncludeDirective):
                return [("stmt", A.IncludeDirective.__name__, first.target)]
            return [("stmt", t.__name__) for t in sorted(
                crule.first_filter, key=lambda t: t.__name__)]
        return [("other", "*")]

    @property
    def fusion_factor(self) -> float:
        """Rules served per distinct root path (>1 means prefix sharing)."""
        return self.n_rules / len(self.paths) if self.paths else 0.0

    def rules_at(self, *path) -> list[str]:
        return list(self.paths.get(tuple(path), []))


class CompiledPatch:
    """Lazily compiled rules of one semantic patch under one options set."""

    def __init__(self, patch: SemanticPatchAST, options: SpatchOptions):
        self.patch = patch
        self.options = options
        self._rules: dict[str, CompiledRule] = {}
        self._by_id = {id(rule): rule for rule in patch.patch_rules()}
        self._by_name = {rule.name: rule for rule in patch.patch_rules()}
        self._trie: Optional[PatternTrie] = None

    def rule_for(self, rule: PatchRule) -> Optional[CompiledRule]:
        """The compiled form of ``rule`` — matched by identity for the patch
        this compilation came from, by name for a fingerprint-equal twin AST
        (identical SMPL source parses to an identical rule, so the compiled
        twin is interchangeable for matching *and* transforming as long as
        the caller consistently uses ``compiled.rule``)."""
        base = self._by_id.get(id(rule)) or self._by_name.get(rule.name)
        if base is None:
            return None
        compiled = self._rules.get(base.name)
        if compiled is None:
            compiled = CompiledRule(base, self.options)
            self._rules[base.name] = compiled
        return compiled

    def trie(self) -> PatternTrie:
        """The patch's pattern trie (compiles every rule on first use)."""
        if self._trie is None:
            for rule in self.patch.patch_rules():
                self.rule_for(rule)
            self._trie = PatternTrie(list(self._rules.values()))
        return self._trie


# ---------------------------------------------------------------------------
# the fingerprint-keyed compile cache
# ---------------------------------------------------------------------------

MAX_COMPILED_PATCHES = 128

_COMPILE_CACHE: "OrderedDict[str, CompiledPatch]" = OrderedDict()
_COMPILE_LOCK = Lock()


def _compile_key(patch: SemanticPatchAST, options: SpatchOptions) -> str:
    from .pipeline import patch_fingerprint

    # the patch's display name cannot change what compilation produces, so
    # every alias of one (source, options) pair shares a cache entry
    return patch_fingerprint(patch, options, "<compiled>")


def compile_key(patch: SemanticPatchAST, options: SpatchOptions) -> str:
    """The cache identity of ``patch``'s compiled form — what
    :func:`evict_compiled` would drop.  Holders that share the global cache
    (the server's workspaces refcount these keys) use it to agree on when an
    eviction is actually safe."""
    return _compile_key(patch, options)


def compiled_patch_for(patch: SemanticPatchAST,
                       options: SpatchOptions) -> CompiledPatch:
    """The (globally cached) compiled form of ``patch`` under ``options``,
    keyed by :func:`~repro.engine.pipeline.patch_fingerprint` so warm
    spatchd workspaces and ``--watch`` loops never recompile an unchanged
    rule."""
    key = _compile_key(patch, options)
    with _COMPILE_LOCK:
        cached = _COMPILE_CACHE.get(key)
        if cached is not None:
            _COMPILE_CACHE.move_to_end(key)
            MATCHER_STATS.compile_cache_hits += 1
            return cached
        MATCHER_STATS.compile_cache_misses += 1
    compiled = CompiledPatch(patch, options)
    with _COMPILE_LOCK:
        _COMPILE_CACHE[key] = compiled
        while len(_COMPILE_CACHE) > MAX_COMPILED_PATCHES:
            _COMPILE_CACHE.popitem(last=False)
            MATCHER_STATS.compile_cache_evictions += 1
    return compiled


def evict_compiled(patch: SemanticPatchAST, options: SpatchOptions) -> bool:
    """Drop a patch's compiled form (the server calls this when its
    per-workspace patch-spec LRU evicts the spec that produced it)."""
    key = _compile_key(patch, options)
    with _COMPILE_LOCK:
        if key in _COMPILE_CACHE:
            del _COMPILE_CACHE[key]
            MATCHER_STATS.compile_cache_evictions += 1
            return True
    return False


def compile_cache_info() -> dict:
    with _COMPILE_LOCK:
        return {"entries": len(_COMPILE_CACHE),
                "max_entries": MAX_COMPILED_PATCHES}


def clear_compile_cache() -> None:
    with _COMPILE_LOCK:
        _COMPILE_CACHE.clear()
