"""Textual edits: the output of the transformation stage.

A rule application produces a set of byte-range deletions and point
insertions against the original file.  :class:`EditSet` normalises them
(merging overlapping deletions, extending whole-line deletions to remove the
now-empty lines, relocating insertions that were anchored inside a removed
region) and applies them, producing the patched text.  Everything not touched
by an edit is preserved byte-for-byte — the property that makes the output
reviewable as an ordinary patch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from ..errors import EditConflictError
from ..lang.source import SourceFile


#: insertion placement modes
PLACE_INLINE = "inline"
PLACE_NEWLINE_AFTER = "newline-after"
PLACE_NEWLINE_BEFORE = "newline-before"


@dataclass(frozen=True)
class Deletion:
    """Delete the byte range ``[start, end)`` of the original text."""

    start: int
    end: int
    origin: str = ""

    def overlaps(self, other: "Deletion") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class Insertion:
    """Insert ``lines`` at byte ``offset`` of the original text.

    ``placement`` controls rendering: inline insertions join the lines with a
    single space and add no newline; newline insertions put each line on its
    own line using ``indent``.
    """

    offset: int
    lines: tuple[str, ...]
    placement: str = PLACE_INLINE
    indent: str = ""
    origin: str = ""

    def render(self, at_line_start: bool = False) -> str:
        if self.placement == PLACE_INLINE:
            return " ".join(self.lines)
        if self.placement == PLACE_NEWLINE_AFTER:
            return "".join("\n" + self.indent + line for line in self.lines)
        # PLACE_NEWLINE_BEFORE: the insertion point is at the start of
        # existing content (just after its indentation), so terminate each
        # inserted line and re-indent the following original content.
        if at_line_start:
            return "".join(self.indent + line + "\n" for line in self.lines)
        return ("\n".join(self.lines) + "\n" + self.indent)


@dataclass
class EditSet:
    """A collection of edits against one source file."""

    source: SourceFile
    deletions: list[Deletion] = field(default_factory=list)
    insertions: list[Insertion] = field(default_factory=list)

    # -- building -------------------------------------------------------------

    def delete(self, start: int, end: int, origin: str = "") -> None:
        if end > start:
            self.deletions.append(Deletion(start=start, end=end, origin=origin))

    def insert(self, offset: int, lines: Iterable[str], placement: str = PLACE_INLINE,
               indent: str = "", origin: str = "") -> None:
        lines = tuple(lines)
        if lines:
            self.insertions.append(Insertion(offset=offset, lines=lines,
                                             placement=placement, indent=indent,
                                             origin=origin))

    def extend(self, other: "EditSet") -> None:
        self.deletions.extend(other.deletions)
        self.insertions.extend(other.insertions)

    @property
    def is_empty(self) -> bool:
        return not self.deletions and not self.insertions

    def __len__(self) -> int:
        return len(self.deletions) + len(self.insertions)

    # -- normalisation ----------------------------------------------------------

    def _merged_deletions(self) -> list[Deletion]:
        """Merge overlapping deletions and deletions separated only by
        whitespace that does not span a newline."""
        text = self.source.text
        dels = sorted(set(self.deletions), key=lambda d: (d.start, d.end))
        merged: list[Deletion] = []
        for d in dels:
            if merged:
                prev = merged[-1]
                gap = text[prev.end:d.start]
                if d.start <= prev.end or (gap.strip() == "" and "\n" not in gap):
                    merged[-1] = Deletion(start=prev.start, end=max(prev.end, d.end),
                                          origin=prev.origin or d.origin)
                    continue
            merged.append(d)
        return merged

    def _extend_full_lines(self, deletions: list[Deletion]) -> list[Deletion]:
        """If a deletion leaves only whitespace on every line it touches,
        extend it to swallow those lines entirely (including the newline)."""
        text = self.source.text
        out: list[Deletion] = []
        for d in deletions:
            start_loc = self.source.location(d.start)
            end_loc = self.source.location(max(d.start, d.end - 1))
            line_start = self.source.line_start(start_loc.line)
            line_end = self.source.line_end(end_loc.line)
            before = text[line_start:d.start]
            after = text[d.end:line_end]
            if before.strip() == "" and after.strip() == "":
                new_end = line_end + 1 if line_end < len(text) and text[line_end] == "\n" \
                    else line_end
                out.append(Deletion(start=line_start, end=new_end, origin=d.origin))
            else:
                out.append(d)
        # extension may have created new overlaps
        out = sorted(out, key=lambda d: (d.start, d.end))
        merged: list[Deletion] = []
        for d in out:
            if merged and d.start <= merged[-1].end:
                merged[-1] = Deletion(start=merged[-1].start, end=max(merged[-1].end, d.end),
                                      origin=merged[-1].origin or d.origin)
            else:
                merged.append(d)
        return merged

    def _relocate_insertions(self, deletions: list[Deletion]) -> list[Insertion]:
        """Insertions anchored inside a removed region are placed at the start
        of that region, rendered one-per-line with their recorded indent."""
        out: list[Insertion] = []
        for ins in sorted(self.insertions, key=lambda i: i.offset):
            target: Optional[Deletion] = None
            for d in deletions:
                if d.start < ins.offset < d.end or (ins.offset == d.end and
                                                    self._deletion_covers_line(d, ins.offset)):
                    target = d
                    break
            if target is None:
                out.append(ins)
                continue
            out.append(replace(ins, offset=target.start,
                               placement=PLACE_NEWLINE_BEFORE))
        # drop exact duplicates (same offset, same rendered content)
        seen: set[tuple] = set()
        unique: list[Insertion] = []
        for ins in out:
            key = (ins.offset, ins.lines, ins.placement, ins.indent)
            if key in seen:
                continue
            seen.add(key)
            unique.append(ins)
        return unique

    def _deletion_covers_line(self, deletion: Deletion, offset: int) -> bool:
        """True when the deletion swallowed whole lines and ``offset`` was at
        the very end of that region (so the insertion would otherwise dangle
        between two removed lines)."""
        text = self.source.text
        return (deletion.end > deletion.start
                and text[deletion.start:deletion.end].endswith("\n")
                and offset == deletion.end - 0)

    # -- application -------------------------------------------------------------

    def apply(self) -> str:
        """Apply all edits, returning the patched text."""
        text = self.source.text
        deletions = self._extend_full_lines(self._merged_deletions())
        insertions = self._relocate_insertions(deletions)

        # sanity: insertions must not fall strictly inside a deleted range now
        for ins in insertions:
            for d in deletions:
                if d.start < ins.offset < d.end:
                    raise EditConflictError(
                        f"insertion at offset {ins.offset} falls inside deleted "
                        f"range [{d.start}, {d.end})")

        events: list[tuple[int, int, object]] = []
        for d in deletions:
            events.append((d.start, 0, d))
        for ins in insertions:
            events.append((ins.offset, 1, ins))
        events.sort(key=lambda e: (e[0], e[1]))

        out: list[str] = []
        pos = 0
        for offset, _prio, edit in events:
            if offset > pos:
                out.append(text[pos:offset])
                pos = offset
            if isinstance(edit, Deletion):
                pos = max(pos, edit.end)
            else:
                at_line_start = offset == 0 or text[offset - 1] == "\n"
                out.append(edit.render(at_line_start=at_line_start))
        out.append(text[pos:])
        return "".join(out)

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        return {
            "deletions": len(self.deletions),
            "insertions": len(self.insertions),
            "deleted_bytes": sum(d.end - d.start for d in self._merged_deletions()),
            "inserted_lines": sum(len(i.lines) for i in self.insertions),
        }
