"""Content-hash-keyed :class:`~repro.lang.parser.ParseTree` cache.

Parsing dominates the cost of applying a semantic patch to a code base, and
the same file contents are parsed over and over across benchmark sweeps,
differential runs (prefilter on/off) and repeated ``apply`` calls.  Trees are
immutable once built — matching and transformation only read them, and edits
always produce *new* text which re-parses under a new key — so they can be
shared safely between sessions and between patches that use the same parser
options.

The cache key is ``(filename, sha1(text), options)``: the filename matters
because diagnostics embedded in the tree carry it, and the (frozen, hashable)
options matter because they change how the front end disambiguates.

Two callers racing on the same key are deduplicated: the first one parses
while the others wait on a per-key in-flight marker, so a tree is never built
twice and the hit/miss counters stay exact (one miss per unique parse, one
hit per answered caller).  The cache can also be persisted (:meth:`save` /
:meth:`load`): content-hash keys stay valid across processes, which lets
repeated CLI invocations skip parsing files they have seen before.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
import threading
from collections import OrderedDict
from typing import Optional

from ..lang.parser import ParseTree, parse_source
from ..lang.source import SourceFile
from ..obs import registry as _obs
from ..options import SpatchOptions

#: format tag for persisted caches; bump on incompatible layout changes
_PERSIST_VERSION = 1

# registry children created once at import: the hot path pays one locked
# integer add, and fork-pool workers ship these as deltas so parse-cache
# traffic aggregates in the parent (closing the old "per-worker, not
# aggregated" gap in DriverStats.describe)
_M_HITS = _obs.REGISTRY.counter(
    "repro_parse_cache_hits_total", "Parse-cache hits", cache="tree")
_M_MISSES = _obs.REGISTRY.counter(
    "repro_parse_cache_misses_total", "Parse-cache misses (real parses)",
    cache="tree")
_M_SHARED_HITS = _obs.REGISTRY.counter(
    "repro_parse_cache_hits_total", "Shared-store hits", cache="shared")
_M_SHARED_MISSES = _obs.REGISTRY.counter(
    "repro_parse_cache_misses_total", "Shared-store misses", cache="shared")


def content_sha1(text: str) -> str:
    """The content hash every cache/incremental layer keys on.

    ``surrogatepass`` keeps lone surrogates from ``surrogateescape`` file
    loading hashable, so byte-identical non-UTF-8 files hash identically.
    """
    return hashlib.sha1(text.encode("utf-8", "surrogatepass")).hexdigest()


class _InFlight:
    """One racing parse: the owner fills ``tree``/``error`` and sets the
    event; waiters block on it instead of re-parsing the same text."""

    __slots__ = ("event", "tree", "error")

    def __init__(self):
        self.event = threading.Event()
        self.tree: Optional[ParseTree] = None
        self.error: Optional[BaseException] = None


class SharedTreeStore:
    """A content-addressed parse-tree layer shared *across* caches.

    Per-workspace :class:`TreeCache` keys include the filename (diagnostics
    derive it from ``tree.source.name``), so two workspaces holding the same
    vendored file under different paths each parse it.  This store drops the
    filename from the key — ``(sha1(text), options) → tree`` — and repairs
    the one filename capture on the way out: a hit whose stored tree was
    parsed under a different name is *rebound* by replacing ``tree.source``
    with a fresh :class:`~repro.lang.source.SourceFile` carrying the
    caller's name.  That is sound because the source object is the tree's
    only filename carrier: tokens hold offsets into the text, and the
    tolerant parser's recovery nodes hold token ranges, never paths — the
    matcher (``Position.filename``) and transform diagnostics both read
    ``tree.source.name`` at *use* time.  Rebinding costs one O(n)
    line-start scan, versus a full re-parse.

    Thread-safe; shared across workspaces (and per worker process in the
    apply fleet), wired in via ``TreeCache(shared=...)``.
    """

    def __init__(self, max_entries: int = 2048):
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, ParseTree]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: hits answered for a different filename than the stored parse
        self.rebinds = 0
        self.evictions = 0

    def get(self, text_sha: str, options: SpatchOptions, name: str,
            text: str) -> Optional[ParseTree]:
        """The stored tree for this exact content (rebound to ``name`` if it
        was parsed under another path), or ``None``."""
        key = (text_sha, options)
        with self._lock:
            tree = self._entries.get(key)
            if tree is None:
                self.misses += 1
                if _obs.enabled():
                    _M_SHARED_MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            if _obs.enabled():
                _M_SHARED_HITS.inc()
            if tree.source.name == name:
                return tree
            self.rebinds += 1
        # rebind outside the lock: SourceFile.__post_init__ rescans line
        # starts, which is O(len(text)) work other callers need not wait on
        return dataclasses.replace(
            tree, source=SourceFile(name=name, text=text))

    def put(self, text_sha: str, options: SpatchOptions,
            tree: ParseTree) -> None:
        key = (text_sha, options)
        with self._lock:
            if key not in self._entries:
                self.stores += 1
            self._entries[key] = tree
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.stores = 0
            self.rebinds = self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def counters(self) -> dict:
        with self._lock:
            return {"entries": len(self._entries),
                    "max_entries": self.max_entries,
                    "hits": self.hits, "misses": self.misses,
                    "stores": self.stores, "rebinds": self.rebinds,
                    "evictions": self.evictions}


class TreeCache:
    """A bounded, thread-safe LRU cache of parse trees.

    ``shared`` optionally names a :class:`SharedTreeStore` consulted on a
    local miss (content-addressed, so identical files in *other* caches
    answer) and published to after every successful parse.  ``None`` — the
    default — keeps this cache fully self-contained."""

    def __init__(self, max_entries: int = 512,
                 shared: Optional[SharedTreeStore] = None):
        self.max_entries = max_entries
        self.shared = shared
        self._entries: "OrderedDict[tuple, ParseTree]" = OrderedDict()
        self._inflight: dict[tuple, _InFlight] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: hits that were answered by waiting on another caller's in-flight
        #: parse instead of a stored entry (how much concurrent dedup saved)
        self.dedup_waits = 0
        #: local misses answered by the shared content-addressed store
        #: (each one is a parse some other cache already paid for)
        self.shared_hits = 0
        #: entries dropped past the LRU bound since construction/clear
        self.evictions = 0

    @staticmethod
    def _key(text: str, name: str, options: SpatchOptions) -> tuple:
        return (name, content_sha1(text), options)

    def get_or_parse(self, text: str, name: str,
                     options: SpatchOptions) -> ParseTree:
        """Return the cached tree for ``text`` or parse (tolerantly) and cache it."""
        key = self._key(text, name, options)
        with self._lock:
            tree = self._entries.get(key)
            if tree is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                if _obs.enabled():
                    _M_HITS.inc()
                return tree
            inflight = self._inflight.get(key)
            if inflight is None:
                inflight = self._inflight[key] = _InFlight()
                owner = True
            else:
                owner = False
        if not owner:
            # someone else is parsing this exact key right now: wait for
            # their tree instead of building a duplicate
            inflight.event.wait()
            if inflight.error is not None:
                raise inflight.error
            with self._lock:
                self.hits += 1
                if _obs.enabled():
                    _M_HITS.inc()
                self.dedup_waits += 1
                # a dedup-answered caller is a *use* of the entry like any
                # other hit: refresh its recency so the snapshot cap and the
                # LRU bound see the true access order
                if key in self._entries:
                    self._entries.move_to_end(key)
            return inflight.tree
        tree = None
        if self.shared is not None:
            try:
                tree = self.shared.get(key[1], options, name, text)
            except Exception:
                tree = None  # a broken share degrades to a parse, never a failure
        if tree is not None:
            with self._lock:
                self.hits += 1
                if _obs.enabled():
                    _M_HITS.inc()
                self.shared_hits += 1
                self._store(key, tree)
                del self._inflight[key]
            inflight.tree = tree
            inflight.event.set()
            return tree
        try:
            with _obs.phase("parse"):
                tree = parse_source(text, name=name, options=options,
                                    tolerant=True)
        except BaseException as exc:
            with self._lock:
                del self._inflight[key]
            inflight.error = exc
            inflight.event.set()
            raise
        with self._lock:
            self.misses += 1
            if _obs.enabled():
                _M_MISSES.inc()
            self._store(key, tree)
            del self._inflight[key]
        inflight.tree = tree
        inflight.event.set()
        if self.shared is not None:
            try:
                self.shared.put(key[1], options, tree)
            except Exception:
                pass
        return tree

    def _store(self, key: tuple, tree: ParseTree) -> None:
        """Insert under the lock, evicting least-recently-used overflow."""
        self._entries[key] = tree
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.dedup_waits = 0
            self.shared_hits = 0
            self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> tuple[int, int]:
        """``(hits, misses)`` counters since construction/clear."""
        return self.hits, self.misses

    def counters(self) -> dict:
        """Every counter this cache keeps, as one JSON-able dict — what
        ``--profile`` and the server's ``stats`` verb report (the hit/miss
        pair was previously only visible inside ``DriverStats``)."""
        with self._lock:
            return {"entries": len(self._entries),
                    "max_entries": self.max_entries,
                    "hits": self.hits, "misses": self.misses,
                    "dedup_waits": self.dedup_waits,
                    "shared_hits": self.shared_hits,
                    "evictions": self.evictions}

    # -- persistence ----------------------------------------------------------

    def snapshot(self) -> list[tuple[tuple, ParseTree]]:
        """The ``(key, tree)`` entries in LRU order (oldest first), for
        embedding in a larger persisted state (``--incremental``'s file);
        the embedder bounds the size (``PipelineState.max_cache_entries``
        keeps the hottest tail) — one capping mechanism, owned there."""
        with self._lock:
            return list(self._entries.items())

    def restore(self, entries) -> int:
        """Merge ``snapshot()``-shaped entries into this cache; returns how
        many were merged (the LRU bound still applies).  Keys already live
        in this cache keep their current recency — a stale snapshot must
        never promote its copy over entries the running process has been
        using more recently."""
        merged = 0
        with self._lock:
            for key, tree in entries:
                if key in self._entries:
                    continue
                self._store(key, tree)
                merged += 1
        return merged

    def save(self, path) -> int:
        """Pickle the ``(name, sha1, options) → tree`` entries to ``path``
        (LRU order preserved); returns the number of entries written."""
        entries = self.snapshot()
        payload = {"version": _PERSIST_VERSION, "entries": entries}
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return len(entries)

    def load(self, path) -> int:
        """Merge entries persisted by :meth:`save` into this cache; returns
        how many were loaded.  Unreadable or version-mismatched files load
        nothing (a stale cache must never break an application run)."""
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if payload.get("version") != _PERSIST_VERSION:
                return 0
            entries = payload["entries"]
        except Exception:
            # pickle failures surface as UnpicklingError, ValueError,
            # EOFError, AttributeError/ImportError (renamed classes), ... —
            # a stale cache must degrade to re-parsing, never break the run
            return 0
        return self.restore(entries)


#: process-wide cache shared by drivers unless a caller supplies its own
DEFAULT_TREE_CACHE = TreeCache()
