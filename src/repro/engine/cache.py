"""Content-hash-keyed :class:`~repro.lang.parser.ParseTree` cache.

Parsing dominates the cost of applying a semantic patch to a code base, and
the same file contents are parsed over and over across benchmark sweeps,
differential runs (prefilter on/off) and repeated ``apply`` calls.  Trees are
immutable once built — matching and transformation only read them, and edits
always produce *new* text which re-parses under a new key — so they can be
shared safely between sessions and between patches that use the same parser
options.

The cache key is ``(filename, sha1(text), options)``: the filename matters
because diagnostics embedded in the tree carry it, and the (frozen, hashable)
options matter because they change how the front end disambiguates.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional

from ..lang.parser import ParseTree, parse_source
from ..options import SpatchOptions


class TreeCache:
    """A bounded, thread-safe LRU cache of parse trees."""

    def __init__(self, max_entries: int = 512):
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, ParseTree]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(text: str, name: str, options: SpatchOptions) -> tuple:
        digest = hashlib.sha1(text.encode("utf-8", "surrogatepass")).hexdigest()
        return (name, digest, options)

    def get_or_parse(self, text: str, name: str,
                     options: SpatchOptions) -> ParseTree:
        """Return the cached tree for ``text`` or parse (tolerantly) and cache it."""
        key = self._key(text, name, options)
        with self._lock:
            tree = self._entries.get(key)
            if tree is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return tree
            self.misses += 1
        tree = parse_source(text, name=name, options=options, tolerant=True)
        with self._lock:
            self._entries[key] = tree
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return tree

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> tuple[int, int]:
        """``(hits, misses)`` counters since construction/clear."""
        return self.hits, self.misses


#: process-wide cache shared by drivers unless a caller supplies its own
DEFAULT_TREE_CACHE = TreeCache()
