"""PatchPipeline: apply an ordered list of semantic patches in one pass.

Sequentially chaining ``SemanticPatch.apply`` runs one full driver pass per
patch: every pass re-scans every file for prefilter tokens, re-parses
whatever the (bounded) tree cache has evicted and pays the per-code-base
orchestration cost again — applying a 12-patch modernization cookbook costs
12 full passes.  The pipeline restructures the same work *file-major*:

* **one planning scan** — each file's token set is computed once and checked
  against the union of all patches' prefilters; a file no patch could ever
  touch (accounting for tokens *earlier patches may insert*, see
  :class:`PipelinePrefilter`) is answered without a session, a parse, or a
  trip to a worker;
* **one parse per file state** — each patch's
  :class:`~repro.engine.session.FileSession` runs over the evolving text
  with a single :class:`~repro.engine.cache.TreeCache` shared across patch
  boundaries, so a patch that does not edit a file hands the *same* parse
  tree to the next patch instead of re-parsing;
* **one distribution** — files are fanned out over ``jobs`` worker
  processes exactly as in :class:`~repro.engine.driver.Driver`, but each
  file crosses the process boundary once for all patches instead of once
  per patch.

Equivalence to sequential composition
-------------------------------------
Per file, the pipeline runs exactly the session sequence that
``p2.apply(p1.transform(cb))`` would run: after each patch the file's token
set is re-scanned *from the actual evolved text* (not approximated), so each
patch's prefilter decisions — and therefore its reports, exports and
diagnostics — are identical to a sequential per-patch application.  Each
patch keeps its own :class:`~repro.engine.engine.Engine` (and so its own
script-rule namespace), mirroring the fresh engine a sequential
``SemanticPatch.apply`` call creates.  The one observable difference is the
*interleaving* of external side effects: patch ``k``'s per-file scripts run
before patch ``k-1`` has finished the whole code base (its ``finalize``
rules still run last, in patch order).  Cookbook-style scripts that only
read their translation tables cannot tell the difference.

Parallel semantics follow the driver: if *any* patch combines per-file
``script:python`` rules with a ``finalize`` rule, the whole pipeline falls
back to serial application rather than silently changing their meaning.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..obs import registry as _obs
from ..options import SpatchOptions
from ..smpl.ast import SemanticPatchAST
from .cache import DEFAULT_TREE_CACHE, TreeCache, content_sha1
from .compile import backend_enabled
from .driver import (_M_WORKER_HITS, _M_WORKER_MISSES, DriverStats,
                     ast_from_payload, has_per_file_scripts,
                     parallel_preserves_semantics, patch_payload, resolve_jobs,
                     run_fork_pool)
from .memo import TransformMemo, memo_flags
from .prefilter import PatchPrefilter, TokenIndex, scan_token_set
from .report import FileResult, PatchResult


@dataclass
class PipelineStats:
    """Timing/coverage breakdown of one pipeline run (``--profile``)."""

    patches: int = 0
    files_total: int = 0
    #: files answered without any session (no patch could ever touch them)
    files_skipped: int = 0
    #: (file, patch) sessions actually run
    sessions_run: int = 0
    #: (file, patch) pairs answered without a session
    sessions_gated: int = 0
    #: (file, rule) applications the prefilter answered without running
    #: (inside surviving sessions and for whole-skipped files alike, matching
    #: what per-patch Driver runs would report)
    rules_gated: int = 0
    prefilter: bool = True
    jobs_requested: "int | str" = 1
    jobs_used: int = 1
    scan_seconds: float = 0.0
    apply_seconds: float = 0.0
    total_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: (file, patch) sessions answered from the transform memo instead of
    #: running (counted inside ``sessions_run`` — a memo hit is a logical
    #: session, so coverage counters match a cold run exactly)
    memo_hits: int = 0
    memo_misses: int = 0
    #: where the cache counters came from: "local", "workers" (aggregated
    #: fork-pool telemetry), or "unavailable" (parallel, telemetry off)
    cache_scope: str = "local"

    @property
    def skip_rate(self) -> float:
        return self.files_skipped / self.files_total if self.files_total else 0.0

    @property
    def session_rate(self) -> float:
        total = self.files_total * self.patches
        return self.sessions_run / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-able view (the ``--json``/server ``profile`` section)."""
        from dataclasses import asdict

        payload = asdict(self)
        payload["jobs_requested"] = str(self.jobs_requested)
        payload["skip_rate"] = self.skip_rate
        payload["session_rate"] = self.session_rate
        return payload

    def describe(self) -> str:
        lines = [
            f"patches: {self.patches}  files: {self.files_total}  "
            f"skipped for the whole pipeline: {self.files_skipped} "
            f"({self.skip_rate:.0%})",
            f"sessions: {self.sessions_run} run, {self.sessions_gated} gated "
            f"({self.session_rate:.0%} of file x patch pairs ran)",
            f"rule applications gated by prefilter: {self.rules_gated}",
            f"jobs: {self.jobs_used} (requested {self.jobs_requested})  "
            f"prefilter: {'on' if self.prefilter else 'off'}",
            f"token scan: {self.scan_seconds:.3f}s  apply: "
            f"{self.apply_seconds:.3f}s  total: {self.total_seconds:.3f}s",
            "parse cache: per-worker, not aggregated"
            if self.cache_scope == "unavailable"
            else f"parse cache: {self.cache_hits} hit(s), "
                 f"{self.cache_misses} miss(es)"
                 + (" (aggregated from workers)"
                    if self.cache_scope == "workers" else ""),
        ]
        if self.memo_hits or self.memo_misses:
            lines.append(f"transform memo: {self.memo_hits} hit(s), "
                         f"{self.memo_misses} miss(es)")
        return "\n".join(lines)


@dataclass(frozen=True)
class FileRecord:
    """Per-file reuse metadata a pipeline run leaves behind.

    Enough to splice this file's cached results into a later incremental
    run *and* reconstruct its exact contribution to the coverage counters
    (``files_skipped`` / ``sessions_run`` / ``rules_gated``), so an
    incremental result's stats match a cold run's modulo timing.
    """

    #: content hash of the *input* text this file's results were computed
    #: from; reuse is sound only while the current text hashes the same
    sha1: str
    #: True when no patch needed a session (whole-pipeline prefilter skip)
    skipped: bool
    #: per patch: whether a session actually ran
    ran: tuple[bool, ...]
    #: per patch: rule applications the prefilter gated for this file
    rules_gated: tuple[int, ...]
    #: per patch: content hash of the file's text *after* that patch ran
    #: (the per-patch-boundary states).  ``boundaries[k-1]`` is what a later
    #: run verifies before splicing this file's cached prefix results and
    #: replaying only the suffix patches from that text; empty on records
    #: from before this field existed (such records never seed prefix reuse)
    boundaries: tuple[str, ...] = ()


def patch_fingerprint(patch: SemanticPatchAST, options: SpatchOptions,
                      name: str) -> str:
    """Identity of *one* patch: its SMPL source text (its AST repr when it
    was built programmatically), its name and its options — anything that can
    change what the patch does to a file.  Position-wise equality of these
    per-patch fingerprints is what lets an incremental run reuse a prior
    result's unchanged patch-list *prefix* when the overall patch set
    diverges (see :class:`~repro.engine.incremental.IncrementalPipeline`)."""
    digest = hashlib.sha1()
    source = patch.source_text or repr(patch)
    for part in (name, source, repr(options)):
        digest.update(part.encode("utf-8", "surrogatepass"))
        digest.update(b"\x00")
    return digest.hexdigest()


def patchset_fingerprint(patches: Sequence[SemanticPatchAST],
                         options: Sequence[SpatchOptions],
                         names: Sequence[str]) -> str:
    """Identity of an (ordered) patch list + options, for deciding whether a
    prior result may seed an incremental run wholesale.  Derived from the
    per-patch fingerprints so the two notions can never disagree."""
    digest = hashlib.sha1()
    for fingerprint in map(patch_fingerprint, patches, options, names):
        digest.update(fingerprint.encode("ascii"))
        digest.update(b"\x01")
    return digest.hexdigest()


@dataclass
class PipelineResult(PatchResult):
    """The outcome of applying a :class:`PatchPipeline` to a code base.

    Behaves like a :class:`~repro.engine.report.PatchResult` for the
    *combined* transformation — ``files`` maps each filename to a
    :class:`~repro.engine.report.FileResult` whose ``original_text`` is the
    input and whose ``text`` is the output of the *last* patch, with the
    per-rule reports of every patch concatenated in application order, so
    ``diff()`` / ``summary()`` / ``total_matches`` cover the whole batch —
    and additionally carries the per-patch breakdown in ``per_patch``.
    """

    #: names of the applied patches, in application order
    patch_names: list[str] = field(default_factory=list)
    #: one :class:`PatchResult` per patch; its files' ``original_text`` is
    #: the text *that patch* saw (i.e. the previous patch's output)
    per_patch: list[PatchResult] = field(default_factory=list)
    #: per-file reuse metadata (see :class:`FileRecord`); bookkeeping, not
    #: part of the semantic outcome, so excluded from equality
    records: dict[str, FileRecord] = field(default_factory=dict,
                                           compare=False, repr=False)
    #: fingerprint of the patch list + options that produced this result
    #: (see :func:`patchset_fingerprint`); ``None`` on legacy results
    fingerprint: Optional[str] = field(default=None, compare=False, repr=False)
    #: per-patch fingerprints in application order (see
    #: :func:`patch_fingerprint`): the position-wise comparison a later run
    #: uses to find the longest unchanged patch-list prefix it can splice
    patch_fingerprints: list[str] = field(default_factory=list,
                                          compare=False, repr=False)
    #: how an incremental run reused this result's predecessor (an
    #: ``IncrementalStats``); ``None`` on cold runs
    incremental: object = field(default=None, compare=False, repr=False)

    def result_for(self, patch: "int | str") -> PatchResult:
        """The per-patch result, by position or (first matching) name."""
        if isinstance(patch, str):
            try:
                patch = self.patch_names.index(patch)
            except ValueError:
                raise KeyError(
                    f"no patch named {patch!r} in this result; available: "
                    f"{', '.join(map(repr, self.patch_names)) or '(none)'}") \
                    from None
        return self.per_patch[patch]

    def per_patch_summary(self) -> list[dict]:
        """One summary row per patch (name, matches, changed files, ...)."""
        rows = []
        for name, result in zip(self.patch_names, self.per_patch):
            row = {"patch": name}
            row.update(result.summary())
            rows.append(row)
        return rows


@dataclass
class _FileOutcome:
    """What applying every patch to one file produced (pickles to workers)."""

    filename: str
    #: one FileResult per patch (untouched placeholder when gated)
    results: list[FileResult]
    #: per patch: whether a session actually ran
    ran: list[bool]
    #: per patch: rules the prefilter gated for this file
    rules_gated: list[int]


def boundary_hashes(results, input_text: str, input_sha: str,
                    ) -> tuple[str, ...]:
    """Per-patch-boundary content hashes of one file's evolving text: entry
    ``i`` hashes the text *after* patch ``i``.  Unedited boundaries reuse
    the previous hash (the common case — most patches touch few files), so
    a file is typically hashed once however long the patch chain."""
    boundaries = []
    prev_text, prev_sha = input_text, input_sha
    for file_result in results:
        if file_result.text is not prev_text and file_result.text != prev_text:
            prev_text = file_result.text
            prev_sha = content_sha1(prev_text)
        boundaries.append(prev_sha)
    return tuple(boundaries)


class PipelinePrefilter:
    """Whole-pipeline skip decisions over the union of per-patch prefilters.

    Per-patch gating simply re-queries each patch's own
    :class:`~repro.engine.prefilter.PatchPrefilter` against the tokens of
    the *current* (evolved) text, so it inherits that layer's soundness
    argument unchanged.  The only new question is the coarse one answered
    here before any session is created: *could any patch ever touch this
    file?*  Querying every patch against the file's **original** tokens is
    sound despite cross-patch insertion chains (patch 1 rewriting ``foo()``
    to ``bar()``, patch 2 rewriting ``bar()``): the file is kept whenever
    *any* patch needs a session, so patch ``k``'s answer only decides the
    outcome when patches ``1..k-1`` all answered "cannot run" — and a patch
    that cannot run cannot have inserted anything, so by induction the text
    patch ``k`` would see *is* the original and its token set is exact.
    """

    def __init__(self, patches: Sequence[SemanticPatchAST]):
        self.prefilters = [PatchPrefilter(patch) for patch in patches]
        self.n_patches = len(self.prefilters)

    def needs_any_session(self, file_tokens: frozenset[str]) -> bool:
        return any(prefilter.plan_for(file_tokens).needs_session
                   for prefilter in self.prefilters)


def _apply_patches_to_file(engines, prefilters, filename: str, text: str,
                           tokens: Optional[frozenset[str]],
                           memo: Optional[TransformMemo] = None,
                           memo_keys=None,
                           resolve_only: bool = False,
                           ) -> Optional[_FileOutcome]:
    """Run every patch's session over one file's evolving text.

    This is byte-for-byte the work a sequential per-patch application would
    do for this file: each patch plans from the tokens of the *current* text
    (re-scanned only after an edit) and either runs a session with the
    prefilter's ``allowed_rules`` or is answered with an untouched result.
    Shared between the serial path and the worker processes.

    With a ``memo``, each surviving session is first looked up by content
    hash; ``memo_keys`` carries one ``(fingerprint, flags)`` per patch
    (``None`` for unmemoizable script-bearing patches).  Note what is and is
    not memoized: the *skip/gating* decision is always re-planned above from
    the current text — only the session outcome itself is served from the
    memo, so a hit changes no counter a cold run would report.  With
    ``resolve_only`` the chain must resolve entirely without running a
    session (memo hits and gated patches only); the first would-be session
    returns ``None`` instead, letting a parent process answer warm files
    before fanning the rest out to workers.
    """
    results: list[FileResult] = []
    ran: list[bool] = []
    rules_gated: list[int] = []
    text_sha: Optional[str] = None  # hash of ``text``, computed lazily
    for index, (engine, prefilter) in enumerate(zip(engines, prefilters)):
        allowed = None
        n_rules = len(engine.patch.patch_rules())
        if prefilter is not None:
            if tokens is None:
                # patch-boundary re-scan: an earlier patch edited the text,
                # so the shared token set is stale.  Each patch only ever
                # asks whether its own required tokens are present, so one
                # vectorized pass over the patch's query alternation answers
                # its plan without re-scanning every word of the file; the
                # shared set stays unset and the next edited boundary scans
                # its own (typically different) query.
                plan = prefilter.plan_for(prefilter.scan_query(text))
            else:
                plan = prefilter.plan_for(tokens)
            if not plan.needs_session:
                results.append(FileResult(filename=filename,
                                          original_text=text, text=text))
                ran.append(False)
                rules_gated.append(n_rules)
                continue
            allowed = plan.allowed_rules
            rules_gated.append(n_rules - len(plan.allowed_rules))
        else:
            rules_gated.append(0)
        key = memo_keys[index] if memo is not None and memo_keys is not None \
            else None
        if key is not None:
            if text_sha is None:
                text_sha = content_sha1(text)
            with _obs.phase("memo"):
                entry = memo.lookup(text_sha, key[0], key[1], filename)
            if entry is not None:
                file_result = entry.to_file_result(filename, text)
                results.append(file_result)
                ran.append(True)  # a hit is a logical session (see PipelineStats)
                if entry.changed:
                    text = file_result.text
                    tokens = None
                    text_sha = entry.output_sha
                continue
        if resolve_only:
            return None
        file_result = engine.session_for(filename, text,
                                         allowed_rules=allowed).run()
        output_sha = memo.store_result(text_sha, key[0], key[1], file_result) \
            if key is not None else None
        results.append(file_result)
        ran.append(True)
        if file_result.text != text:
            text = file_result.text
            tokens = None  # force a re-scan for the next patch
            text_sha = output_sha  # None when unmemoized: rehash lazily
    return _FileOutcome(filename=filename, results=results, ran=ran,
                        rules_gated=rules_gated)


# ---------------------------------------------------------------------------
# worker-process plumbing (module level so it pickles)
# ---------------------------------------------------------------------------

_PIPELINE_WORKER: dict = {}


def _pipeline_worker_init(payloads, options_list, prefilter_enabled: bool,
                          cache_max_entries: int,
                          compile_flag: Optional[bool] = None,
                          memo_spec=None, memo_keys=None) -> None:
    from .engine import Engine

    # one parse cache per worker, shared across every patch of the pipeline
    cache = TreeCache(max_entries=cache_max_entries)
    engines = []
    prefilters = []
    for payload, options in zip(payloads, options_list):
        ast = ast_from_payload(payload, options)
        engine = Engine(ast, options=options, tree_cache=cache,
                        compile=compile_flag)
        if has_per_file_scripts(ast):
            # per-file scripts read the globals initialize rules set up
            engine._run_initialize_rules()
        engines.append(engine)
        prefilters.append(PatchPrefilter(ast) if prefilter_enabled else None)
    _PIPELINE_WORKER["engines"] = engines
    _PIPELINE_WORKER["prefilters"] = prefilters
    # the parent's TransformMemo holds a lock and must not cross the fork
    # boundary as shared state; each worker builds its own memory tier and —
    # when a disk tier is configured — shares the content-addressed
    # directory, where atomic entry files make concurrent writers safe
    _PIPELINE_WORKER["memo"] = (
        TransformMemo(max_entries=memo_spec[0], path=memo_spec[1])
        if memo_spec is not None else None)
    _PIPELINE_WORKER["memo_keys"] = memo_keys


def _pipeline_worker_apply(batch) -> list[_FileOutcome]:
    engines = _PIPELINE_WORKER["engines"]
    prefilters = _PIPELINE_WORKER["prefilters"]
    memo = _PIPELINE_WORKER.get("memo")
    memo_keys = _PIPELINE_WORKER.get("memo_keys")
    # ``start`` slices the patch chain: an incremental run replaying only
    # the suffix patches of a shared patch-list prefix ships items whose
    # text is the cached prefix-boundary state and whose start is the
    # divergence index (0 for whole-chain runs)
    return [_apply_patches_to_file(
                engines[start:], prefilters[start:], filename, text, tokens,
                memo=memo,
                memo_keys=memo_keys[start:] if memo_keys is not None else None)
            for filename, text, tokens, start in batch]


class PatchPipeline:
    """Applies an ordered list of semantic patches to a whole code base in a
    single driver pass (see the module docstring for the semantics)."""

    def __init__(self, patches: Sequence[SemanticPatchAST],
                 options: Optional[Sequence[Optional[SpatchOptions]]] = None, *,
                 names: Optional[Sequence[str]] = None,
                 jobs: "int | str" = 1, prefilter: bool = True,
                 tree_cache: Optional[TreeCache] = None,
                 compile: Optional[bool] = None,
                 memo: Optional[TransformMemo] = None):
        from .engine import Engine

        self.patches = list(patches)
        if options is None:
            options = [None] * len(self.patches)
        if len(options) != len(self.patches):
            raise ValueError(f"got {len(self.patches)} patches but "
                             f"{len(options)} options")
        self.names = list(names) if names is not None \
            else [f"patch_{idx}" for idx in range(len(self.patches))]
        self.options: list[SpatchOptions] = [
            opts or patch.options for patch, opts in zip(self.patches, options)]
        self.jobs = resolve_jobs(jobs)
        self.jobs_requested = jobs
        self.prefilter_enabled = prefilter
        self.compile_flag = compile
        self.tree_cache = tree_cache if tree_cache is not None else DEFAULT_TREE_CACHE
        self.engines = [Engine(patch, options=opts, tree_cache=self.tree_cache,
                               compile=compile)
                        for patch, opts in zip(self.patches, self.options)]
        self.prefilter = PipelinePrefilter(self.patches) if prefilter else None
        self.patch_fingerprints = [
            patch_fingerprint(patch, opts, name)
            for patch, opts, name in zip(self.patches, self.options,
                                         self.names)]
        self.fingerprint = patchset_fingerprint(self.patches, self.options,
                                                self.names)
        # fixed after construction; the assemble path reads it per file
        self._n_rules_per_patch = [len(patch.patch_rules())
                                   for patch in self.patches]
        self.memo = memo
        if memo is not None:
            # one (fingerprint, flags) per patch; None marks the patches a
            # memo hit could not soundly answer: per-file script rules may
            # read state mutated across files, so their sessions are not
            # pure functions of the file text
            flags = memo_flags(prefilter, backend_enabled(compile))
            self._memo_keys: Optional[list] = [
                (fingerprint, flags)
                if not (has_per_file_scripts(patch) and opts.python_scripting)
                else None
                for fingerprint, patch, opts in zip(self.patch_fingerprints,
                                                    self.patches, self.options)]
        else:
            self._memo_keys = None
        self.stats = PipelineStats()

    # -- public API -----------------------------------------------------------

    def run(self, files: dict[str, str],
            token_index: Optional[TokenIndex] = None) -> PipelineResult:
        """Apply every patch, in order, to ``{filename: text}``."""
        started = time.perf_counter()
        stats = self.stats = PipelineStats(
            patches=len(self.patches), files_total=len(files),
            prefilter=self.prefilter_enabled,
            jobs_requested=self.jobs_requested)
        cache_hits0, cache_misses0 = self.tree_cache.stats()
        memo_hits0, memo_misses0 = self.memo.stats() if self.memo is not None \
            else (0, 0)
        telemetry = _obs.enabled()
        worker_hits0 = _M_WORKER_HITS.value
        worker_misses0 = _M_WORKER_MISSES.value

        outcomes, skipped = self._plan_and_apply(files, token_index, stats)

        # ---- assemble in input order
        result, per_patch_stats = self._fresh_result(len(files), stats.jobs_used)
        for name, text in files.items():
            if name in skipped:
                self._assemble_skipped(result, per_patch_stats, stats,
                                       name, text)
            else:
                self._assemble_outcome(result, per_patch_stats, stats,
                                       name, text, outcomes[name])

        self._run_finalize(result, per_patch_stats)

        if stats.jobs_used == 1:
            cache_hits1, cache_misses1 = self.tree_cache.stats()
            stats.cache_hits = cache_hits1 - cache_hits0
            stats.cache_misses = cache_misses1 - cache_misses0
        elif telemetry:
            stats.cache_hits = int(_M_WORKER_HITS.value - worker_hits0)
            stats.cache_misses = int(_M_WORKER_MISSES.value - worker_misses0)
            stats.cache_scope = "workers"
        else:
            stats.cache_scope = "unavailable"
        if self.memo is not None:
            memo_hits1, memo_misses1 = self.memo.stats()
            stats.memo_hits = memo_hits1 - memo_hits0
            stats.memo_misses = memo_misses1 - memo_misses0
        stats.total_seconds = time.perf_counter() - started
        result.stats = stats
        return result

    # -- run() building blocks (shared with IncrementalPipeline) --------------

    def _plan_and_apply(self, files: dict[str, str],
                        token_index: Optional[TokenIndex],
                        stats: PipelineStats,
                        ) -> tuple[dict[str, _FileOutcome], set[str]]:
        """Token-scan ``files``, run the surviving sessions (serial or over
        worker processes) and return ``(outcomes, whole-skipped names)``.
        Updates the scan/apply timing, skip and jobs fields of ``stats``."""
        # ---- plan: which files could any patch possibly touch
        work: list[tuple[str, str, Optional[frozenset[str]], int]] = []
        skipped: set[str] = set()
        scan_started = time.perf_counter()
        for name, text in files.items():
            if self.prefilter is None:
                work.append((name, text, None, 0))
                continue
            tokens = token_index.tokens_of(name, text) if token_index is not None \
                else scan_token_set(text)
            if self.prefilter.needs_any_session(tokens):
                work.append((name, text, tokens, 0))
            else:
                skipped.add(name)
                stats.files_skipped += 1
        stats.scan_seconds = time.perf_counter() - scan_started

        jobs_used = self._effective_jobs(len(work))
        stats.jobs_used = jobs_used
        self._run_initialize(bool(files), jobs_used)

        # ---- apply
        apply_started = time.perf_counter()
        outcomes = self._apply_work(work, jobs_used)
        stats.apply_seconds = time.perf_counter() - apply_started
        return outcomes, skipped

    def _run_initialize(self, any_files: bool, jobs_used: int) -> None:
        """Initialize rules: once per patch, mirroring the driver (the
        workers run them instead for script-bearing patches, so their
        per-file scripts see the initialized globals)."""
        if not any_files:
            return
        for engine in self.engines:
            if jobs_used == 1 or not has_per_file_scripts(engine.patch):
                engine._run_initialize_rules()

    def _apply_work(self, work, jobs_used: int) -> dict[str, _FileOutcome]:
        """Run the planned ``(name, text, tokens, start)`` items, serial or
        over worker processes; ``start`` is the index of the first patch to
        apply (non-zero only for incremental suffix replays)."""
        if jobs_used > 1:
            if self.memo is None:
                return self._run_parallel(work, jobs_used)
            # answer fully-warm files in this process (no fork round-trip),
            # fan out the rest, then publish what the workers computed: the
            # workers are forked children, so their memory-tier stores die
            # with them and only the shared disk tier (if any) persists
            resolved: dict[str, _FileOutcome] = {}
            remaining = self._resolve_from_memo(work, resolved)
            outcomes = self._run_parallel(remaining, jobs_used) \
                if remaining else {}
            inputs = {name: (text, start)
                      for name, text, tokens, start in remaining}
            for name, outcome in outcomes.items():
                text, start = inputs[name]
                self._memo_store_outcome(text, outcome, start)
            outcomes.update(resolved)
            return outcomes
        prefilters = self.prefilter.prefilters if self.prefilter is not None \
            else [None] * len(self.patches)
        memo_keys = self._memo_keys
        return {name: _apply_patches_to_file(
                    self.engines[start:], prefilters[start:],
                    name, text, tokens, memo=self.memo,
                    memo_keys=memo_keys[start:] if memo_keys is not None
                    else None)
                for name, text, tokens, start in work}

    def _resolve_from_memo(self, work, resolved: dict) -> list:
        """Try to answer each work item entirely from the memo (hits and
        prefilter-gated patches only — no sessions); fully-resolved outcomes
        land in ``resolved``, the rest come back for the workers."""
        prefilters = self.prefilter.prefilters if self.prefilter is not None \
            else [None] * len(self.patches)
        remaining = []
        for name, text, tokens, start in work:
            outcome = _apply_patches_to_file(
                self.engines[start:], prefilters[start:], name, text, tokens,
                memo=self.memo, memo_keys=self._memo_keys[start:],
                resolve_only=True)
            if outcome is None:
                remaining.append((name, text, tokens, start))
            else:
                resolved[name] = outcome
        return remaining

    def _memo_store_outcome(self, text: str, outcome: _FileOutcome,
                            start: int = 0) -> None:
        """Memoize the sessions of one worker-computed outcome, threading
        boundary hashes exactly as the in-loop store does."""
        keys = self._memo_keys
        if keys is None:
            return
        text_sha: Optional[str] = None
        for index, file_result in enumerate(outcome.results):
            key = keys[start + index]
            output_sha = None
            if outcome.ran[index] and key is not None:
                if text_sha is None:
                    text_sha = content_sha1(text)
                output_sha = self.memo.store_result(text_sha, key[0], key[1],
                                                    file_result)
            if file_result.text != text:
                text = file_result.text
                text_sha = output_sha  # None when unmemoized: rehash lazily

    def _fresh_result(self, n_files: int, jobs_used: int,
                      ) -> tuple[PipelineResult, list[DriverStats]]:
        """An empty result plus per-patch coverage counters, shaped like a
        sequential Driver run's stats (timing is not broken out per patch —
        the pass is shared)."""
        result = PipelineResult(
            patch_names=list(self.names),
            per_patch=[PatchResult() for _ in self.patches],
            fingerprint=self.fingerprint,
            patch_fingerprints=list(self.patch_fingerprints))
        per_patch_stats = [
            DriverStats(files_total=n_files, prefilter=self.prefilter_enabled,
                        jobs_requested=self.jobs_requested, jobs_used=jobs_used)
            for _ in self.patches]
        return result, per_patch_stats

    def _assemble_skipped(self, result: PipelineResult,
                          per_patch_stats: list[DriverStats],
                          stats: PipelineStats, name: str, text: str) -> None:
        """Splice one whole-pipeline-skipped file into ``result``."""
        n_rules_per_patch = self._n_rules_per_patch
        # fresh FileResult per view: sequential composition hands out
        # independent objects, so mutating one must not leak
        for index, patch_result in enumerate(result.per_patch):
            patch_result.files[name] = FileResult(
                filename=name, original_text=text, text=text)
            per_patch_stats[index].files_skipped += 1
            per_patch_stats[index].rules_gated += n_rules_per_patch[index]
        result.files[name] = FileResult(filename=name,
                                        original_text=text, text=text)
        input_sha = content_sha1(text)
        result.records[name] = FileRecord(
            sha1=input_sha, skipped=True,
            ran=(False,) * len(self.patches),
            rules_gated=tuple(n_rules_per_patch),
            boundaries=(input_sha,) * len(self.patches))
        stats.sessions_gated += len(self.patches)
        stats.rules_gated += sum(n_rules_per_patch)

    def _assemble_outcome(self, result: PipelineResult,
                          per_patch_stats: list[DriverStats],
                          stats: PipelineStats, name: str, text: str,
                          outcome: _FileOutcome) -> None:
        """Splice one file's freshly computed session outcomes into ``result``."""
        input_sha = content_sha1(text)
        result.records[name] = FileRecord(
            sha1=input_sha, skipped=False,
            ran=tuple(outcome.ran),
            rules_gated=tuple(outcome.rules_gated),
            boundaries=boundary_hashes(outcome.results, text, input_sha))
        for index, file_result in enumerate(outcome.results):
            result.per_patch[index].files[name] = file_result
            if not outcome.ran[index]:
                per_patch_stats[index].files_skipped += 1
            per_patch_stats[index].rules_gated += outcome.rules_gated[index]
        stats.sessions_run += sum(outcome.ran)
        stats.sessions_gated += len(self.patches) - sum(outcome.ran)
        stats.rules_gated += sum(outcome.rules_gated)
        final_text = outcome.results[-1].text if outcome.results else text
        result.files[name] = FileResult(
            filename=name, original_text=text, text=final_text,
            rule_reports=[r for fr in outcome.results
                          for r in fr.rule_reports],
            diagnostics=[d for fr in outcome.results
                         for d in fr.diagnostics])

    def _run_finalize(self, result: PipelineResult,
                      per_patch_stats: list[DriverStats]) -> None:
        """Finalize rules run once per patch, in patch order, at the end."""
        for index, (engine, patch_result) in enumerate(
                zip(self.engines, result.per_patch)):
            engine._run_finalize_rules(patch_result)
            result.diagnostics.extend(patch_result.diagnostics)
            patch_result.stats = per_patch_stats[index]

    # -- parallel execution ---------------------------------------------------

    def _effective_jobs(self, n_files: int) -> int:
        if self.jobs <= 1 or n_files <= 1:
            return 1
        if not all(parallel_preserves_semantics(patch, opts)
                   for patch, opts in zip(self.patches, self.options)):
            return 1
        if "fork" not in multiprocessing.get_all_start_methods():
            return 1  # spawn would not inherit sys.path in source checkouts
        return min(self.jobs, n_files)

    def _run_parallel(self, work, jobs: int) -> dict[str, _FileOutcome]:
        payloads = [patch_payload(patch) for patch in self.patches]
        memo_spec = (self.memo.max_entries, self.memo.path) \
            if self.memo is not None else None
        outcomes = run_fork_pool(
            work, jobs, _pipeline_worker_init,
            (payloads, self.options, self.prefilter_enabled,
             self.tree_cache.max_entries, self.compile_flag,
             memo_spec, self._memo_keys),
            _pipeline_worker_apply)
        return {outcome.filename: outcome for outcome in outcomes}
