"""Driver: orchestrate a semantic patch across many files.

The driver is the code-base-level layer on top of
:class:`~repro.engine.session.FileSession`:

* it consults the :class:`~repro.engine.prefilter.PatchPrefilter` so files
  that cannot possibly match any rule are answered without parsing (and
  without even creating a session when no script rule could run either);
* it parses through a content-hash-keyed :class:`~repro.engine.cache.TreeCache`
  so repeated applications over unchanged sources never re-parse;
* it can fan the per-file work out over ``jobs`` worker processes
  (Coccinelle's ``--jobs``), re-assembling results in the input file order so
  the outcome is deterministic regardless of scheduling.

Script-rule semantics
---------------------
``initialize:python`` rules run once before any file and ``finalize:python``
rules run once after all files, exactly as in the serial engine.  With
``jobs > 1`` each worker process runs the initialize rules itself so that
``script:python`` rules see the dictionaries they set up; this is identical
to serial application as long as script rules do not *mutate* state shared
across files (true of every cookbook patch — their scripts only read the
translation tables).  Because a finalize rule may legitimately read state
accumulated by per-file scripts, the driver falls back to serial execution
when a patch contains both kinds of rule, rather than silently changing
their meaning.
"""

from __future__ import annotations

import functools
import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from ..obs import registry as _obs
from ..obs import trace as _trace
from ..options import SpatchOptions
from ..smpl.ast import ScriptRule, SemanticPatchAST
from .cache import DEFAULT_TREE_CACHE, TreeCache
from .prefilter import PatchPrefilter, TokenIndex
from .report import FileResult, PatchResult

# worker-aggregated parse-cache children: run_fork_pool merges worker
# telemetry deltas onto these (origin="workers"), which is what lets a
# jobs>1 run report real cache counters instead of "not aggregated"
_M_WORKER_HITS = _obs.REGISTRY.counter(
    "repro_parse_cache_hits_total", "Parse-cache hits",
    cache="tree", origin="workers")
_M_WORKER_MISSES = _obs.REGISTRY.counter(
    "repro_parse_cache_misses_total", "Parse-cache misses (real parses)",
    cache="tree", origin="workers")
_M_RUNS = _obs.REGISTRY.counter(
    "repro_driver_runs_total", "Driver runs (one patch over one tree)")
_M_FILES = _obs.REGISTRY.counter(
    "repro_driver_files_total", "Files considered", outcome="session")
_M_FILES_SKIPPED = _obs.REGISTRY.counter(
    "repro_driver_files_total", "Files considered", outcome="skipped")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import Engine


@dataclass
class DriverStats:
    """Timing/coverage breakdown of one driver run (``--profile``)."""

    files_total: int = 0
    #: files answered without a session (no rule could run there)
    files_skipped: int = 0
    #: (file, rule) pairs the prefilter gated inside surviving sessions
    rules_gated: int = 0
    prefilter: bool = True
    #: the raw request ("auto" / N), before resolution and fallbacks
    jobs_requested: "int | str" = 1
    jobs_used: int = 1
    scan_seconds: float = 0.0
    apply_seconds: float = 0.0
    total_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: where the cache counters came from: "local" (the parent's cache),
    #: "workers" (aggregated from fork-pool telemetry deltas), or
    #: "unavailable" (parallel run with telemetry disabled)
    cache_scope: str = "local"

    @property
    def skip_rate(self) -> float:
        return self.files_skipped / self.files_total if self.files_total else 0.0

    def as_dict(self) -> dict:
        """JSON-able view (the ``--json``/server ``profile`` section)."""
        from dataclasses import asdict

        payload = asdict(self)
        payload["jobs_requested"] = str(self.jobs_requested)
        payload["skip_rate"] = self.skip_rate
        return payload

    def describe(self) -> str:
        lines = [
            f"files: {self.files_total}  skipped without parsing: "
            f"{self.files_skipped} ({self.skip_rate:.0%})",
            f"rule applications gated by prefilter: {self.rules_gated}",
            f"jobs: {self.jobs_used} (requested {self.jobs_requested})  "
            f"prefilter: {'on' if self.prefilter else 'off'}",
            f"token scan: {self.scan_seconds:.3f}s  apply: "
            f"{self.apply_seconds:.3f}s  total: {self.total_seconds:.3f}s",
            "parse cache: per-worker, not aggregated"
            if self.cache_scope == "unavailable"
            else f"parse cache: {self.cache_hits} hit(s), "
                 f"{self.cache_misses} miss(es)"
                 + (" (aggregated from workers)"
                    if self.cache_scope == "workers" else ""),
        ]
        return "\n".join(lines)


def resolve_jobs(jobs) -> int:
    """Normalise a ``jobs`` argument: ``"auto"``/``0``/``None`` mean one
    worker per CPU."""
    if jobs in (None, 0, "auto"):
        return os.cpu_count() or 1
    count = int(jobs)
    if count < 1:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {jobs!r}")
    return count


def has_per_file_scripts(patch: SemanticPatchAST) -> bool:
    """True when the patch has ``script:python`` rules that run per file."""
    return any(isinstance(r, ScriptRule) and r.when == "script"
               for r in patch.rules)


def parallel_preserves_semantics(patch: SemanticPatchAST,
                                 options: SpatchOptions) -> bool:
    """Parallel workers re-run initialize themselves but the parent runs
    finalize; a patch combining per-file scripts with a finalize rule may
    aggregate across files, which only serial application preserves."""
    if not options.python_scripting:
        return True
    script_rules = [r for r in patch.rules if isinstance(r, ScriptRule)]
    has_per_file = any(r.when == "script" for r in script_rules)
    has_finalize = any(r.when == "finalize" for r in script_rules)
    return not (has_per_file and has_finalize)


# ---------------------------------------------------------------------------
# worker-process plumbing (module level so it pickles)
# ---------------------------------------------------------------------------

_WORKER_ENGINE: dict = {}


def patch_payload(patch: SemanticPatchAST):
    """What a worker process needs to rebuild ``patch``: its source text when
    available (cheap to pickle, re-parsed once per worker), the AST otherwise.
    Frontend patches ship their format tag with the text so workers re-parse
    with the matching frontend parser, not the SmPL one."""
    fmt = getattr(patch, "format", None)
    if fmt:
        return ("frontend", (fmt, patch.source_text))
    if patch.source_text:
        return ("text", patch.source_text)
    return ("ast", patch)


def ast_from_payload(payload, options: Optional[SpatchOptions]) -> SemanticPatchAST:
    from ..smpl.parser import parse_semantic_patch

    kind, data = payload
    if kind == "text":
        return parse_semantic_patch(data, options=options)
    if kind == "frontend":
        from ..frontends import parse_patch_text

        fmt, text = data
        return parse_patch_text(text, format=fmt, options=options)
    return data


def _worker_init(payload, options: Optional[SpatchOptions],
                 cache_max_entries: int,
                 compile_flag: Optional[bool] = None) -> None:
    from .engine import Engine

    ast = ast_from_payload(payload, options)
    # caches are per-process (a TreeCache's lock cannot cross exec/pickle),
    # so each worker gets a fresh one honouring the parent cache's bound
    engine = Engine(ast, options=options,
                    tree_cache=TreeCache(max_entries=cache_max_entries),
                    compile=compile_flag)
    if has_per_file_scripts(ast):
        # script rules read the globals initialize rules set up; patches
        # without per-file scripts get their single initialize in the parent
        engine._run_initialize_rules()
    _WORKER_ENGINE["engine"] = engine


def _worker_apply(batch: list[tuple[str, str, Optional[frozenset[str]]]]
                  ) -> list[FileResult]:
    engine: "Engine" = _WORKER_ENGINE["engine"]
    return [engine.session_for(filename, text, allowed_rules=allowed).run()
            for filename, text, allowed in batch]


#: marker tagging a worker batch return that carries a telemetry envelope
_TELEMETRY_TAG = "__repro_telemetry__"


def _telemetry_worker(worker, batch):
    """Run one batch in a forked worker, capturing the registry delta (and
    the span tree, when the parent had tracing active at fork time — the
    contextvar forks with the process) so the parent can aggregate worker
    telemetry instead of losing it with the child."""
    if not _obs.enabled():
        return (_TELEMETRY_TAG, list(worker(batch)), None, None)
    capture = _obs.telemetry_capture()
    spans = None
    if _trace.tracing_active():
        tracer = _trace.start_trace(f"fork-worker[{os.getpid()}]")
        try:
            results = list(worker(batch))
        finally:
            spans = tracer.finish().to_payload()
    else:
        results = list(worker(batch))
    return (_TELEMETRY_TAG, results, capture.delta(), spans)


def run_fork_pool(items: list, jobs: int, initializer, initargs, worker) -> list:
    """Fan ``items`` out over ``jobs`` forked worker processes in batches and
    return the concatenated per-item results (shared by :class:`Driver`,
    :class:`~repro.engine.pipeline.PatchPipeline` and
    :class:`~repro.engine.incremental.IncrementalPipeline`).  A few batches
    per worker so an expensive item does not serialise the tail, while
    keeping per-task pickling overhead low.

    Degenerate inputs never pay fork cost: an empty ``items`` answers
    immediately and a single item (or ``jobs <= 1``) runs in-process — the
    initializer builds the same fresh per-worker state it would in a forked
    child, just in this process.  The established callers already route
    such inputs to their serial paths before reaching here (that is how
    one-file incremental deltas avoid forking), so this is a guarantee for
    new callers, not a hot path.
    """
    from concurrent.futures import ProcessPoolExecutor

    if not items:
        return []
    if len(items) == 1 or jobs <= 1:
        initializer(*initargs)
        return list(worker(items))

    ctx = multiprocessing.get_context("fork")
    batch_size = max(1, math.ceil(len(items) / (jobs * 4)))
    batches = [items[i:i + batch_size]
               for i in range(0, len(items), batch_size)]
    results: list = []
    wrapped = functools.partial(_telemetry_worker, worker)
    with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx,
                             initializer=initializer,
                             initargs=initargs) as pool:
        for tag, batch_results, delta, spans in pool.map(wrapped, batches):
            assert tag == _TELEMETRY_TAG
            results.extend(batch_results)
            if delta:
                _obs.merge_telemetry(delta, origin="workers")
            if spans:
                _trace.graft_payloads([spans])
    return results


class Driver:
    """Applies one semantic patch to a whole code base."""

    def __init__(self, patch: SemanticPatchAST,
                 options: Optional[SpatchOptions] = None, *,
                 jobs: "int | str" = 1, prefilter: bool = True,
                 engine: "Optional[Engine]" = None,
                 tree_cache: Optional[TreeCache] = None,
                 compile: Optional[bool] = None):
        from .engine import Engine

        self.patch = patch
        self.options = options or patch.options
        self.jobs = resolve_jobs(jobs)
        self.jobs_requested = jobs
        self.prefilter_enabled = prefilter
        self.compile_flag = compile
        self.tree_cache = tree_cache if tree_cache is not None else DEFAULT_TREE_CACHE
        self.engine = engine or Engine(patch, options=self.options,
                                       tree_cache=self.tree_cache,
                                       compile=compile)
        self.prefilter = PatchPrefilter(patch) if prefilter else None
        self.stats = DriverStats()

    # -- public API -----------------------------------------------------------

    def run(self, files: dict[str, str],
            token_index: Optional[TokenIndex] = None) -> PatchResult:
        """Apply the patch to ``{filename: text}``; results keep the input
        file order whatever the prefilter skipped or the workers reordered."""
        started = time.perf_counter()
        stats = self.stats = DriverStats(
            files_total=len(files), prefilter=self.prefilter_enabled,
            jobs_requested=self.jobs_requested)
        telemetry = _obs.enabled()
        if telemetry:
            _M_RUNS.inc()
        worker_hits0 = _M_WORKER_HITS.value
        worker_misses0 = _M_WORKER_MISSES.value
        # count parse-cache traffic on the cache the sessions actually use
        # (an engine handed in by Engine.apply_to_files may have none)
        session_cache = self.engine.tree_cache
        cache_hits0, cache_misses0 = session_cache.stats() \
            if session_cache is not None else (0, 0)

        # ---- plan: which rules survive per file, which files need a session
        session_files: list[tuple[str, str, Optional[frozenset[str]]]] = []
        skipped: dict[str, FileResult] = {}
        scan_started = time.perf_counter()
        n_patch_rules = len(self.patch.patch_rules())
        for name, text in files.items():
            if self.prefilter is None:
                session_files.append((name, text, None))
                continue
            tokens = token_index.tokens_of(name, text) if token_index is not None \
                else None
            plan = self.prefilter.plan_for(tokens) if tokens is not None \
                else self.prefilter.plan_for_text(text)
            if not plan.needs_session:
                skipped[name] = FileResult(filename=name, original_text=text,
                                           text=text)
                stats.files_skipped += 1
                stats.rules_gated += n_patch_rules
            else:
                stats.rules_gated += n_patch_rules - len(plan.allowed_rules)
                session_files.append((name, text, plan.allowed_rules))
        stats.scan_seconds = time.perf_counter() - scan_started

        jobs_used = self._effective_jobs(len(session_files))
        stats.jobs_used = jobs_used

        # ---- initialize rules run exactly once as soon as any file is
        # processed, mirroring the serial engine (which triggers them from
        # the first apply_to_file call, whether or not that file matches).
        # In parallel runs of a script-bearing patch, the *workers* run them
        # instead (their scripts need the initialized globals) and the
        # parent skips, keeping the total at one-per-process.
        if files and (jobs_used == 1 or not self._has_per_file_scripts()):
            self.engine._run_initialize_rules()

        # ---- apply
        apply_started = time.perf_counter()
        if jobs_used > 1:
            results = self._run_parallel(session_files, jobs_used)
        else:
            results = {name: self.engine.session_for(name, text,
                                                     allowed_rules=allowed).run()
                       for name, text, allowed in session_files}
        stats.apply_seconds = time.perf_counter() - apply_started

        # ---- assemble in input order, then finalize
        result = PatchResult()
        for name in files:
            result.files[name] = skipped[name] if name in skipped else results[name]
        self.engine._run_finalize_rules(result)

        if session_cache is not None and jobs_used == 1:
            cache_hits1, cache_misses1 = session_cache.stats()
            stats.cache_hits = cache_hits1 - cache_hits0
            stats.cache_misses = cache_misses1 - cache_misses0
        elif jobs_used > 1:
            if telemetry:
                # worker deltas were merged onto the origin="workers"
                # children by run_fork_pool — report the aggregate
                stats.cache_hits = int(_M_WORKER_HITS.value - worker_hits0)
                stats.cache_misses = int(
                    _M_WORKER_MISSES.value - worker_misses0)
                stats.cache_scope = "workers"
            else:
                stats.cache_scope = "unavailable"
        if telemetry:
            _M_FILES.inc(len(session_files))
            _M_FILES_SKIPPED.inc(len(skipped))
        stats.total_seconds = time.perf_counter() - started
        result.stats = stats
        return result

    # -- parallel execution ---------------------------------------------------

    def _effective_jobs(self, n_files: int) -> int:
        if self.jobs <= 1 or n_files <= 1:
            return 1
        if not self._parallel_preserves_semantics():
            return 1
        if "fork" not in multiprocessing.get_all_start_methods():
            return 1  # spawn would not inherit sys.path in source checkouts
        return min(self.jobs, n_files)

    def _has_per_file_scripts(self) -> bool:
        return has_per_file_scripts(self.patch)

    def _parallel_preserves_semantics(self) -> bool:
        return parallel_preserves_semantics(self.patch, self.options)

    def _payload(self):
        return patch_payload(self.patch)

    def _run_parallel(self, session_files, jobs: int) -> dict[str, FileResult]:
        file_results = run_fork_pool(
            session_files, jobs, _worker_init,
            (self._payload(), self.options, self.tree_cache.max_entries,
             self.compile_flag),
            _worker_apply)
        return {file_result.filename: file_result
                for file_result in file_results}
