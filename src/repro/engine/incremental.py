"""Incremental re-application: re-run only what changed since the last run.

A cold :class:`~repro.engine.pipeline.PatchPipeline` pass pays for soundness
once per invocation — every file is token-scanned and every surviving file's
sessions re-run, even when one file changed since the last run.  In an
edit-apply loop (``--watch``, repeated CLI invocations over a mostly-stable
tree) almost all of that work reproduces results that are already known.

:class:`IncrementalPipeline` exploits the one fact that makes reuse sound:
per file, the pipeline is a *pure function of that file's input text* (given
a fixed patch list and options).  Sessions never read other files, per-patch
engines are rebuilt identically each run, and prefilter decisions are
deterministic functions of the file's token set.  So given a prior
:class:`~repro.engine.pipeline.PipelineResult` and the current files:

* files whose content hash equals the hash recorded in the prior result's
  :class:`~repro.engine.pipeline.FileRecord` **splice**: their cached
  :class:`~repro.engine.report.FileResult`\\ s (combined and per patch) are
  copied into the fresh result, and their recorded coverage contributions
  reconstruct the skip/gate counters a cold run would report;
* changed and added files **re-run** through the pipeline's own
  plan/apply machinery (token scan, union prefilter, serial or fork-pool
  application) — exactly the path a cold run would take for them;
* files present in the prior result but gone from the input are **dropped**.

The output is byte-identical to a cold ``PatchPipeline.run`` over the
current files: same texts, same per-rule reports, same per-patch stats
modulo timing.  Two caveats gate the fast path (both fall back to a cold
run rather than silently changing meaning):

* the prior result must carry reuse records and at least a shared
  patch-list *prefix* (see below) — otherwise everything re-runs;
* a patch combining per-file ``script:python`` rules with a ``finalize``
  rule may aggregate state across *all* files; replaying only the changed
  ones would feed its finalize a partial view.

``initialize``/``finalize`` script rules still run exactly once per patch
per invocation, mirroring the cold pipeline (their diagnostics are fresh,
not spliced).

Patch-set deltas
----------------
The patch list is diffed as well as the tree.  Every patch carries its own
fingerprint (SMPL source + name + options, see
:func:`~repro.engine.pipeline.patch_fingerprint`); when the prior result's
per-patch fingerprints share a position-wise **prefix** with the current
list, each hash-unchanged file splices its cached per-patch results up to
the divergence point and replays only the *suffix* patches, starting from
the cached per-patch-boundary text.  This is sound because the pipeline is
file-major over an ordered patch chain: the text entering patch ``k``
depends only on the file's input text and patches ``0..k-1`` — all
fingerprint-identical to the prior run — so the cached boundary state *is*
the state a cold run would reach.  Before splicing, the boundary text is
re-verified against the content hash recorded at the divergence boundary
(:attr:`~repro.engine.pipeline.FileRecord.boundaries`); any mismatch —
stale or corrupt state — demotes that file to a full re-run.  Appending a
patch to an N-patch cookbook therefore costs one patch, not N+1; a
reordered prefix shortens the shared prefix to the divergence point (to a
cold run when the *first* patch moved), and an option change alters every
fingerprint, so reuse degrades, never lies.  Whole-file skip decisions are
re-planned against the union prefilter of the *new* patch list, keeping the
coverage counters identical to a cold run's.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..obs import registry as _obs
from ..options import SpatchOptions
from ..smpl.ast import SemanticPatchAST
from .cache import TreeCache, content_sha1
from .driver import (_M_WORKER_HITS, _M_WORKER_MISSES,
                     parallel_preserves_semantics)
from .pipeline import (FileRecord, PatchPipeline, PipelineResult,
                       PipelineStats, _FileOutcome, boundary_hashes)
from .prefilter import TokenIndex, scan_token_set
from .report import FileResult

#: format tag for persisted pipeline states; bump on incompatible changes
#: (v2: per-patch fingerprints + per-boundary hashes; v1 states degrade to
#: cold runs, never to wrong output)
_STATE_VERSION = 2

#: default bound on the parse-cache entries a persisted state embeds; the
#: LRU-coldest overflow is dropped so long-lived watch/state files stay flat
DEFAULT_STATE_CACHE_ENTRIES = 256

#: what an empty suffix replay "produced": read-only stand-in so spliced
#: files with nothing left to run skip the apply fan-out entirely
_EMPTY_OUTCOME = _FileOutcome(filename="", results=[], ran=[], rules_gated=[])


@dataclass
class IncrementalStats:
    """How much of the prior result an incremental run could reuse."""

    files_total: int = 0
    #: hash-unchanged files whose cached results were spliced in (up to the
    #: shared patch-list prefix when the patch set changed)
    files_reused: int = 0
    #: files re-run through the whole chain because their content hash changed
    files_changed: int = 0
    #: files re-run because the prior result had never seen them
    files_added: int = 0
    #: prior-result files absent from the current input
    files_dropped: int = 0
    #: patches in the current list
    patches_total: int = 0
    #: leading patches whose cached per-file results could be spliced
    #: (== ``patches_total`` when the whole patch set matched the prior run)
    patches_reused: int = 0
    #: why the run degraded to a cold pipeline pass (``None`` = incremental)
    fallback: Optional[str] = None
    hash_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def files_rerun(self) -> int:
        return self.files_changed + self.files_added

    @property
    def patches_rerun(self) -> int:
        return self.patches_total - self.patches_reused

    @property
    def reuse_rate(self) -> float:
        return self.files_reused / self.files_total if self.files_total else 0.0

    def as_dict(self) -> dict:
        """JSON-able view (the ``--json``/server ``profile`` section)."""
        from dataclasses import asdict

        payload = asdict(self)
        payload["files_rerun"] = self.files_rerun
        payload["patches_rerun"] = self.patches_rerun
        payload["reuse_rate"] = self.reuse_rate
        return payload

    def describe(self) -> str:
        if self.fallback is not None:
            return (f"incremental: fell back to a cold run ({self.fallback}); "
                    f"{self.files_total} file(s) processed")
        prefix = ""
        if self.patches_reused < self.patches_total:
            prefix = (f"patch prefix: {self.patches_reused}/"
                      f"{self.patches_total} spliced, {self.patches_rerun} "
                      f"suffix patch(es) re-run  ")
        return (f"incremental: {self.files_reused} reused ({self.reuse_rate:.0%}), "
                f"{self.files_changed} changed + {self.files_added} added "
                f"re-run, {self.files_dropped} dropped  {prefix}"
                f"hash: {self.hash_seconds:.3f}s  total: {self.total_seconds:.3f}s")


class IncrementalPipeline:
    """Applies an ordered patch list to a code base, reusing a prior
    :class:`~repro.engine.pipeline.PipelineResult` for every file whose
    content hash is unchanged (see the module docstring for the semantics).

    Constructed like a :class:`~repro.engine.pipeline.PatchPipeline`; the
    one new entry point is ``run(files, since=prior_result)``.
    """

    def __init__(self, patches: Sequence[SemanticPatchAST],
                 options: Optional[Sequence[Optional[SpatchOptions]]] = None, *,
                 names: Optional[Sequence[str]] = None,
                 jobs: "int | str" = 1, prefilter: bool = True,
                 tree_cache: Optional[TreeCache] = None,
                 compile: Optional[bool] = None,
                 memo=None):
        self.pipeline = PatchPipeline(patches, options, names=names,
                                      jobs=jobs, prefilter=prefilter,
                                      tree_cache=tree_cache,
                                      compile=compile, memo=memo)

    @property
    def fingerprint(self) -> str:
        return self.pipeline.fingerprint

    # -- public API -----------------------------------------------------------

    def run(self, files: dict[str, str],
            since: Optional[PipelineResult] = None,
            token_index: Optional[TokenIndex] = None) -> PipelineResult:
        """Apply every patch to ``{filename: text}``, splicing ``since``'s
        cached per-file results wherever the content hash is unchanged —
        whole-chain results when the patch set is identical, prefix results
        (with a suffix replay) when it shares a leading subsequence."""
        started = time.perf_counter()
        pipeline = self.pipeline
        incremental = IncrementalStats(files_total=len(files),
                                       patches_total=len(pipeline.patches))

        reason, prefix_len, whole = self._reuse_plan(since)
        if reason is not None:
            incremental.fallback = reason
            incremental.files_changed = len(files)
            result = pipeline.run(files, token_index=token_index)
            incremental.total_seconds = time.perf_counter() - started
            result.incremental = incremental
            return result
        incremental.patches_reused = prefix_len
        if whole:
            return self._run_full(files, since, token_index, incremental,
                                  started)
        return self._run_prefix(files, since, prefix_len, token_index,
                                incremental, started)

    # -- internals ------------------------------------------------------------

    def _reuse_plan(self, since: Optional[PipelineResult],
                    ) -> tuple[Optional[str], int, bool]:
        """``(fallback_reason, shared_prefix_length, whole)``: how much of
        ``since`` may seed this run.  ``whole`` selects the wholesale path
        (identical patch set, intact per-patch results); a shorter prefix
        means splice-then-replay; any ``reason`` means a cold run."""
        pipeline = self.pipeline
        if since is None:
            return "no prior result", 0, False
        if not isinstance(since, PipelineResult):
            return "prior result is not a pipeline result", 0, False
        if not since.records:
            return "prior result carries no reuse records", 0, False
        # texts and reports are prefilter-independent, but the coverage
        # counters (files_skipped / rules_gated) a spliced record would
        # reconstruct are not; a toggled prefilter must re-run cold so the
        # stats match what this mode's cold run reports
        prior_prefilter = getattr(since.stats, "prefilter", None)
        if prior_prefilter != pipeline.prefilter_enabled:
            return "prefilter setting changed since the prior result", 0, False
        for patch, options in zip(pipeline.patches, pipeline.options):
            if not parallel_preserves_semantics(patch, options):
                return ("a patch aggregates per-file script state into a "
                        "finalize rule; partial replay would skew it"), 0, \
                    False
        if since.fingerprint == pipeline.fingerprint \
                and len(since.per_patch) == len(pipeline.patches):
            return None, len(pipeline.patches), True
        # diverged (or truncated/tampered) patch set: find the longest
        # position-wise fingerprint prefix, never indexing past the
        # per-patch results that are actually there to splice from
        prior_fingerprints = getattr(since, "patch_fingerprints", None) or []
        usable = min(len(prior_fingerprints), len(since.per_patch))
        prefix_len = 0
        for ours, theirs in zip(pipeline.patch_fingerprints,
                                prior_fingerprints[:usable]):
            if ours != theirs:
                break
            prefix_len += 1
        if prefix_len == 0:
            return ("patch set or options changed since the prior result "
                    "with no shared patch prefix"), 0, False
        return None, prefix_len, False

    def _run_full(self, files: dict[str, str], since: PipelineResult,
                  token_index: Optional[TokenIndex],
                  incremental: IncrementalStats,
                  started: float) -> PipelineResult:
        """The identical-patch-set path: splice whole cached per-file
        results, re-run only content-changed/added files."""
        pipeline = self.pipeline

        # ---- diff: which files does the prior result still answer
        n_patches = len(pipeline.patches)
        hash_started = time.perf_counter()
        reused: dict[str, FileRecord] = {}
        rerun: dict[str, str] = {}
        for name, text in files.items():
            record = since.records.get(name)
            if (record is not None and record.sha1 == content_sha1(text)
                    # a malformed record/result (wrong arity, missing file
                    # views) re-runs the file instead of crashing the splice
                    and len(record.ran) == n_patches
                    and len(record.rules_gated) == n_patches
                    and name in since.files
                    and all(name in prior.files
                            for prior in since.per_patch)):
                reused[name] = record
                incremental.files_reused += 1
            else:
                rerun[name] = text
                if record is None:
                    incremental.files_added += 1
                else:
                    incremental.files_changed += 1
        incremental.files_dropped = sum(1 for name in since.records
                                        if name not in files)
        incremental.hash_seconds = time.perf_counter() - hash_started

        # ---- re-run the delta through the pipeline's own machinery
        stats = pipeline.stats = PipelineStats(
            patches=len(pipeline.patches), files_total=len(files),
            prefilter=pipeline.prefilter_enabled,
            jobs_requested=pipeline.jobs_requested)
        cache_hits0, cache_misses0 = pipeline.tree_cache.stats()
        memo0 = pipeline.memo.stats() if pipeline.memo is not None else (0, 0)
        worker0 = (_M_WORKER_HITS.value, _M_WORKER_MISSES.value)
        outcomes, skipped = pipeline._plan_and_apply(rerun, token_index, stats)
        if files and not rerun:
            # a cold run over a non-empty code base runs initialize rules
            # even when the prefilter skips everything; keep the state the
            # finalize rules observe identical
            for engine in pipeline.engines:
                engine._run_initialize_rules()

        # ---- assemble in input order: splice or take the fresh outcome
        result, per_patch_stats = pipeline._fresh_result(len(files),
                                                         stats.jobs_used)
        with _obs.phase("splice"):
            for name, text in files.items():
                if name in reused:
                    self._assemble_reused(result, per_patch_stats, stats,
                                          name, reused[name], since)
                elif name in skipped:
                    pipeline._assemble_skipped(result, per_patch_stats, stats,
                                               name, text)
                else:
                    pipeline._assemble_outcome(result, per_patch_stats, stats,
                                               name, text, outcomes[name])

        pipeline._run_finalize(result, per_patch_stats)
        return self._seal(result, stats, incremental, started,
                          cache_hits0, cache_misses0, memo0, worker0)

    def _run_prefix(self, files: dict[str, str], since: PipelineResult,
                    prefix_len: int, token_index: Optional[TokenIndex],
                    incremental: IncrementalStats,
                    started: float) -> PipelineResult:
        """The shared-prefix path: for each hash-unchanged file splice the
        cached results of patches ``0..prefix_len-1`` and replay only the
        suffix patches from the cached boundary text; changed/added files
        (and files whose boundary verification fails) re-run the whole
        chain.  Whole-file skips are re-planned against the *new* patch
        list's union prefilter, so the coverage counters match a cold run."""
        pipeline = self.pipeline
        stats = pipeline.stats = PipelineStats(
            patches=len(pipeline.patches), files_total=len(files),
            prefilter=pipeline.prefilter_enabled,
            jobs_requested=pipeline.jobs_requested)
        cache_hits0, cache_misses0 = pipeline.tree_cache.stats()
        memo0 = pipeline.memo.stats() if pipeline.memo is not None else (0, 0)
        worker0 = (_M_WORKER_HITS.value, _M_WORKER_MISSES.value)
        prior_boundary = since.per_patch[prefix_len - 1].files

        # ---- plan: hash-diff the tree and union-scan against the new list
        plan_started = time.perf_counter()
        spliced: dict[str, FileRecord] = {}
        work: list[tuple[str, str, Optional[frozenset[str]], int]] = []
        skipped: set[str] = set()
        for name, text in files.items():
            record = since.records.get(name)
            if record is None:
                incremental.files_added += 1
            elif (record.sha1 == content_sha1(text)
                    and len(record.boundaries) >= prefix_len
                    and len(record.ran) >= prefix_len
                    and len(record.rules_gated) >= prefix_len
                    and name in prior_boundary
                    and content_sha1(prior_boundary[name].text)
                    == record.boundaries[prefix_len - 1]
                    and all(name in prior.files
                            for prior in since.per_patch[:prefix_len])):
                # splice-verified: the cached boundary text really is the
                # state the shared prefix produced for this input
                incremental.files_reused += 1
            else:
                record = None  # changed, or stale/corrupt: full re-run
                incremental.files_changed += 1
            tokens: Optional[frozenset[str]] = None
            if pipeline.prefilter is not None:
                tokens = token_index.tokens_of(name, text) \
                    if token_index is not None else scan_token_set(text)
                if not pipeline.prefilter.needs_any_session(tokens):
                    skipped.add(name)
                    stats.files_skipped += 1
                    continue
            if record is not None:
                spliced[name] = record
                if prefix_len == len(pipeline.patches):
                    continue  # empty suffix (truncated list): nothing to run
                # when the prefix never edited the file, the boundary text
                # *is* the input text and the tokens just scanned still
                # apply; otherwise the suffix re-scans the evolved text
                # lazily, exactly as a cold run would after an edit
                boundary_tokens = tokens \
                    if record.boundaries[prefix_len - 1] == record.sha1 \
                    else None
                work.append((name, prior_boundary[name].text,
                             boundary_tokens, prefix_len))
            else:
                work.append((name, text, tokens, 0))
        incremental.files_dropped = sum(1 for name in since.records
                                        if name not in files)
        incremental.hash_seconds = time.perf_counter() - plan_started
        stats.scan_seconds = incremental.hash_seconds

        # ---- apply: suffix replays and full re-runs share one fan-out
        jobs_used = pipeline._effective_jobs(len(work))
        stats.jobs_used = jobs_used
        pipeline._run_initialize(bool(files), jobs_used)
        apply_started = time.perf_counter()
        outcomes = pipeline._apply_work(work, jobs_used)
        stats.apply_seconds = time.perf_counter() - apply_started

        # ---- assemble in input order
        result, per_patch_stats = pipeline._fresh_result(len(files), jobs_used)
        with _obs.phase("splice"):
            for name, text in files.items():
                if name in skipped:
                    pipeline._assemble_skipped(result, per_patch_stats, stats,
                                               name, text)
                elif name in spliced:
                    self._assemble_prefix(result, per_patch_stats, stats,
                                          name, text, spliced[name], since,
                                          prefix_len, outcomes.get(name))
                else:
                    pipeline._assemble_outcome(result, per_patch_stats, stats,
                                               name, text, outcomes[name])

        pipeline._run_finalize(result, per_patch_stats)
        return self._seal(result, stats, incremental, started,
                          cache_hits0, cache_misses0, memo0, worker0)

    def _seal(self, result: PipelineResult, stats: PipelineStats,
              incremental: IncrementalStats, started: float,
              cache_hits0: int, cache_misses0: int,
              memo0: tuple[int, int] = (0, 0),
              worker0: Optional[tuple[int, int]] = None) -> PipelineResult:
        """Shared run epilogue: cache counters, timings, stat attachment."""
        pipeline = self.pipeline
        if stats.jobs_used == 1:
            cache_hits1, cache_misses1 = pipeline.tree_cache.stats()
            stats.cache_hits = cache_hits1 - cache_hits0
            stats.cache_misses = cache_misses1 - cache_misses0
        elif worker0 is not None and _obs.enabled():
            stats.cache_hits = int(_M_WORKER_HITS.value - worker0[0])
            stats.cache_misses = int(_M_WORKER_MISSES.value - worker0[1])
            stats.cache_scope = "workers"
        else:
            stats.cache_scope = "unavailable"
        if pipeline.memo is not None:
            memo_hits1, memo_misses1 = pipeline.memo.stats()
            stats.memo_hits = memo_hits1 - memo0[0]
            stats.memo_misses = memo_misses1 - memo0[1]
        stats.total_seconds = time.perf_counter() - started
        incremental.total_seconds = time.perf_counter() - started
        result.stats = stats
        result.incremental = incremental
        return result

    def _assemble_reused(self, result: PipelineResult,
                         per_patch_stats, stats: PipelineStats,
                         name: str, record: FileRecord,
                         since: PipelineResult) -> None:
        """Splice one hash-unchanged file's cached results into ``result``,
        reconstructing its exact contribution to the coverage counters."""
        for index, patch_result in enumerate(result.per_patch):
            patch_result.files[name] = since.per_patch[index].files[name].copy()
            if not record.ran[index]:
                per_patch_stats[index].files_skipped += 1
            per_patch_stats[index].rules_gated += record.rules_gated[index]
        result.files[name] = since.files[name].copy()
        result.records[name] = record
        if record.skipped:
            stats.files_skipped += 1
        stats.sessions_run += sum(record.ran)
        stats.sessions_gated += len(record.ran) - sum(record.ran)
        stats.rules_gated += sum(record.rules_gated)

    def _assemble_prefix(self, result: PipelineResult,
                         per_patch_stats, stats: PipelineStats,
                         name: str, text: str, record: FileRecord,
                         since: PipelineResult, prefix_len: int,
                         outcome) -> None:
        """Splice one hash-unchanged file's cached results for the shared
        patch-list prefix and take the freshly replayed suffix outcomes,
        rebuilding the combined view — reports concatenated in application
        order, final text from the last suffix patch — exactly as a cold
        run's assembler would.  ``outcome`` is ``None`` when the suffix is
        empty (the new list is a strict prefix of the prior one): the
        spliced file then never entered the apply fan-out at all."""
        if outcome is None:
            outcome = _EMPTY_OUTCOME
        prefix_results = []
        for index in range(prefix_len):
            cached = since.per_patch[index].files[name]
            prefix_results.append(cached)
            result.per_patch[index].files[name] = cached.copy()
            if not record.ran[index]:
                per_patch_stats[index].files_skipped += 1
            per_patch_stats[index].rules_gated += record.rules_gated[index]
        for offset, file_result in enumerate(outcome.results):
            index = prefix_len + offset
            result.per_patch[index].files[name] = file_result
            if not outcome.ran[offset]:
                per_patch_stats[index].files_skipped += 1
            per_patch_stats[index].rules_gated += outcome.rules_gated[offset]

        ran = tuple(record.ran[:prefix_len]) + tuple(outcome.ran)
        rules_gated = (tuple(record.rules_gated[:prefix_len])
                       + tuple(outcome.rules_gated))
        all_results = prefix_results + outcome.results
        final_text = all_results[-1].text if all_results else text
        result.files[name] = FileResult(
            filename=name, original_text=text, text=final_text,
            rule_reports=[replace(report) for cached in prefix_results
                          for report in cached.rule_reports]
                         + [report for fresh in outcome.results
                            for report in fresh.rule_reports],
            diagnostics=[d for fr in all_results for d in fr.diagnostics])
        boundary_text = prefix_results[-1].text
        result.records[name] = FileRecord(
            sha1=record.sha1, skipped=False, ran=ran, rules_gated=rules_gated,
            boundaries=tuple(record.boundaries[:prefix_len])
            + boundary_hashes(outcome.results, boundary_text,
                              record.boundaries[prefix_len - 1]))
        stats.sessions_run += sum(ran)
        stats.sessions_gated += len(ran) - sum(ran)
        stats.rules_gated += sum(rules_gated)


# ---------------------------------------------------------------------------
# persistence: the CLI's --incremental STATE_FILE
# ---------------------------------------------------------------------------

@dataclass
class PipelineState:
    """What ``--incremental STATE_FILE`` persists between CLI invocations:
    the prior result (with its reuse records and patch-set fingerprint) and,
    optionally, the parse-tree cache entries, so a repeated invocation skips
    both re-application *and* re-parsing."""

    result: PipelineResult
    #: ``TreeCache.snapshot()`` entries; content-hash keys stay valid across
    #: processes
    cache_entries: list = field(default_factory=list)
    #: bound on the cache entries :meth:`save` embeds; the LRU-coldest
    #: overflow is dropped (``None`` = unbounded) so a long-lived watch
    #: session's state file cannot grow with every file it ever saw
    max_cache_entries: Optional[int] = DEFAULT_STATE_CACHE_ENTRIES
    #: optional ``{filename: text}`` snapshot of the code base itself —
    #: what the daemon's ``--state-root`` workspace snapshots carry so a
    #: restarted process can restore the files alongside the result (the
    #: CLI's ``--incremental`` flow leaves this ``None``: the files live on
    #: the user's disk).  Absent from pre-existing payloads, which load as
    #: ``None`` — no version bump needed.
    files: Optional[dict] = None

    @property
    def fingerprint(self) -> Optional[str]:
        return self.result.fingerprint

    def save(self, path) -> None:
        entries = self.cache_entries
        if self.max_cache_entries is not None \
                and len(entries) > self.max_cache_entries:
            # snapshot() order is LRU oldest-first: keep the hottest tail
            entries = entries[-self.max_cache_entries:]
        payload = {"version": _STATE_VERSION, "result": self.result,
                   "cache_entries": entries}
        if self.files is not None:
            payload["files"] = self.files
        # atomic publish: a process killed mid-save (the daemon's kill -9
        # restart path) must never leave a torn file over a good snapshot
        directory = os.path.dirname(os.path.abspath(os.fspath(path)))
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path) -> "Optional[PipelineState]":
        """The persisted state, or ``None`` when the file is missing,
        unreadable or from an incompatible version — a stale state file must
        degrade to a cold run, never break the invocation."""
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if payload.get("version") != _STATE_VERSION:
                return None
            result = payload["result"]
            if not isinstance(result, PipelineResult):
                return None
            files = payload.get("files")
            if files is not None and not isinstance(files, dict):
                files = None
            return cls(result=result,
                       cache_entries=list(payload.get("cache_entries", [])),
                       files=files)
        except Exception:
            # pickle failures surface as UnpicklingError, ValueError,
            # EOFError, AttributeError/ImportError (renamed classes), ... —
            # the contract is "degrade, never break", so catch them all
            return None
