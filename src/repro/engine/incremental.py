"""Incremental re-application: re-run only what changed since the last run.

A cold :class:`~repro.engine.pipeline.PatchPipeline` pass pays for soundness
once per invocation — every file is token-scanned and every surviving file's
sessions re-run, even when one file changed since the last run.  In an
edit-apply loop (``--watch``, repeated CLI invocations over a mostly-stable
tree) almost all of that work reproduces results that are already known.

:class:`IncrementalPipeline` exploits the one fact that makes reuse sound:
per file, the pipeline is a *pure function of that file's input text* (given
a fixed patch list and options).  Sessions never read other files, per-patch
engines are rebuilt identically each run, and prefilter decisions are
deterministic functions of the file's token set.  So given a prior
:class:`~repro.engine.pipeline.PipelineResult` and the current files:

* files whose content hash equals the hash recorded in the prior result's
  :class:`~repro.engine.pipeline.FileRecord` **splice**: their cached
  :class:`~repro.engine.report.FileResult`\\ s (combined and per patch) are
  copied into the fresh result, and their recorded coverage contributions
  reconstruct the skip/gate counters a cold run would report;
* changed and added files **re-run** through the pipeline's own
  plan/apply machinery (token scan, union prefilter, serial or fork-pool
  application) — exactly the path a cold run would take for them;
* files present in the prior result but gone from the input are **dropped**.

The output is byte-identical to a cold ``PatchPipeline.run`` over the
current files: same texts, same per-rule reports, same per-patch stats
modulo timing.  Two caveats gate the fast path (both fall back to a cold
run rather than silently changing meaning):

* the prior result must carry reuse records and a matching patch-set
  fingerprint — a changed patch list or options invalidates everything;
* a patch combining per-file ``script:python`` rules with a ``finalize``
  rule may aggregate state across *all* files; replaying only the changed
  ones would feed its finalize a partial view.

``initialize``/``finalize`` script rules still run exactly once per patch
per invocation, mirroring the cold pipeline (their diagnostics are fresh,
not spliced).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..options import SpatchOptions
from ..smpl.ast import SemanticPatchAST
from .cache import TreeCache, content_sha1
from .driver import parallel_preserves_semantics
from .pipeline import (FileRecord, PatchPipeline, PipelineResult,
                       PipelineStats)
from .prefilter import TokenIndex

#: format tag for persisted pipeline states; bump on incompatible changes
_STATE_VERSION = 1


@dataclass
class IncrementalStats:
    """How much of the prior result an incremental run could reuse."""

    files_total: int = 0
    #: hash-unchanged files whose cached results were spliced in
    files_reused: int = 0
    #: files re-run because their content hash changed
    files_changed: int = 0
    #: files re-run because the prior result had never seen them
    files_added: int = 0
    #: prior-result files absent from the current input
    files_dropped: int = 0
    #: why the run degraded to a cold pipeline pass (``None`` = incremental)
    fallback: Optional[str] = None
    hash_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def files_rerun(self) -> int:
        return self.files_changed + self.files_added

    @property
    def reuse_rate(self) -> float:
        return self.files_reused / self.files_total if self.files_total else 0.0

    def describe(self) -> str:
        if self.fallback is not None:
            return (f"incremental: fell back to a cold run ({self.fallback}); "
                    f"{self.files_total} file(s) processed")
        return (f"incremental: {self.files_reused} reused ({self.reuse_rate:.0%}), "
                f"{self.files_changed} changed + {self.files_added} added "
                f"re-run, {self.files_dropped} dropped  "
                f"hash: {self.hash_seconds:.3f}s  total: {self.total_seconds:.3f}s")


class IncrementalPipeline:
    """Applies an ordered patch list to a code base, reusing a prior
    :class:`~repro.engine.pipeline.PipelineResult` for every file whose
    content hash is unchanged (see the module docstring for the semantics).

    Constructed like a :class:`~repro.engine.pipeline.PatchPipeline`; the
    one new entry point is ``run(files, since=prior_result)``.
    """

    def __init__(self, patches: Sequence[SemanticPatchAST],
                 options: Optional[Sequence[Optional[SpatchOptions]]] = None, *,
                 names: Optional[Sequence[str]] = None,
                 jobs: "int | str" = 1, prefilter: bool = True,
                 tree_cache: Optional[TreeCache] = None):
        self.pipeline = PatchPipeline(patches, options, names=names,
                                      jobs=jobs, prefilter=prefilter,
                                      tree_cache=tree_cache)

    @property
    def fingerprint(self) -> str:
        return self.pipeline.fingerprint

    # -- public API -----------------------------------------------------------

    def run(self, files: dict[str, str],
            since: Optional[PipelineResult] = None,
            token_index: Optional[TokenIndex] = None) -> PipelineResult:
        """Apply every patch to ``{filename: text}``, splicing ``since``'s
        cached per-file results wherever the content hash is unchanged."""
        started = time.perf_counter()
        pipeline = self.pipeline
        incremental = IncrementalStats(files_total=len(files))

        reason = self._fallback_reason(since)
        if reason is not None:
            incremental.fallback = reason
            incremental.files_changed = len(files)
            result = pipeline.run(files, token_index=token_index)
            incremental.total_seconds = time.perf_counter() - started
            result.incremental = incremental
            return result

        # ---- diff: which files does the prior result still answer
        hash_started = time.perf_counter()
        reused: dict[str, FileRecord] = {}
        rerun: dict[str, str] = {}
        for name, text in files.items():
            record = since.records.get(name)
            if record is not None and record.sha1 == content_sha1(text):
                reused[name] = record
                incremental.files_reused += 1
            else:
                rerun[name] = text
                if record is None:
                    incremental.files_added += 1
                else:
                    incremental.files_changed += 1
        incremental.files_dropped = sum(1 for name in since.records
                                        if name not in files)
        incremental.hash_seconds = time.perf_counter() - hash_started

        # ---- re-run the delta through the pipeline's own machinery
        stats = pipeline.stats = PipelineStats(
            patches=len(pipeline.patches), files_total=len(files),
            prefilter=pipeline.prefilter_enabled,
            jobs_requested=pipeline.jobs_requested)
        cache_hits0, cache_misses0 = pipeline.tree_cache.stats()
        outcomes, skipped = pipeline._plan_and_apply(rerun, token_index, stats)
        if files and not rerun:
            # a cold run over a non-empty code base runs initialize rules
            # even when the prefilter skips everything; keep the state the
            # finalize rules observe identical
            for engine in pipeline.engines:
                engine._run_initialize_rules()

        # ---- assemble in input order: splice or take the fresh outcome
        result, per_patch_stats = pipeline._fresh_result(len(files),
                                                         stats.jobs_used)
        for name, text in files.items():
            if name in reused:
                self._assemble_reused(result, per_patch_stats, stats,
                                      name, reused[name], since)
            elif name in skipped:
                pipeline._assemble_skipped(result, per_patch_stats, stats,
                                           name, text)
            else:
                pipeline._assemble_outcome(result, per_patch_stats, stats,
                                           name, text, outcomes[name])

        pipeline._run_finalize(result, per_patch_stats)

        if stats.jobs_used == 1:
            cache_hits1, cache_misses1 = pipeline.tree_cache.stats()
            stats.cache_hits = cache_hits1 - cache_hits0
            stats.cache_misses = cache_misses1 - cache_misses0
        stats.total_seconds = time.perf_counter() - started
        incremental.total_seconds = time.perf_counter() - started
        result.stats = stats
        result.incremental = incremental
        return result

    # -- internals ------------------------------------------------------------

    def _fallback_reason(self, since: Optional[PipelineResult]) -> Optional[str]:
        """Why ``since`` cannot seed this run (``None`` when it can)."""
        if since is None:
            return "no prior result"
        if not isinstance(since, PipelineResult):
            return "prior result is not a pipeline result"
        if since.fingerprint != self.pipeline.fingerprint:
            return "patch set or options changed since the prior result"
        if not since.records:
            return "prior result carries no reuse records"
        # texts and reports are prefilter-independent, but the coverage
        # counters (files_skipped / rules_gated) a spliced record would
        # reconstruct are not; a toggled prefilter must re-run cold so the
        # stats match what this mode's cold run reports
        prior_prefilter = getattr(since.stats, "prefilter", None)
        if prior_prefilter != self.pipeline.prefilter_enabled:
            return "prefilter setting changed since the prior result"
        for patch, options in zip(self.pipeline.patches, self.pipeline.options):
            if not parallel_preserves_semantics(patch, options):
                return ("a patch aggregates per-file script state into a "
                        "finalize rule; partial replay would skew it")
        return None

    def _assemble_reused(self, result: PipelineResult,
                         per_patch_stats, stats: PipelineStats,
                         name: str, record: FileRecord,
                         since: PipelineResult) -> None:
        """Splice one hash-unchanged file's cached results into ``result``,
        reconstructing its exact contribution to the coverage counters."""
        for index, patch_result in enumerate(result.per_patch):
            patch_result.files[name] = since.per_patch[index].files[name].copy()
            if not record.ran[index]:
                per_patch_stats[index].files_skipped += 1
            per_patch_stats[index].rules_gated += record.rules_gated[index]
        result.files[name] = since.files[name].copy()
        result.records[name] = record
        if record.skipped:
            stats.files_skipped += 1
        stats.sessions_run += sum(record.ran)
        stats.sessions_gated += len(record.ran) - sum(record.ran)
        stats.rules_gated += sum(record.rules_gated)


# ---------------------------------------------------------------------------
# persistence: the CLI's --incremental STATE_FILE
# ---------------------------------------------------------------------------

@dataclass
class PipelineState:
    """What ``--incremental STATE_FILE`` persists between CLI invocations:
    the prior result (with its reuse records and patch-set fingerprint) and,
    optionally, the parse-tree cache entries, so a repeated invocation skips
    both re-application *and* re-parsing."""

    result: PipelineResult
    #: ``TreeCache.snapshot()`` entries; content-hash keys stay valid across
    #: processes
    cache_entries: list = field(default_factory=list)

    @property
    def fingerprint(self) -> Optional[str]:
        return self.result.fingerprint

    def save(self, path) -> None:
        payload = {"version": _STATE_VERSION, "result": self.result,
                   "cache_entries": self.cache_entries}
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path) -> "Optional[PipelineState]":
        """The persisted state, or ``None`` when the file is missing,
        unreadable or from an incompatible version — a stale state file must
        degrade to a cold run, never break the invocation."""
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if payload.get("version") != _STATE_VERSION:
                return None
            result = payload["result"]
            if not isinstance(result, PipelineResult):
                return None
            return cls(result=result,
                       cache_entries=list(payload.get("cache_entries", [])))
        except Exception:
            # pickle failures surface as UnpicklingError, ValueError,
            # EOFError, AttributeError/ImportError (renamed classes), ... —
            # the contract is "degrade, never break", so catch them all
            return None
