"""Global content-addressed transform memoization.

PR 4's incremental splicing is *positional*: a file's cached results are
reused only inside that file's own prior result, in one process.  Yet the
batch workload re-transforms identical inputs constantly — vendored
duplicate files, shared patch suffixes after a reorder, separate workspaces
holding the same tree, fresh daemons re-doing work a previous process
already finished.  :class:`TransformMemo` replaces position with *content*,
like a ccache/bazel action cache: every (file state, patch) transform is
keyed on

    ``(sha1 of the text entering the patch, patch fingerprint, mode flags)``

and maps to what the session produced — the output text (stored only when
the patch edited the file), the per-rule reports and the diagnostics.
Prefix, suffix, reorder, cross-file, cross-workspace and (with the on-disk
tier) cross-process reuse all fall out of this one mechanism.

Soundness
---------
A memo hit must be provably equivalent to running the session cold:

* the **content hash** pins the exact text entering the patch (the same
  ``content_sha1`` every cache/incremental layer keys on);
* the **patch fingerprint** (:func:`~repro.engine.pipeline.patch_fingerprint`)
  pins the SMPL source, the patch name and the frozen options — anything
  that can change what the patch does;
* the **mode flags** pin the prefilter setting (``allowed_rules`` — and so
  the reports a session emits — depend on whether gating is active) and the
  matcher backend (compiled and interpreted are differentially proven
  byte-identical, but entries never cross backends, so the proof is never
  load-bearing);
* per-file **skip and gating decisions are never memoized** — the pipeline
  re-plans them against the *current* union prefilter exactly as
  ``_reuse_plan`` does, so coverage counters always match a cold run;
* patches with per-file ``script:python`` rules are **excluded** (their
  sessions may read state mutated across files, so they are not pure
  functions of the file text; the pipeline passes ``None`` fingerprints for
  them and they always run cold).

Sessions of the remaining patches are pure functions of
``(text, patch, options, allowed_rules)`` — the fact incremental reuse
already relies on — with one filename-shaped exception: diagnostics embed
the filename they were produced under.  Entries therefore record their
source filename and an entry *with* diagnostics only answers that same
filename; diagnostic-free entries (the overwhelmingly common case) are
shared freely across identically-hashed files.

On-disk tier
------------
``TransformMemo(path=...)`` adds a persistent tier: each entry is one
content-addressed file ``<dir>/<kk>/<key-sha1>.memo`` (two-hex-char shard
directories) holding a pickled ``{"version", "key", "entry"}`` record,
written atomically (temp file + ``os.replace``) so concurrent writers —
including forked pipeline workers sharing the directory — can never
interleave a torn entry.  Reads verify the version tag *and* the full key
before trusting an entry; corrupt, stale-versioned or key-mismatched files
degrade to a miss (and are unlinked opportunistically), never to an error —
the same "degrade, never break" contract the parse cache and state files
follow.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..obs import registry as _obs
from .cache import content_sha1
from .report import FileResult, RuleReport

#: format tag for on-disk entries; bump on incompatible layout changes
#: (stale-versioned entries degrade to a miss, never to wrong output)
_DISK_VERSION = 1

_M_HITS = _obs.REGISTRY.counter(
    "repro_memo_lookups_total", "Transform-memo lookups", result="hit")
_M_MISSES = _obs.REGISTRY.counter(
    "repro_memo_lookups_total", "Transform-memo lookups", result="miss")
_M_DISK_HITS = _obs.REGISTRY.counter(
    "repro_memo_lookups_total", "Transform-memo lookups", result="disk_hit")
_M_STORES = _obs.REGISTRY.counter(
    "repro_memo_stores_total", "Transform-memo entry stores")

#: default bound on the in-memory LRU tier
DEFAULT_MEMO_ENTRIES = 4096


@dataclass(frozen=True)
class MemoEntry:
    """What one memoized session produced, filename-portable.

    ``text`` is ``None`` when the patch left the file untouched (the common
    case — most patches touch few files), so unchanged entries cost a few
    counters, not a copy of the file."""

    #: filename the entry was computed under; only consulted when
    #: ``diagnostics`` is non-empty (diagnostics embed it)
    filename: str
    #: output text, or ``None`` when identical to the input
    text: Optional[str]
    #: ``content_sha1`` of the output text (``None`` when unchanged) — lets
    #: a chained lookup reuse the hash instead of re-hashing the boundary
    output_sha: Optional[str]
    #: ``(rule, matches, deletions, insertions)`` per emitted report
    reports: tuple[tuple[str, int, int, int], ...]
    diagnostics: tuple

    @property
    def changed(self) -> bool:
        return self.text is not None

    def to_file_result(self, filename: str, input_text: str) -> FileResult:
        """Rebuild the exact :class:`~repro.engine.report.FileResult` a cold
        session over ``input_text`` would return."""
        return FileResult(
            filename=filename, original_text=input_text,
            text=self.text if self.text is not None else input_text,
            rule_reports=[RuleReport(rule=rule, matches=matches,
                                     deletions=deletions,
                                     insertions=insertions)
                          for rule, matches, deletions, insertions
                          in self.reports],
            diagnostics=list(self.diagnostics))

    @classmethod
    def from_file_result(cls, file_result: FileResult) -> "MemoEntry":
        changed = file_result.text != file_result.original_text
        return cls(
            filename=file_result.filename,
            text=file_result.text if changed else None,
            output_sha=content_sha1(file_result.text) if changed else None,
            reports=tuple((report.rule, report.matches, report.deletions,
                           report.insertions)
                          for report in file_result.rule_reports),
            diagnostics=tuple(file_result.diagnostics))


def memo_flags(prefilter: bool, compiled: bool) -> str:
    """The mode component of a memo key: entries never cross a prefilter
    toggle (``allowed_rules`` shape the reports) or a matcher backend."""
    return ("p" if prefilter else "-") + ("c" if compiled else "i")


class TransformMemo:
    """A thread-safe, bounded ``(content sha1, patch fingerprint, flags) →``
    :class:`MemoEntry` store with an in-memory LRU tier and an optional
    persistent on-disk tier (see the module docstring)."""

    def __init__(self, max_entries: int = DEFAULT_MEMO_ENTRIES,
                 path=None, max_blob_entries: int = 512):
        self.max_entries = max_entries
        self.max_blob_entries = max_blob_entries
        self.path = os.fspath(path) if path is not None else None
        self._entries: "OrderedDict[tuple, MemoEntry]" = OrderedDict()
        #: content-addressed raw-text tier (``sha1 → text``): what the
        #: memo-aware server sync stores/recalls so known file contents
        #: never cross the wire twice
        self._blobs: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: on-disk tier traffic (all zero when no ``path`` is configured)
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_stores = 0
        #: corrupt/stale/unwritable entry files degraded to a miss/no-op
        self.disk_errors = 0
        #: blob (raw text) tier traffic
        self.blob_hits = 0
        self.blob_misses = 0
        self.blob_stores = 0
        if self.path is not None:
            os.makedirs(self.path, exist_ok=True)

    # -- lookup / store ------------------------------------------------------

    def lookup(self, text_sha: str, fingerprint: str, flags: str,
               filename: str) -> Optional[MemoEntry]:
        """The memoized session outcome for this exact (text, patch, mode),
        or ``None``.  ``filename`` guards the one filename-dependent case:
        an entry carrying diagnostics only answers the filename it was
        computed under."""
        key = (text_sha, fingerprint, flags)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                if entry.diagnostics and entry.filename != filename:
                    self.misses += 1
                    if _obs.enabled():
                        _M_MISSES.inc()
                    return None
                self._entries.move_to_end(key)
                self.hits += 1
                if _obs.enabled():
                    _M_HITS.inc()
                return entry
        entry = self._disk_lookup(key)
        if entry is not None:
            if entry.diagnostics and entry.filename != filename:
                with self._lock:
                    self.misses += 1
                if _obs.enabled():
                    _M_MISSES.inc()
                return None
            with self._lock:
                self.hits += 1
                self.disk_hits += 1
                self._store_locked(key, entry)
            if _obs.enabled():
                _M_HITS.inc()
                _M_DISK_HITS.inc()
            return entry
        with self._lock:
            self.misses += 1
        if _obs.enabled():
            _M_MISSES.inc()
        return None

    def store(self, text_sha: str, fingerprint: str, flags: str,
              entry: MemoEntry) -> None:
        key = (text_sha, fingerprint, flags)
        with self._lock:
            known = key in self._entries
            self._store_locked(key, entry)
            if known:
                return  # refreshed recency; the disk entry is already there
            self.stores += 1
        if _obs.enabled():
            _M_STORES.inc()
        self._disk_store(key, entry)

    def store_result(self, text_sha: str, fingerprint: str, flags: str,
                     file_result: FileResult) -> Optional[str]:
        """Memoize one freshly computed session result; returns the output
        text's content hash when the session edited the file (``None``
        otherwise), so chained callers can thread boundary hashes without
        re-hashing."""
        entry = MemoEntry.from_file_result(file_result)
        self.store(text_sha, fingerprint, flags, entry)
        return entry.output_sha

    def _store_locked(self, key: tuple, entry: MemoEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    # -- the on-disk tier ----------------------------------------------------

    def _entry_path(self, key: tuple) -> str:
        digest = hashlib.sha1("\x00".join(key).encode("ascii")).hexdigest()
        return os.path.join(self.path, digest[:2], digest + ".memo")

    def _disk_lookup(self, key: tuple) -> Optional[MemoEntry]:
        if self.path is None:
            return None
        target = self._entry_path(key)
        try:
            with open(target, "rb") as handle:
                payload = pickle.load(handle)
            if (not isinstance(payload, dict)
                    or payload.get("version") != _DISK_VERSION
                    or payload.get("key") != key):
                raise ValueError("stale or mismatched memo entry")
            entry = payload["entry"]
            if not isinstance(entry, MemoEntry):
                raise ValueError("not a memo entry")
        except FileNotFoundError:
            with self._lock:
                self.disk_misses += 1
            return None
        except Exception:
            # corrupt, truncated, version-skewed or hash-colliding entries
            # all degrade to a miss; drop the file so the next store heals it
            with self._lock:
                self.disk_errors += 1
                self.disk_misses += 1
            try:
                os.unlink(target)
            except OSError:
                pass
            return None
        return entry

    def _disk_store(self, key: tuple, entry: MemoEntry) -> None:
        if self.path is None:
            return
        target = self._entry_path(key)
        payload = {"version": _DISK_VERSION, "key": key, "entry": entry}
        try:
            os.makedirs(os.path.dirname(target), exist_ok=True)
            # atomic publish: concurrent writers (forked pipeline workers
            # share the directory) each replace with a complete file, so a
            # reader can never observe a torn entry
            fd, temp_path = tempfile.mkstemp(dir=os.path.dirname(target),
                                             suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(temp_path, target)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except Exception:
            # a read-only or full disk must never break the apply; the
            # memory tier already holds the entry
            with self._lock:
                self.disk_errors += 1
            return
        with self._lock:
            self.disk_stores += 1

    # -- the blob (raw text) tier --------------------------------------------

    def _blob_path(self, text_sha: str) -> str:
        return os.path.join(self.path, "blobs", text_sha[:2],
                            text_sha + ".blob")

    def store_text(self, text: str, text_sha: Optional[str] = None) -> str:
        """Remember raw file text by content hash (memory LRU + on-disk
        blob when a ``path`` is configured); returns the hash.  This is the
        server-side half of memo-aware delta sync: texts a client already
        uploaded — or any process sharing the memo directory has seen —
        can be *recalled* by hash instead of re-uploaded."""
        if text_sha is None:
            text_sha = content_sha1(text)
        with self._lock:
            known = text_sha in self._blobs
            self._blobs[text_sha] = text
            self._blobs.move_to_end(text_sha)
            while len(self._blobs) > self.max_blob_entries:
                self._blobs.popitem(last=False)
            if not known:
                self.blob_stores += 1
        if not known and self.path is not None:
            target = self._blob_path(text_sha)
            try:
                os.makedirs(os.path.dirname(target), exist_ok=True)
                fd, temp_path = tempfile.mkstemp(
                    dir=os.path.dirname(target), suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        # surrogateescape, matching the read side: escaped
                        # bad bytes in file texts round-trip to the same
                        # bytes the client's file held, so the re-hash
                        # check on recall sees the original content hash
                        handle.write(text.encode("utf-8", "surrogateescape"))
                    os.replace(temp_path, target)
                except BaseException:
                    try:
                        os.unlink(temp_path)
                    except OSError:
                        pass
                    raise
            except Exception:
                with self._lock:
                    self.disk_errors += 1
        return text_sha

    def recall_text(self, text_sha: str) -> Optional[str]:
        """The raw text previously stored under ``text_sha``, or ``None``.
        Disk reads are re-hashed before they are trusted — a corrupt blob
        degrades to a miss and is unlinked."""
        with self._lock:
            text = self._blobs.get(text_sha)
            if text is not None:
                self._blobs.move_to_end(text_sha)
                self.blob_hits += 1
                return text
        if self.path is not None:
            target = self._blob_path(text_sha)
            try:
                with open(target, "rb") as handle:
                    text = handle.read().decode("utf-8", "surrogateescape")
                if content_sha1(text) != text_sha:
                    raise ValueError("blob content does not match its hash")
            except FileNotFoundError:
                text = None
            except Exception:
                text = None
                with self._lock:
                    self.disk_errors += 1
                try:
                    os.unlink(target)
                except OSError:
                    pass
            if text is not None:
                with self._lock:
                    self.blob_hits += 1
                    self._blobs[text_sha] = text
                    self._blobs.move_to_end(text_sha)
                    while len(self._blobs) > self.max_blob_entries:
                        self._blobs.popitem(last=False)
                return text
        with self._lock:
            self.blob_misses += 1
        return None

    # -- disk-tier garbage collection ----------------------------------------

    def prune(self, max_bytes: Optional[int] = None,
              max_age: Optional[float] = None) -> dict:
        """Size/age-bound the on-disk tier (entries *and* blobs).

        Files older than ``max_age`` seconds go first; if the directory
        still exceeds ``max_bytes``, the oldest-mtime files go until it
        fits — the disk analogue of the memory tier's LRU, using mtime as
        recency.  Concurrently vanished files are skipped, and the memory
        tiers are untouched (they are bounded separately).  Returns a
        summary: scanned/removed counts and byte totals."""
        summary = {"scanned": 0, "scanned_bytes": 0,
                   "removed": 0, "removed_bytes": 0}
        if self.path is None:
            return summary
        now = time.time()
        survivors: list[tuple[float, int, str]] = []  # (mtime, size, path)
        for dirpath, _dirnames, filenames in os.walk(self.path):
            for filename in filenames:
                if not filename.endswith((".memo", ".blob")):
                    continue  # never touch foreign/temp files
                target = os.path.join(dirpath, filename)
                try:
                    stat = os.stat(target)
                except OSError:
                    continue
                summary["scanned"] += 1
                summary["scanned_bytes"] += stat.st_size
                if max_age is not None and now - stat.st_mtime > max_age:
                    self._prune_unlink(target, stat.st_size, summary)
                else:
                    survivors.append((stat.st_mtime, stat.st_size, target))
        if max_bytes is not None:
            total = sum(size for _mtime, size, _path in survivors)
            survivors.sort()  # oldest mtime first
            index = 0
            while total > max_bytes and index < len(survivors):
                _mtime, size, target = survivors[index]
                index += 1
                if self._prune_unlink(target, size, summary):
                    total -= size
        return summary

    @staticmethod
    def _prune_unlink(target: str, size: int, summary: dict) -> bool:
        try:
            os.unlink(target)
        except OSError:
            return False  # concurrently removed, or unwritable — skip
        summary["removed"] += 1
        summary["removed_bytes"] += size
        return True

    # -- maintenance / observability -----------------------------------------

    def clear(self) -> None:
        """Drop the memory tier and reset counters (the on-disk tier is
        untouched — it is shared state other processes may be using)."""
        with self._lock:
            self._entries.clear()
            self._blobs.clear()
            self.hits = self.misses = self.stores = self.evictions = 0
            self.disk_hits = self.disk_misses = 0
            self.disk_stores = self.disk_errors = 0
            self.blob_hits = self.blob_misses = self.blob_stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> tuple[int, int]:
        """``(hits, misses)`` since construction/clear (the delta pair the
        pipeline folds into its per-run stats)."""
        return self.hits, self.misses

    def counters(self) -> dict:
        """Every counter this memo keeps, as one JSON-able dict — what
        ``--profile`` and the server's ``stats`` verb report."""
        with self._lock:
            return {"entries": len(self._entries),
                    "max_entries": self.max_entries,
                    "path": self.path,
                    "hits": self.hits, "misses": self.misses,
                    "stores": self.stores, "evictions": self.evictions,
                    "disk_hits": self.disk_hits,
                    "disk_misses": self.disk_misses,
                    "disk_stores": self.disk_stores,
                    "disk_errors": self.disk_errors,
                    "blob_entries": len(self._blobs),
                    "blob_hits": self.blob_hits,
                    "blob_misses": self.blob_misses,
                    "blob_stores": self.blob_stores}
