"""The matching engine: SmPL patterns against C/C++ ASTs.

Matching is purely functional: every match function receives a match state
(:class:`MState`: metavariable environment + correspondence list) and returns
the list of extended states under which the pattern matches the code.  The
correspondences — which pattern node matched which code node — are what the
transformation stage later uses to turn ``-`` annotations into byte-accurate
deletions and to anchor ``+`` code.

Correspondence kinds
--------------------
``node``      structural pattern node ↔ code node (fixed tokens align 1:1)
``binding``   metavariable reference ↔ the code node(s) it bound
``dots``      ``...`` ↔ the code nodes it absorbed (possibly none)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..lang import ast_nodes as A
from ..lang.lexer import TokenKind
from ..lang.parser import ParseTree
from ..options import SpatchOptions, DEFAULT_OPTIONS
from ..smpl.ast import PatchRule, KIND_EXPRESSION, KIND_STATEMENTS, KIND_TOPLEVEL
from ..smpl.isomorphisms import (
    IsoConfig, DEFAULT_ISOS, commutative_swap, plus_zero_operand, strip_parens,
    increment_variants,
)
from ..smpl.metavars import MetavarDecl
from .bindings import BoundValue, Env, Position, EMPTY_ENV


# ---------------------------------------------------------------------------
# match state
# ---------------------------------------------------------------------------

class Correspondence:
    """Immutable by convention; a plain slotted class because states are
    created once per partial match step — the matcher's hottest allocation."""

    __slots__ = ("kind", "pattern", "code")

    def __init__(self, kind: str, pattern: A.Node,
                 code: "tuple[A.Node, ...]"):
        self.kind = kind               # "node" | "binding" | "dots"
        self.pattern = pattern
        self.code = code               # one node for node/binding, 0..n for dots/lists

    @property
    def single(self) -> Optional[A.Node]:
        return self.code[0] if self.code else None


class MState:
    __slots__ = ("env", "corr")

    def __init__(self, env: Env, corr: "tuple[Correspondence, ...]" = ()):
        self.env = env
        self.corr = corr

    def bind(self, name: str, value: BoundValue) -> Optional["MState"]:
        env = self.env.bind(name, value)
        if env is None:
            return None
        return MState(env, self.corr)

    def add(self, kind: str, pattern: A.Node, code) -> "MState":
        nodes = tuple(code) if code.__class__ in (list, tuple) else (code,)
        corr = Correspondence.__new__(Correspondence)
        corr.kind = kind
        corr.pattern = pattern
        corr.code = nodes
        state = MState.__new__(MState)
        state.env = self.env
        state.corr = self.corr + (corr,)
        return state


@dataclass
class MatchInstance:
    """One successful match of a rule somewhere in a file."""

    rule: PatchRule
    env: Env
    correspondences: tuple[Correspondence, ...]
    tree: ParseTree

    def signature(self) -> tuple:
        """Used to de-duplicate identical matches found via different paths."""
        spans = tuple(sorted({(c.kind, c.pattern.start, n.start, n.end)
                              for c in self.correspondences for n in c.code}))
        bind_sig = tuple(sorted((k, v.text) for k, v in self.env.items()))
        return spans, bind_sig


# ---------------------------------------------------------------------------
# the matcher
# ---------------------------------------------------------------------------

class Matcher:
    """Matches one rule against one parsed file."""

    def __init__(self, rule: PatchRule, tree: ParseTree,
                 options: SpatchOptions = DEFAULT_OPTIONS,
                 isos: IsoConfig = DEFAULT_ISOS):
        self.rule = rule
        self.tree = tree
        self.options = options
        self.isos = isos if options.apply_isomorphisms else IsoConfig.all_disabled()
        self.mvs = rule.metavars

    # -- helpers ---------------------------------------------------------------

    def _decl(self, name: str) -> Optional[MetavarDecl]:
        return self.mvs.get(name)

    def _code_value(self, kind: str, node: A.Node | Sequence[A.Node]) -> BoundValue:
        if isinstance(node, (list, tuple)):
            if not node:
                return BoundValue(kind=kind, text="", source_text="")
            texts = []
            sources = []
            for n in node:
                texts.append(" ".join(self.tree.node_token_values(n)))
                sources.append(self.tree.node_text(n))
            return BoundValue(kind=kind, text=" ".join(texts),
                              source_text="\n".join(sources) if kind == "statement list"
                              else ", ".join(sources))
        text = " ".join(self.tree.node_token_values(node))
        return BoundValue(kind=kind, text=text, source_text=self.tree.node_text(node))

    def _position_of(self, node: A.Node) -> Position:
        loc = self.tree.node_location(node)
        return Position(filename=self.tree.source.name, line=loc.line, col=loc.col,
                        offset=loc.offset)

    def _bind_positions(self, pat: A.Node, code: A.Node, st: MState) -> Optional[MState]:
        for pos_name in pat.pos_metavars:
            value = BoundValue.for_position(self._position_of(code))
            st = st.bind(pos_name, value)
            if st is None:
                return None
        return st

    # -- entry point ------------------------------------------------------------

    def match_all(self, inherited_env: Env = EMPTY_ENV) -> list[MatchInstance]:
        base = MState(env=inherited_env)
        results: list[MState] = []
        kind = self.rule.pattern_kind
        if kind == KIND_EXPRESSION:
            results = self._match_expression_pattern(base)
        elif kind == KIND_STATEMENTS:
            results = self._match_statement_pattern(base)
        elif kind == KIND_TOPLEVEL:
            results = self._match_toplevel_pattern(base)

        instances = [MatchInstance(rule=self.rule, env=st.env,
                                   correspondences=st.corr, tree=self.tree)
                     for st in results]
        # de-duplicate matches that cover the same code with the same bindings
        seen: set = set()
        unique: list[MatchInstance] = []
        for inst in instances:
            sig = inst.signature()
            if sig in seen:
                continue
            seen.add(sig)
            unique.append(inst)
        return unique

    # -- pattern-kind drivers -----------------------------------------------------

    def _match_expression_pattern(self, base: MState) -> list[MState]:
        pattern = self.rule.pattern_nodes[0]
        out: list[MState] = []
        for expr in A.expressions_of(self.tree.unit):
            out.extend(self.match_expr(pattern, expr, base))
        return out

    def _candidate_sequences(self) -> list[list[A.Node]]:
        seqs: list[list[A.Node]] = [list(self.tree.unit.decls)]
        for block in A.compound_blocks_of(self.tree.unit):
            seqs.append(block.stmts)
        return seqs

    def _match_statement_pattern(self, base: MState) -> list[MState]:
        pats = self.rule.pattern_nodes
        out: list[MState] = []
        for seq in self._candidate_sequences():
            for start in range(len(seq)):
                for st, _end in self.match_seq(pats, seq, start, base, anchored_end=False):
                    out.append(st)
        return out

    def _match_toplevel_pattern(self, base: MState) -> list[MState]:
        pats = self.rule.pattern_nodes
        decls = list(self.tree.unit.decls)
        out: list[MState] = []
        for start in range(len(decls)):
            for st, _end in self.match_seq(pats, decls, start, base, anchored_end=False):
                out.append(st)
        return out

    # -- sequences ----------------------------------------------------------------

    def match_seq(self, pats: Sequence[A.Node], codes: Sequence[A.Node], pos: int,
                  st: MState, anchored_end: bool) -> list[tuple[MState, int]]:
        """Match a pattern element sequence against ``codes`` starting at
        ``pos``.  Returns ``(state, next_position)`` pairs; when
        ``anchored_end`` the whole remaining code sequence must be covered."""
        if not pats:
            if anchored_end and pos != len(codes):
                return []
            return [(st, pos)]

        head, rest = pats[0], pats[1:]

        # '...' and statement-list metavariables absorb a variable number of
        # elements.
        if isinstance(head, (A.DotsStmt, A.MetaStmtList)):
            out: list[tuple[MState, int]] = []
            max_skip = min(len(codes) - pos, self.options.max_dots_statements)
            for skip in range(0, max_skip + 1):
                absorbed = list(codes[pos:pos + skip])
                if isinstance(head, A.MetaStmtList):
                    st2 = st.bind(head.name, self._code_value("statement list", absorbed))
                    if st2 is None:
                        continue
                    st2 = st2.add("binding", head, absorbed)
                else:
                    st2 = st.add("dots", head, absorbed)
                tails = self.match_seq(rest, codes, pos + skip, st2, anchored_end)
                out.extend(tails)
                if tails and not anchored_end and not rest:
                    break
            return out

        if pos >= len(codes):
            return []

        out = []
        for st2 in self.match_stmt(head, codes[pos], st):
            out.extend(self.match_seq(rest, codes, pos + 1, st2, anchored_end))
        return out

    # -- statements -----------------------------------------------------------------

    def match_stmt(self, pat: A.Node, code: A.Node, st: MState) -> list[MState]:
        # disjunction / conjunction wrappers
        if isinstance(pat, A.Disjunction):
            for branch in pat.branches:
                results = self._match_stmt_branch(branch, code, st)
                if results:
                    return results
            return []
        if isinstance(pat, A.Conjunction):
            states = [st]
            for branch in pat.branches:
                new_states: list[MState] = []
                for s in states:
                    new_states.extend(self._match_stmt_branch(branch, code, s))
                states = new_states
                if not states:
                    return []
            return states

        # statement metavariable
        if isinstance(pat, A.MetaStmt):
            decl = self._decl(pat.name)
            value = self._code_value("statement", code)
            st2 = st.bind(pat.name, value)
            if st2 is None:
                return []
            st2 = self._bind_positions(pat, code, st2)
            if st2 is None:
                return []
            return [st2.add("binding", pat, code)]

        if isinstance(pat, A.MetaStmtList):
            st2 = st.bind(pat.name, self._code_value("statement list", [code]))
            return [st2.add("binding", pat, [code])] if st2 is not None else []

        handler = getattr(self, f"_match_stmt_{type(pat).__name__}", None)
        if handler is not None:
            results = handler(pat, code, st)
        else:
            results = self._match_generic(pat, code, st)
        out: list[MState] = []
        for s in results:
            s2 = self._bind_positions(pat, code, s)
            if s2 is not None:
                out.append(s2)
        return out

    def _match_stmt_branch(self, branch: A.Node, code: A.Node, st: MState) -> list[MState]:
        """A branch of a statement-level disjunction/conjunction.  A bare
        expression branch (no semicolon) is a *containment* constraint: the
        expression must occur somewhere inside the statement; every occurrence
        is recorded so the transformation applies to each of them."""
        if isinstance(branch, (A.Disjunction, A.Conjunction)):
            return self.match_stmt(branch, code, st)
        if isinstance(branch, A.ExprStmt) and not branch.has_semicolon:
            return self._match_containment(branch.expr, code, st)
        return self.match_stmt(branch, code, st)

    def _match_containment(self, pat_expr: A.Node, code_stmt: A.Node,
                           st: MState) -> list[MState]:
        """Match ``pat_expr`` against every subexpression of ``code_stmt``;
        succeed if at least one occurrence matches, threading the environment
        through all matching occurrences."""
        current = st
        matched_any = False
        for sub in A.expressions_of(code_stmt):
            results = self.match_expr(pat_expr, sub, current)
            if results:
                current = results[0]
                matched_any = True
        return [current] if matched_any else []

    # individual statement kinds ---------------------------------------------------

    def _match_stmt_ExprStmt(self, pat: A.ExprStmt, code: A.Node, st: MState) -> list[MState]:
        if not isinstance(code, A.ExprStmt):
            return []
        out = []
        for s in self.match_expr(pat.expr, code.expr, st):
            out.append(s.add("node", pat, code))
        return out

    def _match_stmt_DeclStmt(self, pat: A.DeclStmt, code: A.Node, st: MState) -> list[MState]:
        # file-scope declarations are bare Declaration nodes; statement-level
        # ones are wrapped in DeclStmt — the pattern matches both
        if isinstance(code, A.Declaration):
            return [s.add("node", pat, code)
                    for s in self.match_declaration(pat.decl, code, st)]
        if not isinstance(code, A.DeclStmt):
            return []
        out = []
        for s in self.match_declaration(pat.decl, code.decl, st):
            out.append(s.add("node", pat, code))
        return out

    def _match_stmt_CompoundStmt(self, pat: A.CompoundStmt, code: A.Node,
                                 st: MState) -> list[MState]:
        if not isinstance(code, A.CompoundStmt):
            return []
        out = []
        for s, _pos in self.match_seq(pat.stmts, code.stmts, 0, st, anchored_end=True):
            out.append(s.add("node", pat, code))
        return out

    def _match_stmt_IfStmt(self, pat: A.IfStmt, code: A.Node, st: MState) -> list[MState]:
        if not isinstance(code, A.IfStmt):
            return []
        out: list[MState] = []
        for s1 in self.match_expr(pat.cond, code.cond, st):
            for s2 in self.match_stmt(pat.then, code.then, s1):
                if pat.orelse is None and code.orelse is None:
                    out.append(s2.add("node", pat, code))
                elif pat.orelse is not None and code.orelse is not None:
                    for s3 in self.match_stmt(pat.orelse, code.orelse, s2):
                        out.append(s3.add("node", pat, code))
        return out

    def _match_stmt_ForStmt(self, pat: A.ForStmt, code: A.Node, st: MState) -> list[MState]:
        if not isinstance(code, A.ForStmt):
            return []
        states = [st]
        states = self._match_for_part(pat.init, code.init, states, self.match_for_init)
        states = self._match_for_part(pat.cond, code.cond, states, self.match_expr)
        states = self._match_for_part(pat.step, code.step, states, self.match_expr)
        out: list[MState] = []
        for s in states:
            if pat.body is None and code.body is None:
                out.append(s.add("node", pat, code))
            elif pat.body is not None and code.body is not None:
                for s2 in self.match_stmt(pat.body, code.body, s):
                    out.append(s2.add("node", pat, code))
        return out

    def _match_for_part(self, pat_part, code_part, states: list[MState],
                        matcher) -> list[MState]:
        out: list[MState] = []
        for s in states:
            if isinstance(pat_part, A.DotsExpr):
                absorbed = [code_part] if code_part is not None else []
                out.append(s.add("dots", pat_part, absorbed))
            elif pat_part is None:
                if code_part is None:
                    out.append(s)
            else:
                if code_part is not None:
                    out.extend(matcher(pat_part, code_part, s))
        return out

    def match_for_init(self, pat: A.Node, code: A.Node, st: MState) -> list[MState]:
        if isinstance(pat, A.DeclStmt) and isinstance(code, A.DeclStmt):
            return [s.add("node", pat, code)
                    for s in self.match_declaration(pat.decl, code.decl, st)]
        if isinstance(pat, A.ExprStmt) and isinstance(code, A.ExprStmt):
            return [s.add("node", pat, code)
                    for s in self.match_expr(pat.expr, code.expr, st)]
        return []

    def _match_stmt_RangeForStmt(self, pat: A.RangeForStmt, code: A.Node,
                                 st: MState) -> list[MState]:
        if not isinstance(code, A.RangeForStmt):
            return []
        states = self.match_type(pat.type, code.type, st)
        out: list[MState] = []
        for s in states:
            if pat.reference != code.reference:
                continue
            s2 = self._match_name(pat.var, code.var, s)
            if s2 is None:
                continue
            for s3 in self.match_expr(pat.iterable, code.iterable, s2):
                if pat.body is None:
                    out.append(s3.add("node", pat, code))
                elif code.body is not None:
                    for s4 in self.match_stmt(pat.body, code.body, s3):
                        out.append(s4.add("node", pat, code))
        return out

    def _match_stmt_WhileStmt(self, pat: A.WhileStmt, code: A.Node, st: MState) -> list[MState]:
        if not isinstance(code, A.WhileStmt):
            return []
        out = []
        for s in self.match_expr(pat.cond, code.cond, st):
            for s2 in self.match_stmt(pat.body, code.body, s):
                out.append(s2.add("node", pat, code))
        return out

    def _match_stmt_DoWhileStmt(self, pat: A.DoWhileStmt, code: A.Node,
                                st: MState) -> list[MState]:
        if not isinstance(code, A.DoWhileStmt):
            return []
        out = []
        for s in self.match_stmt(pat.body, code.body, st):
            for s2 in self.match_expr(pat.cond, code.cond, s):
                out.append(s2.add("node", pat, code))
        return out

    def _match_stmt_ReturnStmt(self, pat: A.ReturnStmt, code: A.Node, st: MState) -> list[MState]:
        if not isinstance(code, A.ReturnStmt):
            return []
        if pat.value is None:
            return [st.add("node", pat, code)] if code.value is None else []
        if code.value is None:
            return []
        return [s.add("node", pat, code) for s in self.match_expr(pat.value, code.value, st)]

    def _match_stmt_BreakStmt(self, pat, code, st: MState) -> list[MState]:
        return [st.add("node", pat, code)] if isinstance(code, A.BreakStmt) else []

    def _match_stmt_ContinueStmt(self, pat, code, st: MState) -> list[MState]:
        return [st.add("node", pat, code)] if isinstance(code, A.ContinueStmt) else []

    def _match_stmt_EmptyStmt(self, pat, code, st: MState) -> list[MState]:
        return [st.add("node", pat, code)] if isinstance(code, A.EmptyStmt) else []

    def _match_stmt_PragmaDirective(self, pat: A.PragmaDirective, code: A.Node,
                                    st: MState) -> list[MState]:
        if not isinstance(code, A.PragmaDirective):
            return []
        result = self._match_pragma_text(pat.text, code.text, st)
        if result is None:
            return []
        return [result.add("node", pat, code)]

    def _match_pragma_text(self, pat_text: str, code_text: str, st: MState) -> Optional[MState]:
        pat_words = pat_text.split()
        code_words = code_text.split()
        i = 0
        for i, word in enumerate(pat_words):
            if word == "...":
                return st  # the rest of the pragma is arbitrary
            decl = self._decl(word)
            if decl is not None and decl.kind == "pragmainfo":
                rest = " ".join(code_words[i:])
                return st.bind(word, BoundValue(kind="pragmainfo", text=rest,
                                                source_text=rest))
            if i >= len(code_words) or code_words[i] != word:
                return None
        # pattern exhausted: require the code to be exhausted too
        return st if len(code_words) == len(pat_words) else None

    def _match_stmt_IncludeDirective(self, pat: A.IncludeDirective, code: A.Node,
                                     st: MState) -> list[MState]:
        if not isinstance(code, A.IncludeDirective):
            return []
        if pat.target == code.target and pat.system == code.system:
            return [st.add("node", pat, code)]
        return []

    def _match_stmt_FunctionDef(self, pat: A.FunctionDef, code: A.Node,
                                st: MState) -> list[MState]:
        return self.match_function(pat, code, st)

    def _match_stmt_Declaration(self, pat: A.Declaration, code: A.Node,
                                st: MState) -> list[MState]:
        if isinstance(code, A.Declaration):
            return self.match_declaration(pat, code, st)
        if isinstance(code, A.DeclStmt):
            return [s.add("node", pat, code)
                    for s in self.match_declaration(pat, code.decl, st)]
        return []

    # -- declarations / functions ------------------------------------------------------

    def match_declaration(self, pat: A.Declaration, code: A.Declaration,
                          st: MState) -> list[MState]:
        if pat is None or code is None:
            return []
        # specifiers mentioned in the pattern (extern, static, ...) must be
        # present on the code declaration; extra code specifiers are allowed
        if not set(pat.specifiers) <= set(code.specifiers):
            return []
        states = self.match_type(pat.type, code.type, st)
        if not states:
            return []
        if len(pat.declarators) != len(code.declarators):
            return []
        for pd, cd in zip(pat.declarators, code.declarators):
            new_states: list[MState] = []
            for s in states:
                new_states.extend(self.match_declarator(pd, cd, s))
            states = new_states
            if not states:
                return []
        return [s.add("node", pat, code) for s in states]

    def match_declarator(self, pat: A.Declarator, code: A.Declarator,
                         st: MState) -> list[MState]:
        if pat.pointer != code.pointer or pat.reference != code.reference:
            return []
        s = self._match_name(pat.name, code.name, st)
        if s is None:
            return []
        if len(pat.arrays) != len(code.arrays):
            return []
        states = [s]
        for pa, ca in zip(pat.arrays, code.arrays):
            new_states = []
            for s2 in states:
                if pa is None and ca is None:
                    new_states.append(s2)
                elif pa is not None and ca is not None:
                    new_states.extend(self.match_expr(pa, ca, s2))
            states = new_states
        out: list[MState] = []
        for s2 in states:
            if pat.init is None and code.init is None:
                out.append(s2.add("node", pat, code))
            elif pat.init is not None and code.init is not None:
                for s3 in self.match_expr(pat.init, code.init, s2):
                    out.append(s3.add("node", pat, code))
        return out

    def match_type(self, pat: Optional[A.TypeName], code: Optional[A.TypeName],
                   st: MState) -> list[MState]:
        if pat is None or code is None:
            return [st] if pat is code else []
        if pat.is_single_identifier:
            name = pat.parts[0]
            decl = self._decl(name)
            if decl is not None and decl.kind == "type":
                value = BoundValue(kind="type", text=code.text,
                                   source_text=self.tree.node_text(code) or code.text)
                st2 = st.bind(name, value)
                return [st2.add("binding", pat, code)] if st2 is not None else []
        if pat.text == code.text:
            return [st.add("node", pat, code)]
        return []

    def match_function(self, pat: A.FunctionDef, code: A.Node, st: MState) -> list[MState]:
        if not isinstance(code, A.FunctionDef):
            return []
        # attributes: every pattern attribute must match a code attribute, in
        # order; extra code attributes are allowed only if the pattern has none
        states = [st]
        if pat.attributes:
            if len(code.attributes) < len(pat.attributes):
                return []
            code_attrs = code.attributes
            for idx, pattr in enumerate(pat.attributes):
                new_states = []
                for s in states:
                    if idx < len(code_attrs):
                        new_states.extend(self.match_attribute(pattr, code_attrs[idx], s))
                states = new_states
                if not states:
                    return []
        # return type
        new_states = []
        for s in states:
            new_states.extend(self.match_type(pat.return_type, code.return_type, s))
        states = new_states
        if not states or pat.pointer != code.pointer:
            return []
        # name
        new_states = []
        for s in states:
            s2 = self._match_name(pat.name, code.name, s, allow_function=True)
            if s2 is not None:
                new_states.append(s2)
        states = new_states
        if not states:
            return []
        # parameters
        new_states = []
        for s in states:
            new_states.extend(self.match_param_list(pat.params, code.params, s))
        states = new_states
        if not states:
            return []
        # body
        out: list[MState] = []
        for s in states:
            if pat.body is None:
                out.append(s.add("node", pat, code))
            elif code.body is None:
                continue
            else:
                for s2 in self.match_stmt(pat.body, code.body, s):
                    out.append(s2.add("node", pat, code))
        return out

    def match_attribute(self, pat: A.AttributeSpec, code: A.AttributeSpec,
                        st: MState) -> list[MState]:
        s = self._match_name(pat.name, code.name, st)
        if s is None:
            return []
        if not pat.has_args and not code.has_args:
            return [s.add("node", pat, code)]
        if pat.has_args != code.has_args:
            return []
        out = []
        for s2, _pos in self.match_expr_list(pat.args, code.args, 0, s):
            out.append(s2.add("node", pat, code))
        return out

    def match_param_list(self, pat: Optional[A.ParamList], code: Optional[A.ParamList],
                         st: MState) -> list[MState]:
        if pat is None or code is None:
            return [st] if pat is code else []
        pats = pat.params
        codes = code.params
        # a single 'parameter list' metavariable or '...' absorbs everything
        if len(pats) == 1 and isinstance(pats[0], A.MetaParamList):
            value = self._code_value("parameter list", codes)
            st2 = st.bind(pats[0].name, value)
            if st2 is None:
                return []
            return [st2.add("binding", pats[0], codes).add("node", pat, code)]
        if len(pats) == 1 and isinstance(pats[0], A.DotsParam):
            return [st.add("dots", pats[0], codes).add("node", pat, code)]
        if len(pats) != len(codes):
            return []
        states = [st]
        for pp, cp in zip(pats, codes):
            new_states: list[MState] = []
            for s in states:
                new_states.extend(self.match_param(pp, cp, s))
            states = new_states
            if not states:
                return []
        return [s.add("node", pat, code) for s in states]

    def match_param(self, pat: A.Node, code: A.Node, st: MState) -> list[MState]:
        if isinstance(pat, A.DotsParam):
            return [st.add("dots", pat, [code])]
        if not isinstance(pat, A.Param) or not isinstance(code, A.Param):
            return []
        states = self.match_type(pat.type, code.type, st)
        out: list[MState] = []
        for s in states:
            if pat.pointer != code.pointer or pat.reference != code.reference:
                continue
            if pat.name:
                s2 = self._match_name(pat.name, code.name, s)
                if s2 is None:
                    continue
            else:
                s2 = s
            out.append(s2.add("node", pat, code))
        return out

    # -- names -------------------------------------------------------------------------

    def _match_name(self, pat_name: str, code_name: str, st: MState,
                    allow_function: bool = False) -> Optional[MState]:
        """Match an identifier that appears as a plain string field (function
        names, declarator names, parameter names, member names)."""
        if not pat_name:
            return st if not code_name else st
        decl = self._decl(pat_name)
        if decl is not None and decl.kind in ("identifier", "function", "declarer",
                                              "iterator", "attribute name"):
            if not decl.check_name_constraint(code_name):
                return None
            return st.bind(pat_name, BoundValue.for_name(decl.kind, code_name))
        if decl is not None and decl.kind == "symbol":
            return st if pat_name == code_name else None
        # inherited names arrive pre-seeded in the environment
        bound = st.env.get(pat_name)
        if bound is not None and decl is None:
            return st if bound.text == code_name else None
        return st if pat_name == code_name else None

    # -- expressions -------------------------------------------------------------------

    def match_expr(self, pat: A.Node, code: A.Node, st: MState) -> list[MState]:
        if pat is None or code is None:
            return [st] if pat is code else []

        # transparent parentheses on the code side
        stripped = strip_parens(code, self.isos)
        if stripped is not code and not isinstance(pat, A.Paren):
            code = stripped

        results = self._match_expr_dispatch(pat, code, st)

        # isomorphism: pattern 'E + 0' also matches plain 'E'
        if not results:
            pat_base = plus_zero_operand(pat, self.isos)
            if pat_base is not None:
                inner = self._match_expr_dispatch(pat_base, code, st)
                results = [s.add("binding", pat, code) for s in inner]

        out: list[MState] = []
        for s in results:
            s2 = self._bind_positions(pat, code, s)
            if s2 is not None:
                out.append(s2)
        return out

    def _match_expr_dispatch(self, pat: A.Node, code: A.Node, st: MState) -> list[MState]:
        if isinstance(pat, A.DotsExpr):
            return [st.add("dots", pat, [code])]

        if isinstance(pat, A.Disjunction):
            for branch in pat.branches:
                results = self.match_expr(branch, code, st)
                if results:
                    return results
            return []

        if isinstance(pat, A.Conjunction):
            states = [st]
            for branch in pat.branches:
                states = [s2 for s in states for s2 in self.match_expr(branch, code, s)]
                if not states:
                    return []
            return states

        if isinstance(pat, A.Ident):
            return self._match_ident(pat, code, st)

        if isinstance(pat, A.Literal):
            if isinstance(code, A.Literal) and pat.value == code.value:
                return [st.add("node", pat, code)]
            return []

        if isinstance(pat, A.Paren):
            inner_code = code.expr if isinstance(code, A.Paren) else code
            return [s.add("node", pat, code) if isinstance(code, A.Paren) else s
                    for s in self.match_expr(pat.expr, inner_code, st)]

        if isinstance(pat, A.BinaryOp):
            return self._match_binary(pat, code, st)

        if isinstance(pat, A.UnaryOp):
            out: list[MState] = []
            if isinstance(code, A.UnaryOp) and pat.op == code.op and pat.prefix == code.prefix:
                out = [s.add("node", pat, code)
                       for s in self.match_expr(pat.operand, code.operand, st)]
            if not out and self.isos.increment_forms:
                for alt in increment_variants(code, self.isos):
                    inner = self._match_expr_dispatch(pat, alt, st)
                    out = [s.add("binding", pat, code) for s in inner]
                    if out:
                        break
            return out

        if isinstance(pat, A.Assignment):
            if isinstance(code, A.Assignment) and pat.op == code.op:
                out = []
                for s in self.match_expr(pat.target, code.target, st):
                    for s2 in self.match_expr(pat.value, code.value, s):
                        out.append(s2.add("node", pat, code))
                return out
            if self.isos.increment_forms:
                for alt in increment_variants(code, self.isos):
                    if isinstance(alt, A.Assignment):
                        inner = self._match_expr_dispatch(pat, alt, st)
                        if inner:
                            return [s.add("binding", pat, code) for s in inner]
            return []

        if isinstance(pat, A.Ternary):
            if not isinstance(code, A.Ternary):
                return []
            out = []
            for s in self.match_expr(pat.cond, code.cond, st):
                for s2 in self.match_expr(pat.then, code.then, s):
                    for s3 in self.match_expr(pat.orelse, code.orelse, s2):
                        out.append(s3.add("node", pat, code))
            return out

        if isinstance(pat, A.Call):
            if not isinstance(code, A.Call):
                return []
            out = []
            for s in self.match_expr(pat.func, code.func, st):
                for s2, _pos in self.match_expr_list(pat.args, code.args, 0, s):
                    out.append(s2.add("node", pat, code))
            return out

        if isinstance(pat, A.KernelLaunch):
            if not isinstance(code, A.KernelLaunch):
                return []
            out = []
            for s in self.match_expr(pat.func, code.func, st):
                for s2, _p in self.match_expr_list(pat.config, code.config, 0, s):
                    for s3, _p2 in self.match_expr_list(pat.args, code.args, 0, s2):
                        out.append(s3.add("node", pat, code))
            return out

        if isinstance(pat, A.Subscript):
            if not isinstance(code, A.Subscript):
                return []
            out = []
            for s in self.match_expr(pat.base, code.base, st):
                for s2, _pos in self.match_expr_list(pat.indices, code.indices, 0, s):
                    out.append(s2.add("node", pat, code))
            return out

        if isinstance(pat, A.Member):
            if not isinstance(code, A.Member) or pat.op != code.op:
                return []
            out = []
            for s in self.match_expr(pat.base, code.base, st):
                s2 = self._match_name(pat.name, code.name, s)
                if s2 is not None:
                    out.append(s2.add("node", pat, code))
            return out

        if isinstance(pat, A.Cast):
            if not isinstance(code, A.Cast):
                return []
            out = []
            for s in self.match_type(pat.type, code.type, st):
                for s2 in self.match_expr(pat.expr, code.expr, s):
                    out.append(s2.add("node", pat, code))
            return out

        if isinstance(pat, A.InitList):
            if not isinstance(code, A.InitList) or len(pat.items) != len(code.items):
                return []
            states = [st]
            for pi, ci in zip(pat.items, code.items):
                states = [s2 for s in states for s2 in self.match_expr(pi, ci, s)]
            return [s.add("node", pat, code) for s in states]

        if isinstance(pat, A.CommaExpr):
            if not isinstance(code, A.CommaExpr) or len(pat.items) != len(code.items):
                return []
            states = [st]
            for pi, ci in zip(pat.items, code.items):
                states = [s2 for s in states for s2 in self.match_expr(pi, ci, s)]
            return [s.add("node", pat, code) for s in states]

        if isinstance(pat, A.SizeofExpr):
            if not isinstance(code, A.SizeofExpr):
                return []
            if isinstance(pat.arg, A.TypeName) and isinstance(code.arg, A.TypeName):
                return [s.add("node", pat, code)
                        for s in self.match_type(pat.arg, code.arg, st)]
            if isinstance(pat.arg, A.TypeName) or isinstance(code.arg, A.TypeName):
                return []
            return [s.add("node", pat, code)
                    for s in self.match_expr(pat.arg, code.arg, st)]

        if isinstance(pat, A.MetaExprList):
            value = self._code_value("expression list", [code])
            st2 = st.bind(pat.name, value)
            return [st2.add("binding", pat, [code])] if st2 is not None else []

        return self._match_generic(pat, code, st)

    def _match_ident(self, pat: A.Ident, code: A.Node, st: MState) -> list[MState]:
        decl = self._decl(pat.name)
        if decl is None or decl.kind == "symbol":
            # an undeclared / symbol identifier matches only itself; an
            # inherited binding seeded in the environment also constrains it
            bound = st.env.get(pat.name) if decl is None else None
            if isinstance(code, A.Ident):
                target = bound.text if bound is not None else pat.name
                if code.name == target:
                    return [st.add("node", pat, code)]
            return []

        kind = decl.kind
        if kind in ("identifier", "function", "declarer", "iterator"):
            if not isinstance(code, A.Ident):
                return []
            if not decl.check_name_constraint(code.name):
                return []
            st2 = st.bind(pat.name, BoundValue.for_name(kind, code.name))
            return [st2.add("binding", pat, code)] if st2 is not None else []

        if kind == "constant":
            if not isinstance(code, A.Literal):
                return []
            if not decl.check_constant_constraint(code.value):
                return []
            st2 = st.bind(pat.name, BoundValue(kind="constant", text=code.value,
                                               source_text=code.value))
            return [st2.add("binding", pat, code)] if st2 is not None else []

        if kind in ("expression", "idexpression", "local idexpression"):
            value = self._code_value("expression", code)
            st2 = st.bind(pat.name, value)
            return [st2.add("binding", pat, code)] if st2 is not None else []

        if kind == "expression list":
            value = self._code_value("expression list", [code])
            st2 = st.bind(pat.name, value)
            return [st2.add("binding", pat, [code])] if st2 is not None else []

        if kind == "type":
            if isinstance(code, A.Ident):
                st2 = st.bind(pat.name, BoundValue(kind="type", text=code.name,
                                                   source_text=code.name))
                return [st2.add("binding", pat, code)] if st2 is not None else []
            return []

        return []

    def _match_binary(self, pat: A.BinaryOp, code: A.Node, st: MState) -> list[MState]:
        candidates: list[A.Node] = []
        if isinstance(code, A.BinaryOp) and code.op == pat.op:
            candidates.append(code)
            swapped = commutative_swap(code, self.isos)
            if swapped is not None:
                candidates.append(swapped)
        out: list[MState] = []
        for cand in candidates:
            for s in self.match_expr(pat.left, cand.left, st):
                for s2 in self.match_expr(pat.right, cand.right, s):
                    out.append(s2.add("node", pat, code))
            if out:
                break
        return out

    def match_expr_list(self, pats: Sequence[A.Node], codes: Sequence[A.Node], pos: int,
                        st: MState) -> list[tuple[MState, int]]:
        """Argument-list matching with dots and ``expression list``
        metavariables; must consume the whole code list."""
        if not pats:
            return [(st, pos)] if pos == len(codes) else []
        head, rest = pats[0], pats[1:]
        out: list[tuple[MState, int]] = []
        if isinstance(head, (A.DotsExpr, A.MetaExprList)) :
            for skip in range(0, len(codes) - pos + 1):
                absorbed = list(codes[pos:pos + skip])
                if isinstance(head, A.MetaExprList):
                    st2 = st.bind(head.name, self._code_value("expression list", absorbed))
                    if st2 is None:
                        continue
                    st2 = st2.add("binding", head, absorbed)
                else:
                    st2 = st.add("dots", head, absorbed)
                out.extend(self.match_expr_list(rest, codes, pos + skip, st2))
            return out
        if pos >= len(codes):
            return []
        for s in self.match_expr(head, codes[pos], st):
            out.extend(self.match_expr_list(rest, codes, pos + 1, s))
        return out

    # -- generic structural fallback ------------------------------------------------------

    def _match_generic(self, pat: A.Node, code: A.Node, st: MState) -> list[MState]:
        """Field-by-field structural matching for node kinds without a
        dedicated handler."""
        if type(pat) is not type(code):
            return []
        states = [st]
        for (fname, pval), (_f2, cval) in zip(A.child_fields(pat), A.child_fields(code)):
            if isinstance(pval, A.Node) or isinstance(cval, A.Node):
                if not (isinstance(pval, A.Node) and isinstance(cval, A.Node)):
                    return []
                new_states = []
                for s in states:
                    if isinstance(pval, (A.Stmt,)):
                        new_states.extend(self.match_stmt(pval, cval, s))
                    else:
                        new_states.extend(self.match_expr(pval, cval, s))
                states = new_states
            elif isinstance(pval, (list, tuple)) and pval and isinstance(pval[0], A.Node):
                if not isinstance(cval, (list, tuple)) or len(pval) != len(cval):
                    return []
                for p_item, c_item in zip(pval, cval):
                    new_states = []
                    for s in states:
                        if isinstance(p_item, A.Stmt):
                            new_states.extend(self.match_stmt(p_item, c_item, s))
                        else:
                            new_states.extend(self.match_expr(p_item, c_item, s))
                    states = new_states
            else:
                if pval != cval:
                    return []
            if not states:
                return []
        return [s.add("node", pat, code) for s in states]
