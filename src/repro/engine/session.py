"""Per-file rule application: the :class:`FileSession` layer.

A session owns everything that is *per file* while a semantic patch runs:
the current text, the parse tree (re-parsed after every rule that edited the
file, so later rules see the already-transformed program), the set of rules
that applied, the exported environment chains and the accumulated reports
and diagnostics.  The :class:`~repro.engine.engine.Engine` and the
:class:`~repro.engine.driver.Driver` both create one session per file; the
driver additionally passes ``allowed_rules`` computed by the prefilter so
that rules which cannot possibly match this file are skipped without even
parsing it.

Metavariable bindings are threaded between rules as *environment chains*:
every match (or script execution) extends the environment it inherited, and
a later rule that inherits ``other.mv`` is attempted once per exported
environment of the latest rule in its inheritance chain.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..errors import Diagnostic
from ..lang.parser import ParseTree, parse_source
from ..obs import registry as _obs
from ..options import SpatchOptions
from ..smpl.ast import PatchRule, ScriptRule, SemanticPatchAST
from .bindings import Env, EMPTY_ENV
from .cache import TreeCache
from .edits import EditSet
from .matcher import Matcher, MatchInstance
from .report import FileResult, RuleReport
from .scripting import ScriptRunner
from .transform import FreshNameRegistry, Transformer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .compile import CompiledPatch


class FileSession:
    """Applies the rule sequence of one semantic patch to one file."""

    def __init__(self, patch: SemanticPatchAST, options: SpatchOptions,
                 runner: ScriptRunner, filename: str, text: str,
                 allowed_rules: Optional[frozenset[str]] = None,
                 tree_cache: Optional[TreeCache] = None,
                 compiled: "Optional[CompiledPatch]" = None):
        self.patch = patch
        self.options = options
        self.runner = runner
        self.filename = filename
        self.original_text = text
        self.text = text
        self.tree: Optional[ParseTree] = None
        self.applied_rules: set[str] = set()
        self.exported: dict[str, list[Env]] = {}
        self.reports: list[RuleReport] = []
        self.diagnostics: list[Diagnostic] = []
        #: patch rules the prefilter proved *could* match this file; ``None``
        #: disables gating.  Gating a rule is observably identical to the rule
        #: matching nothing (no report, no export, no applied-rule entry).
        self.allowed_rules = allowed_rules
        self.tree_cache = tree_cache
        #: compiled matchers for this patch (None → interpreted reference)
        self.compiled = compiled
        #: a textual (frontend) rule hit an unsafe condition — stale hash,
        #: ambiguous snippet, scoped snippet missing.  The whole file rolls
        #: back: machine patches are all-or-nothing per file, so --in-place
        #: can never leave a half-applied file behind.
        self._textual_failed = False

    # -- public API -----------------------------------------------------------

    def run(self) -> FileResult:
        """Apply every rule of the patch, in order, to this file."""
        for rule in self.patch.rules:
            if isinstance(rule, ScriptRule):
                self._apply_script_rule(rule)
            elif getattr(rule, "is_textual", False):
                self._apply_textual_rule(rule)
            else:
                self._apply_patch_rule(rule)
        if self._textual_failed:
            textual = {rule.name for rule in self.patch.rules
                       if getattr(rule, "is_textual", False)}
            self.text = self.original_text
            self.reports = [r for r in self.reports if r.rule not in textual]
            self.applied_rules -= textual
        return FileResult(filename=self.filename, original_text=self.original_text,
                          text=self.text, rule_reports=self.reports,
                          diagnostics=self.diagnostics)

    # -- environment chains ---------------------------------------------------

    @staticmethod
    def _source_rules_of(rule) -> list[str]:
        if isinstance(rule, ScriptRule):
            return [src for _local, src, _name in rule.imports]
        return [d.source_rule for d in rule.metavars.inherited() if d.source_rule]

    def _base_environments(self, rule) -> list[Env]:
        """Environments a rule is attempted under: the exports of the latest
        rule in its inheritance chain, or a single empty environment when it
        inherits nothing.

        Rules this one ``depends on`` also count as chain candidates when they
        exported environments: a script rule that filtered the environments of
        an earlier matching rule (``cocci.include_match(False)``) then
        correctly restricts the rules downstream of it.
        """
        sources = self._source_rules_of(rule)
        dep_candidates = [d for d in rule.dependencies.required if d in self.exported]
        if not sources and not dep_candidates:
            return [EMPTY_ENV]
        order = {name: idx for idx, name in enumerate(self.patch.rule_names)}
        available = [s for s in sources if s in self.exported]
        if set(sources) - set(available):
            return []
        candidates = set(available) | set(dep_candidates)
        if not candidates:
            return [EMPTY_ENV]
        latest = max(candidates, key=lambda s: order.get(s, -1))
        return self.exported[latest]

    # -- script rules ---------------------------------------------------------

    def _apply_script_rule(self, rule: ScriptRule) -> None:
        if rule.when in ("initialize", "finalize"):
            return
        if not rule.dependencies.is_satisfied(self.applied_rules):
            return
        base_envs = self._base_environments(rule)
        if not base_envs:
            return
        outcome = self.runner.run_script(rule, base_envs)
        self.diagnostics.extend(outcome.diagnostics)
        if outcome.environments:
            self.applied_rules.add(rule.name)
            self.exported[rule.name] = outcome.environments

    # -- textual (frontend) rules ---------------------------------------------

    def _apply_textual_rule(self, rule) -> None:
        """One machine-patch operation (see :mod:`repro.frontends.core`):
        applied straight to the file text, no parse tree involved.  A failed
        operation (never a mere no-match) poisons the session — remaining
        textual rules are skipped and :meth:`run` reverts the file."""
        if self._textual_failed:
            return
        if self.allowed_rules is not None and rule.name not in self.allowed_rules:
            return
        if not rule.dependencies.is_satisfied(self.applied_rules):
            return
        outcome = rule.apply_to_text(self.text, self.filename)
        self.diagnostics.extend(outcome.diagnostics)
        if outcome.failed:
            self._textual_failed = True
            return
        if not outcome.matches:
            return
        self.applied_rules.add(rule.name)
        self.reports.append(RuleReport(rule=rule.name, matches=outcome.matches,
                                       deletions=outcome.deletions,
                                       insertions=outcome.insertions))
        if outcome.new_text != self.text:
            self.text = outcome.new_text
            self.tree = None  # force a re-parse for any later SmPL rule

    # -- patch rules ----------------------------------------------------------

    def _current_tree(self) -> ParseTree:
        if self.tree is None:
            if self.tree_cache is not None:
                self.tree = self.tree_cache.get_or_parse(
                    self.text, self.filename, self.options)
            else:
                self.tree = parse_source(self.text, name=self.filename,
                                         options=self.options, tolerant=True)
        return self.tree

    def _apply_patch_rule(self, rule: PatchRule) -> None:
        if self.allowed_rules is not None and rule.name not in self.allowed_rules:
            return
        if not rule.dependencies.is_satisfied(self.applied_rules):
            return
        base_envs = self._base_environments(rule)
        if not base_envs:
            return

        tree = self._current_tree()
        inherited = {d.name: (d.source_rule, d.source_name)
                     for d in rule.metavars.inherited()}

        # the compiled patch may come from the global fingerprint-keyed cache
        # and therefore hold a *twin* of this rule (an identical AST parsed
        # from the same source); everything downstream of matching — the
        # transformer and the exported-metavar names — must consistently use
        # the twin the match instances reference
        crule = self.compiled.rule_for(rule) if self.compiled is not None else None
        mrule = crule.rule if crule is not None else rule

        instances: list[MatchInstance] = []
        seen_signatures: set = set()
        with _obs.phase("match"):
            for base_env in base_envs:
                seeded = base_env.locals_from_inherited(inherited)
                if seeded is None:
                    continue
                if crule is not None:
                    found = crule.match_all(tree, seeded)
                else:
                    found = Matcher(rule, tree,
                                    options=self.options).match_all(seeded)
                for inst in found:
                    sig = inst.signature()
                    if sig in seen_signatures:
                        continue
                    seen_signatures.add(sig)
                    instances.append(inst)

        if not instances:
            return

        self.applied_rules.add(rule.name)

        edit_set = EditSet(source=tree.source)
        transformer = Transformer(mrule, tree, options=self.options,
                                  fresh_registry=FreshNameRegistry.for_tree(tree))
        exported_envs: list[Env] = []
        local_names = mrule.exported_metavars
        with _obs.phase("transform"):
            for inst in instances:
                fresh = transformer.apply_instance(inst, edit_set)
                env = inst.env
                for name, value in fresh.items():
                    bound = env.bind(name, value)
                    if bound is not None:
                        env = bound
                exported_envs.append(env.exported(rule.name, local_names))
        self.diagnostics.extend(transformer.diagnostics)
        self.exported[rule.name] = exported_envs

        summary = edit_set.summary()
        self.reports.append(RuleReport(rule=rule.name, matches=len(instances),
                                       deletions=summary["deletions"],
                                       insertions=summary["insertions"]))

        if not edit_set.is_empty:
            self.text = edit_set.apply()
            self.tree = None  # force a re-parse for the next rule
        if self.options.verbose:
            self.diagnostics.append(Diagnostic(
                severity="info",
                message=(f"rule {rule.name}: {len(instances)} match(es), "
                         f"{summary['deletions']} deletion(s), "
                         f"{summary['insertions']} insertion(s)"),
                filename=self.filename))
