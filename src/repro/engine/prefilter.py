"""Prefilter: decide *where a rule could possibly match* without parsing.

Real Coccinelle only scales to whole-code-base application because it is
backed by a glimpse/grep-style pre-index: a file whose token stream cannot
contain a rule's fixed tokens is never parsed.  This module reproduces that
layer.

For every :class:`~repro.smpl.ast.PatchRule` we extract its **required
tokens**: literal identifiers (and directive words) that appear in the
rule's minus slice — i.e. in context or ``-`` material — outside any
disjunction, and that are not metavariable names.  A file whose raw text
does not contain one of those words cannot match the rule, whatever the
bindings, so the rule can be skipped for that file without parsing.  The
extraction is deliberately *under*-approximate (fewer required tokens than
strictly possible) so that gating is always sound:

* tokens inside ``\\(...\\|...\\)`` disjunctions/conjunctions are ignored — a
  disjunction only requires one branch, so none of its tokens is individually
  required;
* metavariable names (including inherited and ``symbol`` declarations) are
  never required — they bind to arbitrary program elements;
* punctuation and numeric literals are never required, because the built-in
  isomorphisms can match them against different spellings (``a < b`` vs
  ``b > a``, ``E`` vs ``E + 0``, ``E += 1`` vs ``E++``) — with the single
  exception of the CUDA kernel-launch chevrons ``<<<``/``>>>``, which no
  isomorphism rewrites and which are extremely selective;
* directive (``#include``/``#pragma``) patterns contribute the literal words
  before their first ``...`` or metavariable, since pragma matching is
  prefix-based;
* rules run in sequence over evolving text, so a rule's requirement is
  reduced by the tokens earlier rules' ``+`` material could have inserted —
  and once an earlier rule can insert *unbounded* text (a metavariable in a
  ``+`` line, whose binding may come from a script rule or a fresh
  identifier), all later rules become unfilterable.

The file side is a *token over-approximation*: a fast regex scan for
identifier-like words over the raw text (strings and comments included).
Required ⊆ real pattern tokens and scanned ⊇ real file tokens, so
``required ⊆ scanned`` is a necessary condition for a match and gating on
its failure is behaviour-preserving — not just "same output text" but the
same reports, exports and diagnostics, which is what lets the driver enable
it by default.

A whole file can additionally be skipped *without creating a session* when
no rule of the patch could run in it: no surviving patch rule, and no
``script:python`` rule whose imports/dependencies could be satisfied without
one (a script rule with neither imports nor required dependencies runs
unconditionally in every file, so its presence keeps sessions alive).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from ..lang.lexer import ANNOT_PLUS, TokenKind, scan_word_tokens
from ..obs import registry as _obs
from ..smpl.ast import PatchRule, ScriptRule, SemanticPatchAST

_M_SCAN_HITS = _obs.REGISTRY.counter(
    "repro_prefilter_scans_total", "Prefilter token-scan lookups",
    result="hit")
_M_SCAN_MISSES = _obs.REGISTRY.counter(
    "repro_prefilter_scans_total", "Prefilter token-scan lookups",
    result="miss")

#: punctuators that are selective enough to gate on and that no isomorphism
#: can rewrite into another spelling
_SAFE_PUNCT = ("<<<", ">>>")

_IDENT_SHAPE_RE = re.compile(r"[A-Za-z_$][A-Za-z0-9_$]*\Z")


def scan_token_set(text: str) -> frozenset[str]:
    """Over-approximate the token set of a source file: every identifier-like
    word (comments and strings included) plus the chevron punctuators."""
    tokens = scan_word_tokens(text)
    for punct in _SAFE_PUNCT:
        if punct in text:
            tokens.add(punct)
    return frozenset(tokens)


class TokenQuery:
    """Membership scan for a *fixed* token universe, vectorized into one
    compiled regex alternation.

    ``scan_token_set`` materializes every identifier-like word of a file —
    fine when the full set is cached and reused, wasteful when a caller only
    needs to know which of a patch's few dozen required tokens are present
    (the per-patch re-scan at pipeline patch boundaries).  A ``TokenQuery``
    answers exactly that question in a single ``finditer`` pass that exits
    early once every queried word has been seen.

    Membership is equivalent to ``word in scan_token_set(text)``: the word
    lexer (``[A-Za-z_$][A-Za-z0-9_$]*``) starts a token at the first letter
    after any non-token character *or digit run* (``12foo`` scans as ``foo``,
    ``a1foo`` scans as ``a1foo``), which the alternation mirrors with a
    one-character lookbehind plus an optional leading digit run.  Chevron
    punctuators are plain substring tests, exactly as in
    ``scan_token_set``.  Queried words that are neither identifier-shaped
    nor safe punctuators cannot be compiled into the alternation; they are
    conservatively reported *present* (over-approximation keeps prefilter
    gating sound — the requirement extractor never produces such words, so
    this is a defensive corner only).
    """

    def __init__(self, words: Iterable[str]):
        universe = frozenset(words)
        self.words: tuple[str, ...] = tuple(sorted(
            w for w in universe if _IDENT_SHAPE_RE.match(w)))
        self.puncts: tuple[str, ...] = tuple(
            p for p in _SAFE_PUNCT if p in universe)
        #: queried words the alternation cannot express → always "present"
        self.unfilterable: frozenset[str] = universe.difference(
            self.words, self.puncts)
        if self.words:
            alt = "|".join(re.escape(w) for w in self.words)
            self._re: Optional[re.Pattern[str]] = re.compile(
                r"(?:^|(?<=[^A-Za-z0-9_$]))[0-9]*(" + alt
                + r")(?![A-Za-z0-9_$])")
        else:
            self._re = None

    def scan(self, text: str) -> frozenset[str]:
        """The subset of the queried universe present in ``text``."""
        found: set[str] = set(self.unfilterable)
        if self._re is not None:
            remaining = len(self.words)
            for match in self._re.finditer(text):
                word = match.group(1)
                if word not in found:
                    found.add(word)
                    remaining -= 1
                    if not remaining:
                        break
        for punct in self.puncts:
            if punct in text:
                found.add(punct)
        return frozenset(found)


def required_tokens(rule: PatchRule) -> frozenset[str]:
    """Tokens that must appear in a file for ``rule`` to possibly match.

    An empty set means the rule cannot be prefiltered (it could match
    anywhere, e.g. ``fn(el)`` with every name a metavariable).

    Frontend rules (:mod:`repro.frontends.core`) carry no SmPL slice; they
    compute their own requirement from their snippet and the hook delegates
    to them.
    """
    own = getattr(rule, "required_tokens", None)
    if callable(own):
        return own()
    metavars = set(rule.metavars.decls)
    required: set[str] = set()
    disj_depth = 0
    for tok in rule.slice_tokens:
        if tok.kind is TokenKind.DISJ_OPEN:
            disj_depth += 1
            continue
        if tok.kind is TokenKind.DISJ_CLOSE:
            disj_depth = max(0, disj_depth - 1)
            continue
        if tok.kind in (TokenKind.DISJ_OR, TokenKind.CONJ_AND):
            continue
        if disj_depth or tok.annot == ANNOT_PLUS:
            continue
        if tok.kind is TokenKind.IDENT:
            if tok.value not in metavars:
                required.add(tok.value)
        elif tok.kind is TokenKind.DIRECTIVE:
            required.update(_directive_required_words(tok.value, metavars))
        elif tok.kind is TokenKind.PUNCT and tok.value in _SAFE_PUNCT:
            required.add(tok.value)
    return frozenset(required)


_DIRECTIVE_PART_RE = re.compile(r"\.\.\.|[A-Za-z_$][A-Za-z0-9_$]*")


def _directive_required_words(value: str, metavars: set[str]) -> set[str]:
    """Literal words of a ``#pragma``/``#include`` pattern that a matching
    code directive must contain.  Directive matching is prefix-based, so only
    the words *before* the first ``...`` or metavariable count: a pragmainfo
    metavariable absorbs the rest of the line, making later literal words
    optional."""
    words: set[str] = set()
    for part in _DIRECTIVE_PART_RE.findall(value):
        if part == "..." or part in metavars:
            break
        words.add(part)
    return words


@dataclass(frozen=True)
class FilePlan:
    """What the prefilter decided for one file."""

    #: names of patch rules that could match the file
    allowed_rules: frozenset[str]
    #: False when the file can be skipped without creating a session at all
    needs_session: bool


def addable_tokens(rule: PatchRule) -> "tuple[frozenset[str], bool]":
    """Over-approximate the tokens ``rule`` can *introduce* into a file: the
    words of its ``+`` blocks.  A later rule in the chain may legitimately
    require a token that only exists because an earlier rule inserted it, so
    such tokens must not gate the later rule.

    Returns ``(tokens, wildcard)``.  ``wildcard`` is True when the inserted
    text is not statically bounded: a ``+`` line mentioning any metavariable
    splices in bound text, which can come from a script rule (arbitrary
    strings) or a ``fresh identifier`` (newly concatenated words) — after
    such a rule, no later requirement is trustworthy."""
    own = getattr(rule, "addable_tokens", None)
    if callable(own):
        return own()
    added: set[str] = set()
    metavars = set(rule.metavars.decls)
    wildcard = False
    for block in rule.plus_blocks:
        for line in block.lines:
            words = scan_word_tokens(line)
            if words & metavars:
                wildcard = True
            added |= words
            for punct in _SAFE_PUNCT:
                if punct in line:
                    added.add(punct)
    return frozenset(added), wildcard


class PatchPrefilter:
    """Required-token table for one semantic patch, queried per file.

    Each rule's requirement is reduced by the tokens earlier rules could
    have inserted (their ``+`` material), so chains like
    ``- foo() + bar()`` followed by ``- bar() + baz()`` stay sound on files
    that only contain ``foo``; once an earlier rule can insert unbounded
    text (metavariables in ``+`` lines), later rules are not filtered at
    all.
    """

    def __init__(self, patch: SemanticPatchAST):
        self.patch = patch
        self.requirements: dict[str, frozenset[str]] = {}
        addable_so_far: frozenset[str] = frozenset()
        unbounded = False
        for rule in patch.rules:
            if isinstance(rule, ScriptRule):
                continue
            self.requirements[rule.name] = frozenset() if unbounded \
                else required_tokens(rule) - addable_so_far
            added, wildcard = addable_tokens(rule)
            addable_so_far |= added
            unbounded = unbounded or wildcard
        #: one alternation over the union of all rule requirements — every
        #: rule's requirement is a subset of this universe, so a plan built
        #: from ``scan_query`` tokens equals one built from the full token set
        self.query = TokenQuery(
            frozenset().union(*self.requirements.values())
            if self.requirements else frozenset())

    def allowed_rules(self, file_tokens: Iterable[str]) -> frozenset[str]:
        tokens = file_tokens if isinstance(file_tokens, (set, frozenset)) \
            else frozenset(file_tokens)
        return frozenset(name for name, req in self.requirements.items()
                         if req <= tokens)

    def plan_for(self, file_tokens: frozenset[str]) -> FilePlan:
        allowed = self.allowed_rules(file_tokens)
        return FilePlan(allowed_rules=allowed,
                        needs_session=self._needs_session(allowed))

    def scan_query(self, text: str) -> frozenset[str]:
        """Which of this patch's required tokens appear in ``text`` — a
        single-pass vectorized scan that, fed to :meth:`plan_for`, yields
        the same plan as the full ``scan_token_set`` would (each rule's
        requirement is a subset of the query universe, so tokens outside it
        can never change a ``req <= tokens`` test)."""
        return self.query.scan(text)

    def plan_for_text(self, text: str) -> FilePlan:
        return self.plan_for(self.scan_query(text))

    # -- whole-file skipping --------------------------------------------------

    def _needs_session(self, allowed: frozenset[str]) -> bool:
        """Over-approximate whether *any* rule could run in a file whose
        surviving patch rules are ``allowed``.  Walks the rules in order,
        accumulating the set of rules that might apply; forbidden
        dependencies are ignored (assuming a rule may run is the conservative
        direction)."""
        may_apply: set[str] = set()
        for rule in self.patch.rules:
            if any(dep not in may_apply for dep in rule.dependencies.required):
                continue
            if isinstance(rule, ScriptRule):
                if rule.when != "script":
                    continue
                sources = {src for _local, src, _name in rule.imports}
                if sources and not sources <= may_apply:
                    continue
                may_apply.add(rule.name)
            elif rule.name in allowed:
                may_apply.add(rule.name)
        return bool(may_apply)


class TokenIndex:
    """Lazy per-file token sets for a collection of sources (the
    per-code-base index the driver consults; cached by
    :meth:`repro.api.CodeBase.token_index`)."""

    def __init__(self, files: Optional[Mapping[str, str]] = None):
        self._files: dict[str, str] = dict(files) if files else {}
        #: name -> (text the scan was made from, its token set); the text is
        #: kept so a stale entry is detected when a caller hands us newer
        #: contents for the same name (files dicts are mutated in place)
        self._scanned: dict[str, tuple[str, frozenset[str]]] = {}
        #: queries answered from a cached scan vs. fresh regex scans run —
        #: the prefilter-side counters ``--profile``/``stats`` surface
        self.scan_hits = 0
        self.scan_misses = 0

    def add(self, name: str, text: str) -> None:
        self._files[name] = text
        self._scanned.pop(name, None)

    def remove(self, name: str) -> None:
        """Forget a file entirely — a deleted file must never answer a later
        prefilter query with stale tokens."""
        self._files.pop(name, None)
        self._scanned.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def tokens_of(self, name: str, text: Optional[str] = None) -> frozenset[str]:
        if text is None:
            text = self._files.get(name, "")
        cached = self._scanned.get(name)
        if cached is not None:
            cached_text, tokens = cached
            if cached_text is text or cached_text == text:
                self.scan_hits += 1
                if _obs.enabled():
                    _M_SCAN_HITS.inc()
                return tokens
        with _obs.phase("prefilter"):
            tokens = scan_token_set(text)
        self._scanned[name] = (text, tokens)
        self.scan_misses += 1
        if _obs.enabled():
            _M_SCAN_MISSES.inc()
        return tokens

    def counters(self) -> dict:
        """The index's scan-reuse counters as one JSON-able dict (consumed by
        ``--profile`` and the server's ``stats`` verb)."""
        return {"files": len(self._files), "scanned": len(self._scanned),
                "scan_hits": self.scan_hits, "scan_misses": self.scan_misses}

    def __len__(self) -> int:
        return len(self._files)
