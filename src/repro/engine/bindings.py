"""Metavariable environments and bound values.

An :class:`Env` is an immutable mapping from metavariable names to
:class:`BoundValue`.  Matching functions thread environments through and
return extended copies, which keeps backtracking in the sequence matcher
trivially correct.

Values bound in one rule are exported to later rules under ``"rule.name"``
keys; within the rule that binds them they are visible under their local
name.  Equality between a previously bound value and a new candidate is
decided on the normalised token spelling (whitespace and formatting are
irrelevant, exactly as for Coccinelle).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional


@dataclass(frozen=True)
class Position:
    """The value of a ``position`` metavariable."""

    filename: str
    line: int
    col: int
    offset: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.filename}:{self.line}:{self.col}"


@dataclass(frozen=True)
class BoundValue:
    """A value bound to a metavariable.

    ``kind`` mirrors the metavariable kind; ``text`` is the normalised token
    spelling used both for equality and for splicing the value into ``+``
    code; ``source_text`` is the verbatim source extent (used when splicing
    multi-line values such as statement lists so the original formatting is
    preserved); ``position`` is set for position metavariables.
    """

    kind: str
    text: str
    source_text: str = ""
    position: Optional[Position] = None

    def render(self) -> str:
        """Text to splice into generated (+) code."""
        return self.source_text if self.source_text else self.text

    def equivalent(self, other: "BoundValue") -> bool:
        if self.kind == "position" or other.kind == "position":
            return self.position == other.position
        return self.text == other.text

    @classmethod
    def for_name(cls, kind: str, name: str) -> "BoundValue":
        return cls(kind=kind, text=name, source_text=name)

    @classmethod
    def for_position(cls, position: Position) -> "BoundValue":
        return cls(kind="position", text=str(position), position=position)


class Env:
    """Immutable metavariable environment."""

    __slots__ = ("_values",)

    def __init__(self, values: dict[str, BoundValue] | None = None):
        self._values: dict[str, BoundValue] = dict(values or {})

    # -- queries ------------------------------------------------------------

    def get(self, name: str) -> Optional[BoundValue]:
        return self._values.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> Iterator[tuple[str, BoundValue]]:
        return iter(self._values.items())

    def as_dict(self) -> dict[str, BoundValue]:
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v.text!r}" for k, v in self._values.items())
        return f"Env({inner})"

    # -- construction --------------------------------------------------------

    def bind(self, name: str, value: BoundValue) -> Optional["Env"]:
        """Bind ``name`` to ``value``; returns ``None`` on conflict with an
        existing binding (the match must fail)."""
        existing = self._values.get(name)
        if existing is not None:
            return self if existing.equivalent(value) else None
        new = dict(self._values)
        new[name] = value
        env = Env.__new__(Env)
        env._values = new
        return env

    def bind_all(self, pairs: dict[str, BoundValue]) -> Optional["Env"]:
        env: Optional[Env] = self
        for name, value in pairs.items():
            if env is None:
                return None
            env = env.bind(name, value)
        return env

    def merged(self, other: "Env") -> "Env":
        new = dict(self._values)
        new.update(other._values)
        return Env(new)

    def without_locals(self, local_names: set[str]) -> "Env":
        return Env({k: v for k, v in self._values.items() if k not in local_names})

    def exported(self, rule_name: str, local_names: list[str]) -> "Env":
        """Environment to hand to later rules: everything already present plus
        this rule's local bindings re-keyed as ``rule.name``."""
        new = dict(self._values)
        for name in local_names:
            if name in self._values:
                new[f"{rule_name}.{name}"] = self._values[name]
        return Env(new)

    def locals_from_inherited(self, inherited: dict[str, tuple[str, str]]) -> Optional["Env"]:
        """Seed local names from inherited metavariables.

        ``inherited`` maps local name -> (source_rule, source_name); the
        environment must already contain ``source_rule.source_name``.
        Returns None when an inherited value is missing (the rule cannot
        apply for this environment).
        """
        new = dict(self._values)
        for local, (rule, name) in inherited.items():
            key = f"{rule}.{name}"
            if key not in self._values:
                return None
            new[local] = self._values[key]
        return Env(new)


EMPTY_ENV = Env()
