"""Support for ``initialize:python`` / ``script:python`` / ``finalize:python``
rules.

A script rule runs once per environment exported by the rules it imports
metavariables from.  Inside the script two objects are available, mirroring
Coccinelle's Python API as used in the paper:

``cocci``
    helper constructors — ``make_ident``, ``make_type``, ``make_expr``,
    ``make_stmt``, ``make_pragmainfo`` — plus ``include_match(False)`` to
    drop the current environment.
``coccinelle``
    a namespace on which the script assigns the metavariables it declared
    (``coccinelle.nf = cocci.make_ident(...)``).

A script that raises (for example a ``KeyError`` when looking up a function
that is not in its translation dictionary) simply drops the environment, with
a diagnostic; this is what makes the CUDA→HIP toy patch of the paper only
rename the functions present in its dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Optional

from ..errors import Diagnostic, ScriptRuleError
from ..smpl.ast import ScriptRule
from .bindings import BoundValue, Env


@dataclass
class TaggedValue:
    """A value created by one of the ``cocci.make_*`` helpers."""

    kind: str
    text: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text


class CocciHelpers:
    """The ``cocci`` object exposed to python rules."""

    def __init__(self) -> None:
        self._include_match = True

    # constructors ---------------------------------------------------------

    @staticmethod
    def make_ident(text: str) -> TaggedValue:
        return TaggedValue(kind="identifier", text=str(text))

    @staticmethod
    def make_type(text: str) -> TaggedValue:
        return TaggedValue(kind="type", text=str(text))

    @staticmethod
    def make_expr(text: str) -> TaggedValue:
        return TaggedValue(kind="expression", text=str(text))

    @staticmethod
    def make_stmt(text: str) -> TaggedValue:
        return TaggedValue(kind="statement", text=str(text))

    @staticmethod
    def make_pragmainfo(text: str) -> TaggedValue:
        return TaggedValue(kind="pragmainfo", text=str(text))

    # control -----------------------------------------------------------------

    def include_match(self, keep: bool) -> None:
        self._include_match = bool(keep)


@dataclass
class ScriptOutcome:
    """The result of running one script rule over the inherited environments."""

    environments: list[Env] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    ran: bool = False


class ScriptRunner:
    """Executes python rules with a namespace shared across the whole patch
    application (so ``initialize:python`` rules can set up dictionaries used
    by later ``script:python`` rules)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.globals: dict = {"__builtins__": __builtins__}
        self._initialized_rules: set[str] = set()

    # -- initialize / finalize ---------------------------------------------------

    def run_initialize(self, rule: ScriptRule) -> list[Diagnostic]:
        if not self.enabled:
            return [Diagnostic(severity="warning",
                               message=f"python scripting disabled; skipping {rule.name}")]
        if rule.name in self._initialized_rules:
            return []
        self._initialized_rules.add(rule.name)
        try:
            exec(compile(rule.code, f"<initialize:{rule.name}>", "exec"), self.globals)
        except Exception as exc:  # noqa: BLE001 - surfaced as a diagnostic
            return [Diagnostic(severity="error",
                               message=f"initialize rule {rule.name} failed: {exc!r}")]
        return []

    def run_finalize(self, rule: ScriptRule) -> list[Diagnostic]:
        if not self.enabled:
            return []
        try:
            exec(compile(rule.code, f"<finalize:{rule.name}>", "exec"), self.globals)
        except Exception as exc:  # noqa: BLE001
            return [Diagnostic(severity="error",
                               message=f"finalize rule {rule.name} failed: {exc!r}")]
        return []

    # -- per-environment scripts ----------------------------------------------------

    def run_script(self, rule: ScriptRule, environments: list[Env]) -> ScriptOutcome:
        outcome = ScriptOutcome()
        if not self.enabled:
            outcome.diagnostics.append(Diagnostic(
                severity="warning",
                message=f"python scripting disabled; rule {rule.name} skipped"))
            return outcome

        for env in environments:
            local_ns: dict = {}
            missing = False
            for local, source_rule, source_name in rule.imports:
                bound = env.get(f"{source_rule}.{source_name}") or env.get(source_name)
                if bound is None:
                    missing = True
                    break
                local_ns[local] = bound.render()
            if missing:
                continue

            cocci = CocciHelpers()
            coccinelle = SimpleNamespace()
            local_ns["cocci"] = cocci
            local_ns["coccinelle"] = coccinelle

            # a single namespace (shared globals + per-environment locals) so
            # that functions defined inside the script see both its imports
            # and the dictionaries set up by initialize rules
            namespace = dict(self.globals)
            namespace.update(local_ns)
            try:
                exec(compile(rule.code, f"<script:{rule.name}>", "exec"), namespace)
            except Exception as exc:  # noqa: BLE001 - drop this environment
                outcome.diagnostics.append(Diagnostic(
                    severity="info",
                    message=(f"script rule {rule.name} dropped an environment: "
                             f"{type(exc).__name__}: {exc}")))
                continue
            local_ns = namespace

            if not cocci._include_match:
                continue

            extended: Optional[Env] = env
            ok = True
            for out_name in rule.outputs:
                raw = getattr(coccinelle, out_name, local_ns.get(out_name))
                if raw is None:
                    outcome.diagnostics.append(Diagnostic(
                        severity="warning",
                        message=(f"script rule {rule.name} did not define metavariable "
                                 f"{out_name!r}; environment dropped")))
                    ok = False
                    break
                if isinstance(raw, TaggedValue):
                    value = BoundValue(kind=raw.kind, text=raw.text, source_text=raw.text)
                else:
                    value = BoundValue(kind="identifier", text=str(raw), source_text=str(raw))
                extended = extended.bind(f"{rule.name}.{out_name}", value)
                if extended is None:
                    ok = False
                    break
            if ok and extended is not None:
                outcome.environments.append(extended)

        outcome.ran = True
        return outcome
