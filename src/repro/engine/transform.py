"""Transformation stage: turn rule matches into textual edits.

Given a :class:`~repro.engine.matcher.MatchInstance` (pattern↔code
correspondences + metavariable bindings) and the rule's annotated pattern
tokens, this module produces:

* deletions for every ``-`` pattern token, mapped onto the code tokens it
  matched (metavariable references and dots delete the full extent they
  bound),
* insertions for every ``+`` block, anchored through the pattern token its
  anchor line resolves to, with metavariable references (including ``fresh
  identifier`` values) spliced into the inserted text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from ..errors import Diagnostic
from ..lang import ast_nodes as A
from ..lang.lexer import Token, TokenKind, ANNOT_MINUS
from ..lang.parser import ParseTree
from ..options import SpatchOptions, DEFAULT_OPTIONS
from ..smpl.ast import PatchRule, PlusBlock
from .bindings import BoundValue, Env
from .edits import EditSet, PLACE_INLINE, PLACE_NEWLINE_AFTER, PLACE_NEWLINE_BEFORE
from .matcher import Correspondence, MatchInstance


def own_token_indices(node: A.Node) -> list[int]:
    """Token indices covered by ``node`` but by none of its children."""
    if node.start < 0 or node.end < 0:
        return []
    covered = [False] * (node.end - node.start)
    for child in A.iter_child_nodes(node):
        if child.start < 0:
            continue
        for i in range(max(child.start, node.start), min(child.end, node.end)):
            covered[i - node.start] = True
    return [node.start + i for i, flag in enumerate(covered) if not flag]


@dataclass
class FreshNameRegistry:
    """Allocates ``fresh identifier`` values, guaranteeing uniqueness within
    the file being transformed."""

    used: set[str] = field(default_factory=set)

    @classmethod
    def for_tree(cls, tree: ParseTree) -> "FreshNameRegistry":
        used = {tok.value for tok in tree.tokens if tok.kind is TokenKind.IDENT}
        return cls(used=used)

    def allocate(self, seed: str) -> str:
        if seed not in self.used:
            self.used.add(seed)
            return seed
        counter = 1
        while f"{seed}_{counter}" in self.used:
            counter += 1
        name = f"{seed}_{counter}"
        self.used.add(name)
        return name


class Transformer:
    """Produces the edits of one rule for one file."""

    def __init__(self, rule: PatchRule, tree: ParseTree,
                 options: SpatchOptions = DEFAULT_OPTIONS,
                 fresh_registry: Optional[FreshNameRegistry] = None):
        self.rule = rule
        self.tree = tree
        self.options = options
        self.pattern_tokens: list[Token] = rule.slice_tokens
        self.fresh_registry = fresh_registry or FreshNameRegistry.for_tree(tree)
        self.diagnostics: list[Diagnostic] = []

    # ------------------------------------------------------------------ API --

    def apply_instance(self, instance: MatchInstance, edits: EditSet) -> dict[str, BoundValue]:
        """Emit the edits of one match into ``edits``; return the fresh
        identifier bindings generated for this instance (so the engine can
        export them to later rules)."""
        fresh = self._generate_fresh(instance.env)
        token_map, extent_map = self._build_alignment(instance)
        self._emit_deletions(instance, token_map, extent_map, edits)
        self._emit_insertions(instance, token_map, extent_map, edits, fresh)
        return fresh

    # -------------------------------------------------------------- fresh ids --

    def _generate_fresh(self, env: Env) -> dict[str, BoundValue]:
        out: dict[str, BoundValue] = {}
        for decl in self.rule.metavars.fresh():
            parts: list[str] = []
            for part in decl.fresh_parts:
                if part.kind == "str":
                    parts.append(part.value)
                else:
                    bound = env.get(part.value) or out.get(part.value)
                    parts.append(bound.text if bound is not None else part.value)
            name = self.fresh_registry.allocate("".join(parts))
            out[decl.name] = BoundValue.for_name("identifier", name)
        return out

    # ---------------------------------------------------------- alignment maps --

    def _build_alignment(self, instance: MatchInstance):
        """Build pattern-token -> code-token alignment for structural pairs and
        pattern-extent -> code-extent records for bindings and dots."""
        token_map: dict[int, list[int]] = {}
        extent_map: list[tuple[Correspondence, tuple[int, int]]] = []

        for corr in instance.correspondences:
            if corr.kind == "node":
                code = corr.single
                if code is None:
                    continue
                own_p = own_token_indices(corr.pattern)
                own_c = self.tree.own_token_indices(code)
                if len(own_p) == len(own_c):
                    for p_idx, c_idx in zip(own_p, own_c):
                        token_map.setdefault(p_idx, []).append(c_idx)
                else:
                    # isomorphism changed the shape; remember the extents so
                    # minus annotations can still fall back to whole-extent
                    # deletion.
                    extent_map.append((corr, self._code_extent(corr.code)))
            else:
                extent_map.append((corr, self._code_extent(corr.code)))
        return token_map, extent_map

    def _code_extent(self, nodes: tuple[A.Node, ...]) -> tuple[int, int]:
        offsets = [self.tree.node_offsets(n) for n in nodes if n.start >= 0]
        if not offsets:
            return (-1, -1)
        return (min(o[0] for o in offsets), max(o[1] for o in offsets))

    # -------------------------------------------------------------- deletions --

    def _pattern_token_is_minus(self, idx: int) -> bool:
        return (0 <= idx < len(self.pattern_tokens)
                and self.pattern_tokens[idx].annot == ANNOT_MINUS)

    def _all_pattern_tokens_minus(self, node: A.Node) -> bool:
        if node.start < 0 or node.end <= node.start:
            return False
        return all(self._pattern_token_is_minus(i) for i in range(node.start, node.end))

    def _emit_deletions(self, instance: MatchInstance, token_map, extent_map,
                        edits: EditSet) -> None:
        origin = f"rule {self.rule.name}"
        # structural own-token deletions
        for corr in instance.correspondences:
            if corr.kind != "node" or corr.single is None:
                continue
            own_p = own_token_indices(corr.pattern)
            own_c = self.tree.own_token_indices(corr.single)
            if len(own_p) != len(own_c):
                if self._all_pattern_tokens_minus(corr.pattern):
                    start, end = self.tree.node_offsets(corr.single)
                    edits.delete(start, end, origin=origin)
                elif any(self._pattern_token_is_minus(i) for i in own_p):
                    self.diagnostics.append(Diagnostic(
                        severity="warning",
                        message=(f"rule {self.rule.name}: cannot align removed tokens of a "
                                 f"{corr.pattern.kind} pattern node; skipping its deletion"),
                        filename=self.tree.source.name))
                continue
            for p_idx, c_idx in zip(own_p, own_c):
                if self._pattern_token_is_minus(p_idx):
                    tok = self.tree.tokens[c_idx]
                    edits.delete(tok.offset, tok.end, origin=origin)

        # metavariable references / dots annotated as removed
        for corr, (start, end) in extent_map:
            if start < 0:
                continue
            pattern = corr.pattern
            if corr.kind in ("binding", "dots"):
                if self._all_pattern_tokens_minus(pattern):
                    for node in corr.code:
                        n_start, n_end = self.tree.node_offsets(node)
                        edits.delete(n_start, n_end, origin=origin)

    # -------------------------------------------------------------- insertions --

    def _emit_insertions(self, instance: MatchInstance, token_map, extent_map,
                         edits: EditSet, fresh: dict[str, BoundValue]) -> None:
        origin = f"rule {self.rule.name}"
        for block in self.rule.plus_blocks:
            anchor_idx = self._anchor_token_index(block)
            if anchor_idx is None:
                self.diagnostics.append(Diagnostic(
                    severity="warning",
                    message=f"rule {self.rule.name}: cannot resolve anchor of a '+' block",
                    filename=self.tree.source.name))
                continue
            offsets = self._resolve_anchor(anchor_idx, block.anchor, instance, token_map)
            if not offsets:
                # common with disjunctions: the '+' block belongs to a branch
                # that did not match this particular site
                self.diagnostics.append(Diagnostic(
                    severity="info",
                    message=(f"rule {self.rule.name}: a '+' block was not emitted because "
                             f"its anchor belongs to an unmatched pattern branch"),
                    filename=self.tree.source.name))
                continue
            lines = [self._substitute(line, instance.env, fresh) for line in block.lines]
            for offset in offsets:
                placement, indent = self._placement(offset, block.anchor)
                edits.insert(offset, lines, placement=placement, indent=indent,
                             origin=origin)

    def _anchor_token_index(self, block: PlusBlock) -> Optional[int]:
        """The pattern token the block anchors to: the last (for ``after``) or
        first (for ``before``) token of its anchor slice line."""
        line_index = block.anchor_slice_line - 1
        candidates = [i for i, tok in enumerate(self.pattern_tokens)
                      if tok.kind is not TokenKind.EOF and tok.pline == line_index]
        if not candidates:
            return None
        return candidates[-1] if block.anchor == "after" else candidates[0]

    def _resolve_anchor(self, tok_idx: int, kind: str, instance: MatchInstance,
                        token_map: dict[int, list[int]]) -> list[int]:
        """Map a pattern token onto code byte offsets.

        Preference order: the *largest* matched pattern node that starts (for
        ``before``) or ends (for ``after``) exactly at the token — so that
        plus code attached before a function lands before its attributes and
        specifiers too; then the directly aligned code token; then the
        innermost matched node containing the token.
        """
        offsets: list[int] = []

        best: Optional[Correspondence] = None
        best_size = -1
        for corr in instance.correspondences:
            p = corr.pattern
            if p.start < 0:
                continue
            boundary = (p.start == tok_idx) if kind == "before" else (p.end == tok_idx + 1)
            if boundary and (p.end - p.start) > best_size:
                best, best_size = corr, p.end - p.start
        if best is not None:
            for corr in instance.correspondences:
                if corr.pattern is best.pattern and corr.kind == best.kind:
                    for node in corr.code:
                        start, end = self.tree.node_offsets(node)
                        offsets.append(start if kind == "before" else end)
            if offsets:
                return sorted(set(offsets))

        if tok_idx in token_map:
            for c_idx in token_map[tok_idx]:
                tok = self.tree.tokens[c_idx]
                offsets.append(tok.offset if kind == "before" else tok.end)
            return sorted(set(offsets))

        # innermost matched node containing the token
        containing: list[tuple[int, Correspondence]] = []
        for corr in instance.correspondences:
            p = corr.pattern
            if p.start <= tok_idx < p.end:
                containing.append((p.end - p.start, corr))
        for _size, corr in sorted(containing, key=lambda item: item[0]):
            for node in corr.code:
                start, end = self.tree.node_offsets(node)
                offsets.append(start if kind == "before" else end)
            if offsets:
                break
        return sorted(set(offsets))

    def _placement(self, offset: int, anchor_kind: str) -> tuple[str, str]:
        text = self.tree.source.text
        if anchor_kind == "after":
            line_end = text.find("\n", offset)
            if line_end == -1:
                line_end = len(text)
            rest = text[offset:line_end]
            if rest.strip() == "":
                indent = self._next_line_indent(line_end)
                return PLACE_NEWLINE_AFTER, indent
            return PLACE_INLINE, ""
        # before
        loc = self.tree.source.location(offset)
        line_start = self.tree.source.line_start(loc.line)
        before = text[line_start:offset]
        if before.strip() == "":
            return PLACE_NEWLINE_BEFORE, self.tree.source.indentation_of_line(loc.line)
        return PLACE_INLINE, ""

    def _next_line_indent(self, line_end: int) -> str:
        text = self.tree.source.text
        pos = line_end + 1
        while pos < len(text):
            nl = text.find("\n", pos)
            if nl == -1:
                nl = len(text)
            line = text[pos:nl]
            if line.strip():
                return line[: len(line) - len(line.lstrip(" \t"))]
            pos = nl + 1
        if line_end < len(text):
            loc = self.tree.source.location(max(0, line_end - 1))
            return self.tree.source.indentation_of_line(loc.line)
        return ""

    # ------------------------------------------------------------ substitution --

    def _substitute(self, line: str, env: Env, fresh: dict[str, BoundValue]) -> str:
        """Replace metavariable names in a '+' line by their bound text,
        skipping string literals."""
        values: dict[str, str] = {}
        for name, value in env.items():
            if "." in name:
                continue
            values[name] = value.render()
        for name, value in fresh.items():
            values[name] = value.render()
        if not values:
            return line
        names = sorted(values, key=len, reverse=True)
        pattern = re.compile(r'("(?:[^"\\]|\\.)*")|\b(' + "|".join(re.escape(n) for n in names) + r")\b")

        def _repl(match: re.Match) -> str:
            if match.group(1) is not None:
                return match.group(1)
            return values[match.group(2)]

        return pattern.sub(_repl, line)
