"""Plain-text rendering of experiment rows (used by benchmarks and examples)."""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import Any, Iterable, Sequence


def format_table(rows: Sequence[Any], columns: Sequence[str] | None = None,
                 floatfmt: str = "{:.3f}") -> str:
    """Render a list of dataclasses / dicts as an aligned text table."""
    dict_rows: list[dict] = []
    for row in rows:
        if is_dataclass(row):
            data = asdict(row)
            # include computed properties where present
            for prop in ("leverage", "sites_per_rule_line", "missed", "correct",
                         "loc_per_second"):
                if hasattr(row, prop):
                    data[prop] = getattr(row, prop)
            dict_rows.append(data)
        elif isinstance(row, dict):
            dict_rows.append(dict(row))
        else:
            dict_rows.append({"value": row})
    if not dict_rows:
        return "(no rows)"
    if columns is None:
        columns = list(dict_rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    table = [[fmt(r.get(c, "")) for c in columns] for r in dict_rows]
    widths = [max(len(c), *(len(row[i]) for row in table)) for i, c in enumerate(columns)]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(cell.ljust(w) for cell, w in zip(row, widths))
                     for row in table)
    return "\n".join([header, sep, body])


def render_experiment(title: str, claim: str, rows: Iterable[Any],
                      columns: Sequence[str] | None = None) -> str:
    """Render one experiment block: title, the paper claim it substantiates,
    and its rows."""
    body = format_table(list(rows), columns=columns)
    return f"== {title} ==\nclaim: {claim}\n{body}\n"
