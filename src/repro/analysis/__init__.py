"""Analyses backing the experiment harness (terseness, robustness, scaling)."""

from .metrics import (
    RobustnessRow, TersenessRow, ScalingRow,
    loc_of_text, robustness_cuda, robustness_openacc, robustness_unroll,
    terseness, scaling_sweep,
)
from .report import format_table, render_experiment

__all__ = [
    "RobustnessRow", "TersenessRow", "ScalingRow",
    "loc_of_text", "robustness_cuda", "robustness_openacc", "robustness_unroll",
    "terseness", "scaling_sweep", "format_table", "render_experiment",
]
