"""Quantitative analyses substantiating the paper's qualitative claims.

The paper itself reports no tables; its claims are (C1) a semantic patch is
terse and generic, (C2) AST/CFG-level matching is robust where text-level
tools mis-fire, and the engine scales to code-base-wide application.  These
helpers compute the corresponding numbers for the synthetic workloads so the
benchmark harness can print paper-style rows (see EXPERIMENTS.md).
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..api import CodeBase, SemanticPatch
from ..baselines.textual import AccToOmpTextual, HipifyTextual, SedReroll
from ..engine.report import PatchResult


# ---------------------------------------------------------------------------
# generic helpers
# ---------------------------------------------------------------------------

def loc_of_text(text: str) -> int:
    """Non-blank, non-comment-only lines."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//") and not stripped.startswith("/*"):
            count += 1
    return count


# ---------------------------------------------------------------------------
# Q1 — terseness / genericity
# ---------------------------------------------------------------------------

@dataclass
class TersenessRow:
    """One row of the terseness table (claim C1)."""

    experiment: str
    patch_loc: int
    workload_loc: int
    sites_matched: int
    lines_changed: int

    @property
    def leverage(self) -> float:
        """Changed lines per semantic-patch line (the paper's 'much terser
        than the transformed code')."""
        return self.lines_changed / self.patch_loc if self.patch_loc else 0.0

    @property
    def sites_per_rule_line(self) -> float:
        return self.sites_matched / self.patch_loc if self.patch_loc else 0.0


def terseness(experiment: str, patch: SemanticPatch, codebase: CodeBase,
              result: PatchResult | None = None) -> TersenessRow:
    """Compute the terseness row for one experiment."""
    if result is None:
        result = patch.apply(codebase)
    lines_changed = result.lines_added() + result.lines_removed()
    return TersenessRow(experiment=experiment, patch_loc=patch.loc(),
                        workload_loc=codebase.loc(),
                        sites_matched=result.total_matches,
                        lines_changed=lines_changed)


# ---------------------------------------------------------------------------
# Q2 — robustness vs textual baselines
# ---------------------------------------------------------------------------

@dataclass
class RobustnessRow:
    """One row of the robustness comparison (claim C2).

    ``intended`` is the ground-truth number of sites to transform;
    ``converted`` counts the sites actually transformed; ``spurious`` counts
    edits applied where they must not be (strings/comments/impostor loops);
    ``broken`` counts sites left in an inconsistent state (e.g. a dangling
    OpenACC continuation line).
    """

    tool: str
    task: str
    intended: int
    converted: int
    spurious: int = 0
    broken: int = 0

    @property
    def missed(self) -> int:
        return max(0, self.intended - self.converted)

    @property
    def correct(self) -> bool:
        return self.missed == 0 and self.spurious == 0 and self.broken == 0


def _count(pattern: str, text: str) -> int:
    return len(re.findall(pattern, text))


def robustness_cuda(codebase: CodeBase, semantic_patch: SemanticPatch | None = None) -> list[RobustnessRow]:
    """Compare semantic vs textual CUDA→HIP translation on the CUDA workload
    (which contains multi-line kernel launches and CUDA names inside strings
    and comments)."""
    from ..cookbook import cuda_hip
    from ..workloads import cuda_app

    patch = semantic_patch or cuda_hip.cuda_to_hip_patch()
    intended_launches = cuda_app.kernel_launch_count(codebase)

    def metrics(files: dict[str, str], tool: str) -> RobustnessRow:
        all_text = "\n".join(files.values())
        remaining_launches = sum(text.count("<<<") for text in files.values())
        converted = intended_launches - remaining_launches
        # spurious edits: CUDA names rewritten inside string literals
        spurious = _count(r'"[^"\n]*hipMemcpy[^"\n]*"', all_text) + \
            _count(r"/\*[^*]*hipMalloc[^*]*\*/", all_text)
        # broken: dangling '>>>' halves (a launch converted on one line only)
        broken = sum(1 for text in files.values()
                     for line in text.splitlines()
                     if ">>>" in line and "<<<" not in line and "hipLaunchKernelGGL" not in line)
        return RobustnessRow(tool=tool, task="cuda-launch", intended=intended_launches,
                             converted=converted, spurious=spurious, broken=broken)

    semantic_result = patch.transform(codebase)
    textual_result = HipifyTextual().run(codebase).codebase
    return [metrics(semantic_result.files, "semantic-patch"),
            metrics(textual_result.files, "hipify-textual")]


def robustness_openacc(codebase: CodeBase, semantic_patch: SemanticPatch | None = None) -> list[RobustnessRow]:
    """Compare semantic vs line-oriented OpenACC→OpenMP translation on a
    workload containing directives with backslash continuations."""
    from ..cookbook import openacc_openmp
    from ..workloads import openacc_app

    patch = semantic_patch or openacc_openmp.acc_to_omp_patch()
    intended = openacc_app.acc_directive_count(codebase)

    def metrics(files: dict[str, str], tool: str) -> RobustnessRow:
        remaining = sum(text.count("#pragma acc") for text in files.values())
        converted = intended - remaining
        # broken: an OpenMP directive that still ends with a continuation into
        # an untranslated OpenACC clause tail, or clause tails that lost their
        # directive (line starting with a bare clause after a continuation)
        broken = 0
        for text in files.values():
            lines = text.splitlines()
            for i, line in enumerate(lines):
                if "#pragma omp" in line and line.rstrip().endswith("\\"):
                    tail = lines[i + 1] if i + 1 < len(lines) else ""
                    if "map(" not in tail and "copy" in tail:
                        broken += 1
        return RobustnessRow(tool=tool, task="acc-directive", intended=intended,
                             converted=converted, broken=broken)

    semantic_result = patch.transform(codebase)
    textual_result = AccToOmpTextual().run(codebase).codebase
    return [metrics(semantic_result.files, "semantic-patch"),
            metrics(textual_result.files, "acc2omp-textual")]


def robustness_unroll(codebase: CodeBase, factor: int = 4,
                      strategies: Sequence[str] = ("p0", "p1r1", "checked"),
                      include_sed: bool = True) -> list[RobustnessRow]:
    """Compare the paper's unroll-removal strategies (and the checked
    extension) against a sed-style reroller on a workload with genuine
    unrolled loops and impostor loops.

    In the resulting rows ``spurious`` counts impostor loops that *lost*
    statements (behaviour destroyed) and ``broken`` counts impostor loops
    whose index expressions were rewritten but whose statements survive (the
    incorrect-but-recoverable state the paper's discussion of rule p1
    acknowledges).
    """
    from ..cookbook import unrolling
    from ..workloads import unrolled

    intended = unrolled.unrolled_loop_count(codebase)

    def metrics(files: dict[str, str], tool: str) -> RobustnessRow:
        rerolled = 0
        lost_statements = 0
        rewritten_index = 0
        for text in files.values():
            for chunk in text.split("void ")[1:]:
                name = chunk.split("(", 1)[0]
                body = chunk
                if name.startswith("unrolled_op_") and f"i+={factor}" not in body:
                    rerolled += 1
                if name.startswith("tail_fixup_"):
                    statement_count = body.count(";") - body.count("for (")
                    if statement_count < factor:
                        lost_statements += 1
                    elif f"i+{factor - 1}" not in body or f"i+={factor}" not in body:
                        rewritten_index += 1
        return RobustnessRow(tool=tool, task="unroll-removal", intended=intended,
                             converted=rerolled, spurious=lost_statements,
                             broken=rewritten_index)

    rows: list[RobustnessRow] = []
    for strategy in strategies:
        patch = unrolling.reroll_patch(factor=factor, strategy=strategy)
        rows.append(metrics(patch.transform(codebase).files,
                            f"semantic-patch ({strategy})"))
    if include_sed:
        sed_result = SedReroll(factor=factor).run(codebase).codebase
        rows.append(metrics(sed_result.files, "sed-reroll"))
    return rows


# ---------------------------------------------------------------------------
# Q3 — scaling
# ---------------------------------------------------------------------------

@dataclass
class ScalingRow:
    """One point of the runtime-vs-size scaling curve."""

    size_label: str
    workload_loc: int
    files: int
    matches: int
    seconds: float

    @property
    def loc_per_second(self) -> float:
        return self.workload_loc / self.seconds if self.seconds else float("inf")


def scaling_sweep(patch_factory: Callable[[], SemanticPatch],
                  workload_factory: Callable[[int], CodeBase],
                  sizes: Sequence[int]) -> list[ScalingRow]:
    """Apply a patch to workloads of increasing size and record runtimes.

    Each size point starts with a cold parse cache: generated workloads
    share files across sizes, and warm hits would understate the larger
    points, bending the measured scaling curve."""
    from ..engine.cache import DEFAULT_TREE_CACHE

    rows: list[ScalingRow] = []
    for size in sizes:
        codebase = workload_factory(size)
        patch = patch_factory()
        DEFAULT_TREE_CACHE.clear()
        start = time.perf_counter()
        result = patch.apply(codebase)
        elapsed = time.perf_counter() - start
        rows.append(ScalingRow(size_label=str(size), workload_loc=codebase.loc(),
                               files=len(codebase), matches=result.total_matches,
                               seconds=elapsed))
    return rows
