"""A thread-safe metrics registry: counters, gauges, and fixed-bucket
monotonic-clock histograms.

Design notes
------------
*Children are cheap, families are the unit of exposition.*  A *family*
is one metric name with one type and help string; a *child* is one
labelled time series inside it.  Engine modules fetch their children
once at import time (``_HITS = REGISTRY.counter(...)``) so the hot path
is a single ``inc()`` — one ``threading.Lock`` acquire and an integer
add — with no dict lookups.

*Collectors bridge the legacy counters.*  Objects that keep their own
counters (``TreeCache``, ``TransformMemo``, ``MatcherStats``, ...)
register a **collector** callback; at snapshot/render time the registry
folds the callback's ``(name, kind, help, labels, value)`` tuples in as
if they were native children.  That makes the registry the single
source of truth for ``/metrics``, the ``stats`` verb, and ``--profile``
without rewriting every battle-tested counter in place.

*Deltas cross fork boundaries.*  ``telemetry_capture()`` snapshots the
native counter/histogram state inside a worker process; the matching
``end()`` returns a JSON-serializable delta (everything that happened
during the batch), which the parent folds back in with
:func:`merge_telemetry` under an ``origin="workers"`` label — so fleet
and fork-pool telemetry aggregates in the parent instead of dying with
the child.

Disabling: ``REPRO_OBS=0`` (or ``off``/``no``/``false``) turns
:func:`enabled` false; ``phase()`` then returns a shared no-op context
manager and ``inc()`` calls short-circuit at the call sites that guard
on it.  Instrumentation never touches output bytes either way.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from time import perf_counter
from typing import Callable, Dict, Iterable, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

#: histogram bucket upper bounds, in seconds (the +Inf bucket is implicit)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: the span/histogram phase vocabulary shared by tracer and registry
PHASES = ("parse", "prefilter", "match", "transform", "memo",
          "splice", "sync")

_DISABLED_VALUES = ("0", "off", "no", "false")


def enabled() -> bool:
    """Whether telemetry arithmetic runs at all (``REPRO_OBS=0`` kills
    it); output bytes are identical either way."""
    return os.environ.get("REPRO_OBS", "").strip().lower() \
        not in _DISABLED_VALUES


# ---------------------------------------------------------------------------
# metric children
# ---------------------------------------------------------------------------

class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down (workspace count, queue depth)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram over seconds, fed from the monotonic clock
    (callers time with :func:`time.perf_counter`, never wall clock)."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # trailing +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def state(self) -> dict:
        """A JSON-serializable snapshot (used for deltas and summaries)."""
        with self._lock:
            return {"buckets": list(self.buckets),
                    "counts": list(self._counts),
                    "sum": self._sum, "count": self._count}

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's (delta) state in; bucket layouts must
        match (they always do — one family, one layout)."""
        counts = state.get("counts") or []
        with self._lock:
            for index, extra in enumerate(counts):
                if index < len(self._counts):
                    self._counts[index] += extra
            self._sum += state.get("sum", 0.0)
            self._count += state.get("count", 0)

    def summary(self) -> dict:
        """count / sum / mean plus bucket-interpolated p50/p90/p99 — what
        the bench JSON records per phase."""
        state = self.state()
        count = state["count"]
        result = {"count": count, "sum": round(state["sum"], 6)}
        if not count:
            return result
        result["mean"] = round(state["sum"] / count, 6)
        bounds = list(state["buckets"]) + [float("inf")]
        for quantile in (0.5, 0.9, 0.99):
            target = quantile * count
            running = 0
            for bound, bucket_count in zip(bounds, state["counts"]):
                running += bucket_count
                if running >= target:
                    value = bound if bound != float("inf") \
                        else state["buckets"][-1]
                    result[f"p{int(quantile * 100)}"] = value
                    break
        return result


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

_KINDS = ("counter", "gauge", "histogram")


class _Family:
    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: Dict[LabelItems, object] = {}


def _label_items(labels: Optional[dict]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(items: LabelItems) -> str:
    if not items:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in items)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


class MetricsRegistry:
    """Thread-safe registry of metric families; see the module docstring
    for the design."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collectors: list[Callable[[], Iterable[tuple]]] = []

    # -- child access --------------------------------------------------------

    def _child(self, name: str, kind: str, help_text: str,
               labels: Optional[dict], factory) -> object:
        items = _label_items(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}")
            child = family.children.get(items)
            if child is None:
                child = factory()
                family.children[items] = child
            return child

    def counter(self, name: str, help_text: str = "",
                **labels: str) -> Counter:
        return self._child(name, "counter", help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._child(name, "gauge", help_text, labels, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        return self._child(name, "histogram", help_text, labels,
                           lambda: Histogram(buckets))

    # -- collectors ----------------------------------------------------------

    def register_collector(self, collector: Callable[[], Iterable[tuple]]):
        """Register a callback yielding ``(name, kind, help, labels,
        value)`` tuples, folded in at snapshot/render time.  Returns the
        callback so callers can :meth:`unregister_collector` later."""
        with self._lock:
            self._collectors.append(collector)
        return collector

    def unregister_collector(self, collector) -> None:
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    def _collected(self) -> list[tuple]:
        with self._lock:
            collectors = list(self._collectors)
        rows: list[tuple] = []
        for collector in collectors:
            try:
                rows.extend(collector())
            except Exception:  # a broken collector must not kill /metrics
                continue
        return rows

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Every family (native + collected) as plain JSON-ready data:
        ``{name: {"type", "help", "samples": {label-suffix: value}}}``
        with histogram samples as their :meth:`~Histogram.state`."""
        out: dict = {}
        with self._lock:
            families = [(f.name, f.kind, f.help, dict(f.children))
                        for f in self._families.values()]
        for name, kind, help_text, children in families:
            samples = {}
            for items, child in children.items():
                key = _label_suffix(items)
                if isinstance(child, Histogram):
                    samples[key] = child.state()
                else:
                    samples[key] = child.value
            out[name] = {"type": kind, "help": help_text, "samples": samples}
        for name, kind, help_text, labels, value in self._collected():
            family = out.setdefault(
                name, {"type": kind, "help": help_text, "samples": {}})
            family["samples"][_label_suffix(_label_items(labels))] = value
        return out

    def counter_values(self) -> Dict[str, float]:
        """Flat native counter/histogram state keyed ``name{labels}`` —
        the capture format behind fork-boundary deltas.  Histogram states
        are included under a ``!hist`` marker key."""
        values: Dict[str, object] = {}
        with self._lock:
            families = [(f.name, f.kind, dict(f.children))
                        for f in self._families.values()]
        for name, kind, children in families:
            for items, child in children.items():
                key = name + _label_suffix(items)
                if kind == "counter":
                    values[key] = child.value
                elif kind == "histogram":
                    values["!hist!" + key] = child.state()
        return values

    def render_prometheus(self) -> str:
        """The Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        snapshot = self.snapshot()
        for name in sorted(snapshot):
            family = snapshot[name]
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['type']}")
            for suffix in sorted(family["samples"]):
                value = family["samples"][suffix]
                if isinstance(value, dict):  # histogram state
                    base = suffix[1:-1] if suffix else ""
                    running = 0
                    bounds = list(value["buckets"]) + [float("inf")]
                    for bound, count in zip(bounds, value["counts"]):
                        running += count
                        label = "+Inf" if bound == float("inf") else repr(bound)
                        joined = f'le="{label}"' if not base \
                            else f'{base},le="{label}"'
                        lines.append(f"{name}_bucket{{{joined}}} {running}")
                    lines.append(f"{name}_sum{suffix} {value['sum']}")
                    lines.append(f"{name}_count{suffix} {value['count']}")
                else:
                    lines.append(f"{name}{suffix} {_format_number(value)}")
        return "\n".join(lines) + "\n"


def _format_number(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


#: the process-global registry every module instruments against
REGISTRY = MetricsRegistry()


# ---------------------------------------------------------------------------
# phase timing (histograms + spans in one call)
# ---------------------------------------------------------------------------

_PHASE_HISTOGRAMS: Dict[str, Histogram] = {
    name: REGISTRY.histogram(
        "repro_phase_seconds",
        "Wall seconds per engine phase (monotonic clock)", phase=name)
    for name in PHASES}


class _NoopPhase:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP_PHASE = _NoopPhase()


class _Phase:
    __slots__ = ("_histogram", "_span", "_start")

    def __init__(self, histogram: Histogram, span_cm) -> None:
        self._histogram = histogram
        self._span = span_cm
        self._start = 0.0

    def __enter__(self):
        if self._span is not None:
            self._span.__enter__()
        self._start = perf_counter()
        return self

    def __exit__(self, *exc):
        self._histogram.observe(perf_counter() - self._start)
        if self._span is not None:
            self._span.__exit__(*exc)
        return False


def phase(name: str):
    """Time one engine phase: observe the ``repro_phase_seconds`` family
    and, when a trace is active, record a span of the same name.  Returns
    a shared no-op when telemetry is disabled."""
    if not enabled():
        return _NOOP_PHASE
    from . import trace as _trace
    span_cm = _trace.span(name) if _trace.tracing_active() else None
    histogram = _PHASE_HISTOGRAMS.get(name)
    if histogram is None:
        histogram = REGISTRY.histogram(
            "repro_phase_seconds",
            "Wall seconds per engine phase (monotonic clock)", phase=name)
        _PHASE_HISTOGRAMS[name] = histogram
    return _Phase(histogram, span_cm)


def phase_summaries() -> dict:
    """Per-phase histogram summaries (count/sum/mean/p50/p90/p99) — the
    payload the bench JSON and the ``metrics`` verb expose."""
    return {name: _PHASE_HISTOGRAMS[name].summary()
            for name in PHASES if _PHASE_HISTOGRAMS[name].state()["count"]}


# ---------------------------------------------------------------------------
# fork-boundary deltas
# ---------------------------------------------------------------------------

class telemetry_capture:
    """Capture everything the registry (and the matcher's global stats)
    records between ``begin`` and ``end`` — inside a fork-pool or fleet
    worker — as a JSON-serializable delta payload for the parent.

    Usage in a worker batch::

        capture = telemetry_capture()
        ...  # run the batch
        envelope = capture.delta()   # {} when nothing moved
    """

    def __init__(self) -> None:
        self._before = REGISTRY.counter_values() if enabled() else {}
        self._matcher_before = self._matcher_values() if enabled() else {}

    @staticmethod
    def _matcher_values() -> Dict[str, int]:
        try:
            from ..engine.compile import matcher_counters
        except Exception:  # pragma: no cover - import cycle guard
            return {}
        return {key: value for key, value in matcher_counters().items()
                if isinstance(value, int)}

    def delta(self) -> dict:
        if not enabled():
            return {}
        after = REGISTRY.counter_values()
        counters: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for key, value in after.items():
            if key.startswith("!hist!"):
                before = self._before.get(key) or {}
                delta_counts = list(value["counts"])
                for index, prior in enumerate(before.get("counts") or []):
                    if index < len(delta_counts):
                        delta_counts[index] -= prior
                count = value["count"] - before.get("count", 0)
                if count:
                    histograms[key[len("!hist!"):]] = {
                        "buckets": value["buckets"],
                        "counts": delta_counts,
                        "sum": value["sum"] - before.get("sum", 0.0),
                        "count": count}
            else:
                moved = value - self._before.get(key, 0)
                if moved:
                    counters[key] = moved
        matcher_after = self._matcher_values()
        matcher = {key: matcher_after[key] - self._matcher_before.get(key, 0)
                   for key in matcher_after
                   if matcher_after[key] != self._matcher_before.get(key, 0)}
        payload: dict = {}
        if counters:
            payload["counters"] = counters
        if histograms:
            payload["histograms"] = histograms
        if matcher:
            payload["matcher"] = matcher
        return payload


def _split_key(key: str) -> tuple[str, dict]:
    """``name{a="b"}`` back into ``(name, {"a": "b"})``."""
    if "{" not in key:
        return key, {}
    name, _, raw = key.partition("{")
    labels: dict = {}
    for part in raw.rstrip("}").split(","):
        if "=" in part:
            label, _, value = part.partition("=")
            labels[label] = value.strip('"')
    return name, labels


def merge_telemetry(payload: Optional[dict], *,
                    origin: str = "workers") -> None:
    """Fold a worker's delta payload into the parent registry.  Counter
    and histogram deltas land on the same families tagged
    ``origin=<origin>``; matcher deltas land on
    ``repro_matcher_*_total`` counters with the same tag."""
    if not payload or not enabled():
        return
    for key, moved in (payload.get("counters") or {}).items():
        name, labels = _split_key(key)
        labels["origin"] = origin
        REGISTRY.counter(name, **labels).inc(int(moved))
    for key, state in (payload.get("histograms") or {}).items():
        name, labels = _split_key(key)
        labels["origin"] = origin
        histogram = REGISTRY.histogram(
            name, buckets=tuple(state.get("buckets") or DEFAULT_BUCKETS),
            **labels)
        histogram.merge_state(state)
    for key, moved in (payload.get("matcher") or {}).items():
        REGISTRY.counter(f"repro_matcher_{key}_total",
                         "Matcher counters aggregated from workers",
                         origin=origin).inc(int(moved))
