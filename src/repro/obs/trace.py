"""A lightweight span tracer carried on a :mod:`contextvars` variable.

A **trace** is one tree of timed spans identified by a ``trace_id``
(16 hex chars, client-generated for wire requests).  Starting a trace
(:func:`start_trace`) plants the root span in the current context;
:func:`span` then opens nested child spans wherever the engine crosses a
phase boundary.  When *no* trace is active, ``span()`` returns one
shared no-op context manager — the off-path cost is a single contextvar
read and no allocation, which is what makes instrumenting the engine
unconditionally safe.

Timings use :func:`time.perf_counter_ns` (``CLOCK_MONOTONIC`` on
Linux — system-wide, so spans recorded in forked workers interleave
correctly with the parent's).  Span trees serialize to plain dicts
(:meth:`Span.to_payload`) for the fork/result channel and render as
Chrome trace-event JSON (:func:`chrome_trace_events`) for
``repro-spatch --trace FILE`` — load the file at ``chrome://tracing``
or https://ui.perfetto.dev.
"""

from __future__ import annotations

import contextvars
import os
import uuid
from time import perf_counter_ns
from typing import Iterator, Optional

#: the innermost open Span of the active trace, or None when tracing is off
_CURRENT: contextvars.ContextVar[Optional["Span"]] = \
    contextvars.ContextVar("repro_obs_span", default=None)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed node in a trace tree."""

    __slots__ = ("name", "trace_id", "span_id", "start_ns", "end_ns",
                 "children", "meta")

    def __init__(self, name: str, trace_id: str) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = uuid.uuid4().hex[:8]
        self.start_ns = perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.children: list[Span] = []
        self.meta: dict = {}

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else perf_counter_ns()
        return end - self.start_ns

    def finish(self) -> None:
        if self.end_ns is None:
            self.end_ns = perf_counter_ns()

    def to_payload(self) -> dict:
        """JSON-serializable form for the wire / fork result channel."""
        payload = {"name": self.name, "span_id": self.span_id,
                   "start_ns": self.start_ns,
                   "end_ns": self.end_ns
                   if self.end_ns is not None else perf_counter_ns()}
        if self.meta:
            payload["meta"] = dict(self.meta)
        if self.children:
            payload["children"] = [c.to_payload() for c in self.children]
        return payload

    def graft_payload(self, payload: dict) -> None:
        """Attach a serialized span tree (from a worker) as a child."""
        child = Span(payload.get("name", "worker"), self.trace_id)
        child.span_id = payload.get("span_id", child.span_id)
        child.start_ns = payload.get("start_ns", child.start_ns)
        child.end_ns = payload.get("end_ns", child.start_ns)
        child.meta = dict(payload.get("meta") or {})
        self.children.append(child)
        for sub in payload.get("children") or ():
            child.graft_payload(sub)


class Tracer:
    """Owns one trace: the root span plus the contextvar token that
    deactivates it on :meth:`finish`."""

    def __init__(self, name: str = "run",
                 trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.root = Span(name, self.trace_id)
        self._token = _CURRENT.set(self.root)

    def finish(self) -> Span:
        self.root.finish()
        try:
            _CURRENT.reset(self._token)
        except ValueError:  # finished from a different context; just clear
            _CURRENT.set(None)
        return self.root

    def chrome_trace_json(self) -> list[dict]:
        return chrome_trace_events(self.root.to_payload())


def start_trace(name: str = "run",
                trace_id: Optional[str] = None) -> Tracer:
    """Begin a trace in the current context and return its
    :class:`Tracer` (callers own calling ``finish()``)."""
    return Tracer(name, trace_id)


def tracing_active() -> bool:
    return _CURRENT.get() is not None


def current_trace_id() -> Optional[str]:
    current = _CURRENT.get()
    return current.trace_id if current is not None else None


def current_span() -> Optional[Span]:
    return _CURRENT.get()


class _NoopSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()


class _SpanContext:
    __slots__ = ("_name", "_span", "_token")

    def __init__(self, name: str) -> None:
        self._name = name
        self._span: Optional[Span] = None
        self._token = None

    def __enter__(self) -> Span:
        parent = _CURRENT.get()
        span = Span(self._name, parent.trace_id if parent else "")
        if parent is not None:
            parent.children.append(span)
        self._span = span
        self._token = _CURRENT.set(span)
        return span

    def __exit__(self, *exc) -> bool:
        self._span.finish()
        try:
            _CURRENT.reset(self._token)
        except ValueError:  # crossed a context boundary; restore parent-less
            _CURRENT.set(None)
        return False


def span(name: str):
    """A context manager recording one child span under the active trace,
    or the shared no-op when no trace is active."""
    if _CURRENT.get() is None:
        return _NOOP
    return _SpanContext(name)


def graft_payloads(payloads) -> None:
    """Attach serialized worker span trees under the current span (no-op
    when tracing is off)."""
    current = _CURRENT.get()
    if current is None or not payloads:
        return
    for payload in payloads:
        if payload:
            current.graft_payload(payload)


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------

def _walk(payload: dict, depth: int = 0) -> Iterator[tuple[dict, int]]:
    yield payload, depth
    for child in payload.get("children") or ():
        yield from _walk(child, depth + 1)


def chrome_trace_events(payload: dict) -> list[dict]:
    """Flatten a serialized span tree into Chrome trace-event ``"X"``
    (complete) events; ``ts``/``dur`` are microseconds from the trace
    root, as the trace viewer expects."""
    origin = payload.get("start_ns", 0)
    events = []
    pid = os.getpid()
    for node, depth in _walk(payload):
        start = node.get("start_ns", origin)
        end = node.get("end_ns", start)
        event = {"name": node.get("name", "span"), "ph": "X",
                 "ts": (start - origin) / 1000.0,
                 "dur": max(0.0, (end - start) / 1000.0),
                 "pid": pid, "tid": 1,
                 "args": dict(node.get("meta") or {})}
        events.append(event)
    return events
