"""A structured JSONL event journal with size-bounded rotation.

One :class:`Journal` owns one append-only file of newline-delimited JSON
events: ``{"ts": <unix seconds>, "event": <name>, ...fields}``, one per
line, sorted keys, ASCII-only (the same canonical form the wire protocol
uses, so journals are greppable and machine-parsable with any JSON
tool).  When the file would exceed ``max_bytes`` it is rotated once to
``<path>.1`` (the previous ``.1`` is dropped) — a hard bound of
~2×``max_bytes`` on disk, no unbounded growth on a busy daemon.

Writes are serialized by a lock and flushed per event, so concurrent
handler threads interleave whole lines, never torn ones.  Emitting never
raises: a journal failure (disk full, rotated directory) degrades to
dropped events, because telemetry must not take the service down.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Optional

DEFAULT_MAX_BYTES = 16 * 1024 * 1024


class Journal:
    """A thread-safe, size-rotated JSONL sink."""

    def __init__(self, path: str,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.path = path
        self.max_bytes = max(4096, int(max_bytes))
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="ascii")

    def emit(self, event: str, **fields) -> None:
        """Append one event line; never raises."""
        record = {"ts": round(time.time(), 6), "event": event}
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        try:
            line = json.dumps(record, sort_keys=True,
                              separators=(",", ":"), ensure_ascii=True)
        except (TypeError, ValueError):
            return
        with self._lock:
            try:
                if self._file.tell() + len(line) + 1 > self.max_bytes:
                    self._rotate()
                self._file.write(line + "\n")
                self._file.flush()
            except (OSError, ValueError):
                pass

    def _rotate(self) -> None:
        self._file.close()
        try:
            os.replace(self.path, self.path + ".1")
        except OSError:
            pass
        self._file = open(self.path, "a", encoding="ascii")

    def close(self) -> None:
        with self._lock:
            try:
                self._file.close()
            except (OSError, ValueError):  # pragma: no cover
                pass

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_journal(path: Optional[str],
                 max_bytes: int = DEFAULT_MAX_BYTES) -> Optional[Journal]:
    """A :class:`Journal` for ``path``, or ``None`` when unconfigured."""
    if not path:
        return None
    return Journal(path, max_bytes)
