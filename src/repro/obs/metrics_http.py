"""A stdlib-only HTTP ``/metrics`` endpoint (Prometheus text format).

``repro-spatchd --metrics ADDR`` starts one of these next to the wire
listener: a :class:`http.server.ThreadingHTTPServer` on its own daemon
thread serving

* ``GET /metrics`` — the registry's Prometheus text exposition
  (``text/plain; version=0.0.4``), and
* ``GET /healthz`` — a 200 ``ok`` liveness probe.

Everything else is 404.  The server binds ``host:port`` (``:0`` picks an
ephemeral port, exposed as :attr:`MetricsServer.port` for tests) and is
read-only by construction — scraping can never mutate the daemon.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .registry import REGISTRY, MetricsRegistry


class _Handler(BaseHTTPRequestHandler):
    registry: MetricsRegistry = REGISTRY

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] == "/metrics":
            body = self.registry.render_prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path.split("?", 1)[0] == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404)

    def log_message(self, *args) -> None:  # scrapes must stay silent
        pass


class MetricsServer:
    """The `/metrics` endpoint; construct, :meth:`start`, :meth:`close`."""

    def __init__(self, address: str,
                 registry: MetricsRegistry = REGISTRY) -> None:
        host, _, port = address.rpartition(":")
        if not port.isdigit():
            raise ValueError(
                f"bad metrics address {address!r}; expected HOST:PORT")
        handler = type("BoundHandler", (_Handler,), {"registry": registry})
        self._server = ThreadingHTTPServer(
            (host or "127.0.0.1", int(port)), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics",
            daemon=True)

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
