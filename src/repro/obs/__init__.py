"""Unified observability: metrics registry, span tracer, and sinks.

This package is the single aggregation point for everything the engine
and the daemon know about their own behaviour:

* :mod:`~repro.obs.registry` — a thread-safe **metrics registry**
  (counters, gauges, fixed-bucket monotonic-clock histograms).  Engine
  modules create their metric children at import time so the hot path
  pays one lock-free attribute lookup plus one locked integer add; the
  registry renders Prometheus text exposition and serializes counter
  *deltas* across fork boundaries so worker telemetry aggregates in the
  parent.
* :mod:`~repro.obs.trace` — a **span tracer** carried on a contextvar.
  ``span(name)`` is a shared no-op when no trace is active (one
  contextvar read, no allocation), a real timed span otherwise; span
  trees serialize across the wire and across forks, and export as
  Chrome trace-event JSON (``repro-spatch --trace FILE``).
* :mod:`~repro.obs.journal` — a size-rotated **JSONL event journal**
  (``repro-spatchd --journal``, watch-loop iteration events).
* :mod:`~repro.obs.metrics_http` — a stdlib-only HTTP ``/metrics``
  endpoint in Prometheus text format (``repro-spatchd --metrics``).

Soundness: instrumentation only ever *times and counts* — it never
touches the text, diff, report, or exit-code computation, so telemetry
on vs. off is byte-identical by construction (and proved by the
differential suites in ``tests/test_obs.py``).  Setting ``REPRO_OBS=0``
turns even the registry arithmetic off.
"""

from __future__ import annotations

from .registry import (REGISTRY, Counter, Gauge, Histogram, MetricsRegistry,
                       enabled, merge_telemetry, phase, phase_summaries,
                       telemetry_capture)
from .trace import (current_trace_id, new_trace_id, span, start_trace,
                    tracing_active)

__all__ = [
    "REGISTRY", "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "enabled", "merge_telemetry", "phase", "phase_summaries",
    "telemetry_capture", "current_trace_id", "new_trace_id", "span",
    "start_trace", "tracing_active",
]
