"""C/C++ front-end substrate: lexer, parser, AST, CFG, pretty printer."""

from .source import SourceFile, Location
from .lexer import Lexer, Token, TokenKind, tokenize
from .parser import CParser, ParseTree, parse_source, parse_tokens
from . import ast_nodes

__all__ = [
    "SourceFile", "Location", "Lexer", "Token", "TokenKind", "tokenize",
    "CParser", "ParseTree", "parse_source", "parse_tokens", "ast_nodes",
]
