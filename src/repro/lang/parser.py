"""Recursive-descent parser for the C/C++ subset used by the paper's patches.

The same parser parses both real source files and SmPL pattern fragments
(the minus slice of a rule); in the latter case it is given the table of
declared metavariables so that, e.g., a lone statement metavariable ``A`` or
a ``parameter list`` metavariable ``PL`` parse into the dedicated pattern
nodes, and dots / disjunction tokens are accepted in the corresponding
positions.

The top-level parser is *error tolerant*: constructs outside the supported
subset are preserved verbatim as :class:`RawDecl` / :class:`RawStmt` nodes so
that applying a semantic patch never corrupts a file just because it contains
syntax the front end does not model (pattern mode is strict instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import CParseError
from ..options import SpatchOptions, DEFAULT_OPTIONS
from .lexer import Lexer, Token, TokenKind
from .source import SourceFile
from .ast_nodes import (
    AttributeSpec, Assignment, BinaryOp, BreakStmt, Call, Cast, CommaExpr,
    CompoundStmt, Conjunction, ContinueStmt, Declaration, Declarator,
    DeclStmt, DefineDirective, Disjunction, DoWhileStmt, DotsExpr, DotsParam,
    DotsStmt, EmptyStmt, Expr, ExprStmt, ForStmt, FunctionDef, Ident, IfStmt,
    IncludeDirective, InitList, KernelLaunch, Lambda, Literal, Member,
    MetaExprList, MetaParamList, MetaStmt, MetaStmtList, Node, OtherDirective,
    Param, ParamList, Paren, PragmaDirective, RangeForStmt, RawDecl, RawStmt,
    ReturnStmt, SizeofExpr, StructDef, Stmt, Subscript, Ternary,
    TranslationUnit, TypeName, UnaryOp, WhileStmt,
)


#: Keywords that may begin a type.
TYPE_KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double", "bool",
    "signed", "unsigned", "auto", "_Bool", "_Complex",
    "size_t", "ssize_t", "ptrdiff_t", "intptr_t", "uintptr_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "float32_t", "float64_t", "wchar_t",
}

#: Declaration specifiers / qualifiers that may precede the type.
SPECIFIER_KEYWORDS = {
    "static", "extern", "inline", "register", "restrict", "volatile",
    "constexpr", "consteval", "constinit", "mutable", "virtual", "explicit",
    "__restrict__", "__inline__", "_Noreturn", "noexcept",
    "__global__", "__device__", "__host__", "__forceinline__",
}

#: ``const`` can appear both as a qualifier and inside the type.
QUALIFIER_KEYWORDS = {"const", "volatile", "restrict", "__restrict__"}

STATEMENT_KEYWORDS = {
    "if", "else", "for", "while", "do", "return", "break", "continue",
    "switch", "case", "default", "goto",
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

_BINARY_LEVELS: list[tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

UNARY_OPS = {"!", "~", "-", "+", "*", "&", "++", "--"}


# ---------------------------------------------------------------------------
# parse result container
# ---------------------------------------------------------------------------

@dataclass
class ParseTree:
    """The result of parsing one file (or one pattern fragment)."""

    source: SourceFile
    tokens: list[Token]
    unit: TranslationUnit
    options: SpatchOptions = field(default_factory=lambda: DEFAULT_OPTIONS)
    known_types: set[str] = field(default_factory=set)

    # -- extent helpers ----------------------------------------------------

    def token_slice(self, node: Node) -> list[Token]:
        if node.start < 0 or node.end < 0:
            return []
        return self.tokens[node.start:node.end]

    def node_offsets(self, node: Node) -> tuple[int, int]:
        """Byte-offset extent ``(start, end)`` of a node in the source text."""
        toks = self.token_slice(node)
        if not toks:
            return (0, 0)
        return toks[0].offset, toks[-1].end

    def node_text(self, node: Node) -> str:
        start, end = self.node_offsets(node)
        return self.source.text[start:end]

    def node_token_values(self, node: Node) -> list[str]:
        """Normalised token spelling of a node (used for metavariable
        equality checks, which must ignore whitespace differences)."""
        return [t.value for t in self.token_slice(node)]

    def own_token_indices(self, node: Node) -> list[int]:
        """Token indices covered by ``node`` but not by any of its children.

        These are the node's *fixed* tokens (keywords, operators, braces,
        names stored as plain strings) and are what the transformation stage
        aligns between pattern and code.
        """
        if node.start < 0:
            return []
        covered = [False] * (node.end - node.start)
        from .ast_nodes import iter_child_nodes

        for child in iter_child_nodes(node):
            if child.start < 0:
                continue
            for i in range(max(child.start, node.start), min(child.end, node.end)):
                covered[i - node.start] = True
        return [node.start + i for i, c in enumerate(covered) if not c]

    def node_location(self, node: Node):
        start, _ = self.node_offsets(node)
        return self.source.location(start)


# ---------------------------------------------------------------------------
# the parser
# ---------------------------------------------------------------------------

class CParser:
    """Parser over a token list.

    Parameters
    ----------
    tokens / source:
        The token stream (ending in EOF) and the file it came from.
    options:
        Language options (C vs C++ subset, extra type names).
    metavars:
        ``{name: kind}`` of SmPL metavariables when parsing pattern code;
        ``None`` for real source code.
    tolerant:
        Recover from parse errors by emitting Raw nodes (real code); pattern
        parsing is strict.
    """

    def __init__(self, tokens: Sequence[Token], source: SourceFile,
                 options: SpatchOptions = DEFAULT_OPTIONS,
                 metavars: dict[str, str] | None = None,
                 tolerant: bool = True):
        self.tokens = list(tokens)
        self.source = source
        self.options = options
        self.metavars = metavars or {}
        self.pattern_mode = metavars is not None
        self.tolerant = tolerant and not self.pattern_mode
        self.i = 0
        self.known_types: set[str] = set(TYPE_KEYWORDS)
        self.known_types.update(options.extra_types)
        self.known_types.update(
            name for name, kind in self.metavars.items() if kind == "type")
        self.attribute_names = {"__attribute__", "__declspec"} | set(options.attribute_names)

    # -- token helpers ------------------------------------------------------

    def _tok(self, offset: int = 0) -> Token:
        idx = min(self.i + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at_end(self) -> bool:
        return self._tok().kind is TokenKind.EOF

    def _advance(self) -> Token:
        tok = self._tok()
        if tok.kind is not TokenKind.EOF:
            self.i += 1
        return tok

    def _check_punct(self, *values: str) -> bool:
        return self._tok().is_punct(*values)

    def _check_ident(self, *names: str) -> bool:
        return self._tok().is_ident(*names)

    def _match_punct(self, *values: str) -> Optional[Token]:
        if self._check_punct(*values):
            return self._advance()
        return None

    def _expect_punct(self, value: str) -> Token:
        if not self._check_punct(value):
            raise self._error(f"expected {value!r}, found {self._tok().value!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._tok().kind is not TokenKind.IDENT:
            raise self._error(f"expected identifier, found {self._tok().value!r}")
        return self._advance()

    def _error(self, message: str) -> CParseError:
        tok = self._tok()
        return CParseError(message, self.source.name, tok.line, tok.col)

    def _mv_kind(self, name: str) -> Optional[str]:
        return self.metavars.get(name)

    # -- entry points --------------------------------------------------------

    def parse_translation_unit(self) -> ParseTree:
        start = self.i
        decls: list[Node] = []
        while not self._at_end():
            before = self.i
            try:
                decl = self.parse_external_decl()
                if decl is not None:
                    decls.append(decl)
            except CParseError:
                if not self.tolerant:
                    raise
                decls.append(self._recover_raw_decl(before))
            if self.i == before:  # safety: always make progress
                self._advance()
        unit = TranslationUnit(decls=decls)
        unit.with_extent(start, self.i)
        return ParseTree(source=self.source, tokens=self.tokens, unit=unit,
                         options=self.options, known_types=set(self.known_types))

    def parse_statement_list(self) -> list[Node]:
        """Parse the token stream as a sequence of statements (pattern use)."""
        stmts: list[Node] = []
        while not self._at_end():
            stmts.append(self.parse_statement())
        return stmts

    def parse_single_expression(self) -> Expr:
        """Parse the token stream as one expression (pattern use)."""
        expr = self.parse_expression()
        if not self._at_end():
            raise self._error("trailing tokens after expression")
        return expr

    # -- error recovery ------------------------------------------------------

    def _recover_raw_decl(self, from_index: int) -> RawDecl:
        self.i = max(self.i, from_index)
        depth = 0
        start = from_index
        while not self._at_end():
            tok = self._advance()
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                depth -= 1
                if depth <= 0:
                    break
            elif tok.is_punct(";") and depth == 0:
                break
        node = RawDecl(text=self._text_between(start, self.i))
        return node.with_extent(start, self.i)

    def _recover_raw_stmt(self, from_index: int) -> RawStmt:
        self.i = max(self.i, from_index)
        depth = 0
        start = from_index
        while not self._at_end():
            tok = self._tok()
            if tok.is_punct("}") and depth == 0:
                break
            self._advance()
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                depth -= 1
                if depth <= 0:
                    break
            elif tok.is_punct(";") and depth == 0:
                break
        node = RawStmt(text=self._text_between(start, self.i))
        return node.with_extent(start, self.i)

    def _text_between(self, start_idx: int, end_idx: int) -> str:
        if end_idx <= start_idx:
            return ""
        return self.source.text[self.tokens[start_idx].offset:self.tokens[end_idx - 1].end]

    # -- directives ----------------------------------------------------------

    def parse_directive(self) -> Node:
        start = self.i
        tok = self._advance()
        value = tok.value  # normalised '#... ...'
        body = value[1:].strip() if value.startswith("#") else value
        node: Node
        if body.startswith("include"):
            rest = body[len("include"):].strip()
            system = rest.startswith("<")
            target = rest.strip("<>\"") if rest else ""
            node = IncludeDirective(target=target, system=system, raw=value)
        elif body.startswith("pragma"):
            node = PragmaDirective(text=body[len("pragma"):].strip(), raw=value)
        elif body.startswith(("define", "undef")):
            node = DefineDirective(raw=value)
        else:
            node = OtherDirective(raw=value)
        return node.with_extent(start, self.i)

    # -- attributes ----------------------------------------------------------

    def _at_attribute(self) -> bool:
        return self._tok().kind is TokenKind.IDENT and self._tok().value in self.attribute_names

    def parse_attribute_specs(self) -> list[AttributeSpec]:
        attrs: list[AttributeSpec] = []
        while self._at_attribute():
            attrs.append(self.parse_attribute_spec())
        return attrs

    def parse_attribute_spec(self) -> AttributeSpec:
        start = self.i
        self._advance()  # __attribute__
        self._expect_punct("(")
        self._expect_punct("(")
        name_tok = self._expect_ident()
        args: list[Expr] = []
        has_args = False
        if self._match_punct("("):
            has_args = True
            args = self._parse_attr_args()
            self._expect_punct(")")
        self._expect_punct(")")
        self._expect_punct(")")
        node = AttributeSpec(name=name_tok.value, args=args, has_args=has_args)
        return node.with_extent(start, self.i)

    def _parse_attr_args(self) -> list[Expr]:
        args: list[Expr] = []
        while not self._check_punct(")"):
            args.append(self._parse_arg_element())
            if not self._match_punct(","):
                break
        return args

    def _parse_arg_element(self) -> Expr:
        """One element of an argument list; in pattern mode it may be dots, a
        disjunction group or an ``expression list`` metavariable."""
        tok = self._tok()
        if tok.kind is TokenKind.DOTS:
            start = self.i
            self._advance()
            return DotsExpr().with_extent(start, self.i)
        if tok.kind is TokenKind.DISJ_OPEN:
            return self._parse_group(self.parse_assignment)
        expr = self.parse_assignment()
        if (isinstance(expr, Ident) and self._mv_kind(expr.name) == "expression list"):
            repl = MetaExprList(name=expr.name)
            repl.with_extent(expr.start, expr.end)
            repl.pos_metavars = expr.pos_metavars
            return repl
        return expr

    # -- groups (disjunction / conjunction) -----------------------------------

    def _parse_group(self, parse_branch) -> Node:
        """Parse ``\\( b1 \\| b2 ... \\)`` or ``\\( b1 \\& b2 \\)``."""
        start = self.i
        self._advance()  # DISJ_OPEN
        branches = [parse_branch()]
        op: Optional[str] = None
        while True:
            tok = self._tok()
            if tok.kind is TokenKind.DISJ_CLOSE:
                self._advance()
                break
            if tok.kind is TokenKind.DISJ_OR:
                if op == "&":
                    raise self._error("cannot mix \\| and \\& at the same level")
                op = "|"
                self._advance()
                branches.append(parse_branch())
            elif tok.kind is TokenKind.CONJ_AND:
                if op == "|":
                    raise self._error("cannot mix \\| and \\& at the same level")
                op = "&"
                self._advance()
                branches.append(parse_branch())
            else:
                raise self._error(f"unexpected token {tok.value!r} in disjunction")
        node: Node = Conjunction(branches=branches) if op == "&" else Disjunction(branches=branches)
        return node.with_extent(start, self.i)

    def _parse_group_branch_stmt(self) -> Node:
        """A branch of a statement-level group: one statement, or a nested
        group, or a bare expression (constraint branch of a conjunction)."""
        tok = self._tok()
        if tok.kind is TokenKind.DISJ_OPEN:
            return self._parse_group(self._parse_group_branch_stmt)
        save = self.i
        try:
            return self.parse_statement()
        except CParseError:
            self.i = save
            start = self.i
            expr = self.parse_expression()
            node = ExprStmt(expr=expr, has_semicolon=False)
            return node.with_extent(start, self.i)

    # -- types ----------------------------------------------------------------

    def _is_type_start(self, tok: Token, lookahead: int = 0) -> bool:
        if tok.kind is not TokenKind.IDENT:
            return False
        name = tok.value
        if name in TYPE_KEYWORDS or name in QUALIFIER_KEYWORDS:
            return True
        if name in ("struct", "union", "enum"):
            return True
        if name in self.known_types:
            return True
        if self._mv_kind(name) == "type":
            return True
        if name.endswith("_t") and name not in STATEMENT_KEYWORDS:
            # common convention for typedef'd types (size_t, cudaStream_t, ...)
            return True
        return False

    def looks_like_declaration(self) -> bool:
        """Heuristic: does a declaration start at the current position?"""
        tok = self._tok()
        if tok.kind is not TokenKind.IDENT:
            return False
        if tok.value in STATEMENT_KEYWORDS:
            return False
        if tok.value in SPECIFIER_KEYWORDS or self._is_type_start(tok):
            return True
        # ``sometype name ;/=/[/,`` with an unknown type name
        nxt, nxt2 = self._tok(1), self._tok(2)
        if nxt.kind is TokenKind.IDENT and nxt.value not in STATEMENT_KEYWORDS:
            if nxt2.is_punct(";", "=", "[", ","):
                return True
            if nxt2.is_punct("(") and self.options.is_cxx:
                # constructor-style initialisation ``dim3 grid(n);``
                return True
        return False

    def parse_type(self, allow_unknown: bool = False) -> TypeName:
        start = self.i
        parts: list[str] = []
        has_base = False
        while True:
            tok = self._tok()
            if tok.kind is not TokenKind.IDENT:
                break
            name = tok.value
            if name in ("struct", "union", "enum"):
                parts.append(name)
                has_base = True
                self._advance()
                if self._tok().kind is TokenKind.IDENT:
                    parts.append(self._advance().value)
                break
            is_known = (name in TYPE_KEYWORDS or name in QUALIFIER_KEYWORDS
                        or name in self.known_types or self._mv_kind(name) == "type"
                        or (name.endswith("_t") and name not in STATEMENT_KEYWORDS))
            if is_known or (allow_unknown and not has_base and name not in STATEMENT_KEYWORDS):
                parts.append(name)
                if name not in QUALIFIER_KEYWORDS:
                    has_base = True
                self._advance()
                # optional template arguments (C++ subset): fold into the part
                if self.options.is_cxx and self._check_punct("<") and self._template_args_follow():
                    parts[-1] = parts[-1] + self._consume_template_args()
                # qualified names: Kokkos::View etc.
                while self._check_punct("::") and self._tok(1).kind is TokenKind.IDENT:
                    self._advance()
                    parts[-1] = parts[-1] + "::" + self._advance().value
                    if self.options.is_cxx and self._check_punct("<") and self._template_args_follow():
                        parts[-1] = parts[-1] + self._consume_template_args()
                # a qualifier or builtin word may be followed by more type
                # words (``unsigned long``, ``const struct particle``);
                # otherwise stop after the base name.
                nxt = self._tok()
                if (nxt.kind is TokenKind.IDENT
                        and (nxt.value in TYPE_KEYWORDS or nxt.value in QUALIFIER_KEYWORDS
                             or (not has_base and self._is_type_start(nxt))
                             or nxt.value in ("struct", "union", "enum"))):
                    continue
                break
            break
        if not parts:
            raise self._error("expected a type")
        node = TypeName(parts=parts)
        return node.with_extent(start, self.i)

    def _template_args_follow(self) -> bool:
        """Cheap balanced scan to decide whether ``<`` opens template args."""
        depth = 0
        j = self.i
        limit = min(len(self.tokens), self.i + 64)
        while j < limit:
            tok = self.tokens[j]
            if tok.is_punct("<"):
                depth += 1
            elif tok.is_punct(">"):
                depth -= 1
                if depth == 0:
                    return True
            elif tok.is_punct(">>"):
                depth -= 2
                if depth <= 0:
                    return True
            elif tok.is_punct(";", "{", "}") or tok.kind is TokenKind.EOF:
                return False
            j += 1
        return False

    def _consume_template_args(self) -> str:
        start_tok = self._tok()
        depth = 0
        start_off = start_tok.offset
        end_off = start_off
        while not self._at_end():
            tok = self._advance()
            end_off = tok.end
            if tok.is_punct("<"):
                depth += 1
            elif tok.is_punct(">"):
                depth -= 1
                if depth == 0:
                    break
            elif tok.is_punct(">>"):
                depth -= 2
                if depth <= 0:
                    break
        return self.source.text[start_off:end_off]

    # -- external declarations -------------------------------------------------

    def parse_external_decl(self) -> Optional[Node]:
        tok = self._tok()
        if tok.kind is TokenKind.DIRECTIVE:
            return self.parse_directive()
        if tok.is_punct(";"):
            start = self.i
            self._advance()
            return EmptyStmt().with_extent(start, self.i)
        if tok.kind is TokenKind.DOTS:
            start = self.i
            self._advance()
            return DotsStmt().with_extent(start, self.i)
        if tok.kind is TokenKind.DISJ_OPEN:
            return self._parse_group(self._parse_group_branch_stmt)
        if tok.is_ident("typedef"):
            return self._parse_typedef()
        if tok.is_ident("struct", "union", "enum") and self._struct_definition_follows():
            return self._parse_struct_def(is_typedef=False)
        if tok.is_ident("using") or tok.is_ident("namespace"):
            return self._parse_passthrough_to_semicolon_or_block()
        return self._parse_function_or_declaration()

    def _struct_definition_follows(self) -> bool:
        # struct NAME { ... } ;   vs   struct NAME var ;
        j = self.i + 1
        if self.tokens[j].kind is TokenKind.IDENT:
            j += 1
        return self.tokens[j].is_punct("{")

    def _parse_passthrough_to_semicolon_or_block(self) -> RawDecl:
        start = self.i
        depth = 0
        while not self._at_end():
            tok = self._advance()
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                depth -= 1
                if depth == 0 and not self._check_punct(";"):
                    break
            elif tok.is_punct(";") and depth == 0:
                break
        return RawDecl(text=self._text_between(start, self.i)).with_extent(start, self.i)

    def _parse_typedef(self) -> Node:
        start = self.i
        self._advance()  # typedef
        if self._check_ident("struct", "union", "enum") and self._struct_definition_follows():
            node = self._parse_struct_def(is_typedef=True, start=start)
            return node
        ty = self.parse_type()
        decl = self._parse_declaration_tail(specifiers=["typedef"], ty=ty, start=start,
                                            is_typedef=True)
        for d in decl.declarators:
            if d.name:
                self.known_types.add(d.name)
        return decl

    def _parse_struct_def(self, is_typedef: bool, start: int | None = None) -> StructDef:
        if start is None:
            start = self.i
        keyword = self._advance().value
        name = ""
        if self._tok().kind is TokenKind.IDENT:
            name = self._advance().value
        members: list[Declaration] = []
        enumerators: list[str] = []
        self._expect_punct("{")
        if keyword == "enum":
            while not self._check_punct("}") and not self._at_end():
                if self._tok().kind is TokenKind.IDENT:
                    enumerators.append(self._advance().value)
                    if self._match_punct("="):
                        self.parse_assignment()
                if not self._match_punct(","):
                    break
        else:
            while not self._check_punct("}") and not self._at_end():
                if self._tok().kind is TokenKind.DIRECTIVE:
                    self.parse_directive()
                    continue
                ty = self.parse_type()
                decl = self._parse_declaration_tail(specifiers=[], ty=ty, start=self.i - 1)
                members.append(decl)
        self._expect_punct("}")
        typedef_name = ""
        if is_typedef:
            if self._tok().kind is TokenKind.IDENT:
                typedef_name = self._advance().value
                self.known_types.add(typedef_name)
        if name:
            self.known_types.add(name)
        self._match_punct(";")
        node = StructDef(keyword=keyword, name=name, members=members,
                         enumerators=enumerators, is_typedef=is_typedef,
                         typedef_name=typedef_name)
        return node.with_extent(start, self.i)

    def _parse_function_or_declaration(self) -> Node:
        start = self.i
        attributes = self.parse_attribute_specs()
        specifiers: list[str] = []
        while self._tok().kind is TokenKind.IDENT and self._tok().value in SPECIFIER_KEYWORDS:
            specifiers.append(self._advance().value)
        attributes += self.parse_attribute_specs()
        # at file scope only declarations occur, so unknown identifiers in
        # type position are accepted as type names
        ty = self.parse_type(allow_unknown=not self.pattern_mode)
        pointer = ""
        while self._check_punct("*"):
            pointer += "*"
            self._advance()
        if self._tok().kind is not TokenKind.IDENT:
            raise self._error("expected a declarator name")
        name_tok = self._advance()
        name = name_tok.value
        while self._check_punct("::") and self._tok(1).kind is TokenKind.IDENT:
            self._advance()
            name += "::" + self._advance().value
        if self._check_punct("("):
            return self._parse_function_rest(start, attributes, specifiers, ty, pointer, name)
        # plain declaration: rewind to re-parse declarators uniformly
        self.i = start
        attributes2 = self.parse_attribute_specs()
        specifiers2: list[str] = []
        while self._tok().kind is TokenKind.IDENT and self._tok().value in SPECIFIER_KEYWORDS:
            specifiers2.append(self._advance().value)
        self.parse_attribute_specs()
        ty2 = self.parse_type(allow_unknown=not self.pattern_mode)
        decl = self._parse_declaration_tail(specifiers=specifiers2, ty=ty2, start=start)
        decl.attributes = attributes2
        return decl

    def _parse_function_rest(self, start: int, attributes: list[AttributeSpec],
                             specifiers: list[str], ty: TypeName, pointer: str,
                             name: str) -> FunctionDef:
        params = self.parse_param_list()
        # trailing qualifiers / attributes between ')' and '{'
        while self._check_ident("const", "noexcept", "override", "final"):
            self._advance()
        body: CompoundStmt | MetaStmtList | None = None
        is_prototype = False
        if self._check_punct("{"):
            body = self.parse_compound()
        elif self._match_punct(";"):
            is_prototype = True
        else:
            raise self._error("expected function body or ';'")
        node = FunctionDef(attributes=attributes, specifiers=specifiers,
                           return_type=ty, pointer=pointer, name=name,
                           params=params, body=body, is_prototype=is_prototype)
        return node.with_extent(start, self.i)

    def parse_param_list(self) -> ParamList:
        start = self.i
        self._expect_punct("(")
        params: list[Node] = []
        if not self._check_punct(")"):
            while True:
                params.append(self._parse_param())
                if not self._match_punct(","):
                    break
        self._expect_punct(")")
        node = ParamList(params=params)
        return node.with_extent(start, self.i)

    def _parse_param(self) -> Node:
        tok = self._tok()
        start = self.i
        if tok.kind is TokenKind.DOTS:
            self._advance()
            return DotsParam().with_extent(start, self.i)
        if (tok.kind is TokenKind.IDENT and self._mv_kind(tok.value) == "parameter list"):
            self._advance()
            return MetaParamList(name=tok.value).with_extent(start, self.i)
        if tok.is_ident("void") and self._tok(1).is_punct(")"):
            self._advance()
            return Param(type=TypeName(parts=["void"]).with_extent(start, self.i)) \
                .with_extent(start, self.i)
        # Inside a parameter list only types occur, so an unknown identifier
        # in type position is accepted as a type name (cudaStream_t, dim3, ...).
        ty = self.parse_type(allow_unknown=True)
        pointer = ""
        reference = False
        while self._check_punct("*", "&"):
            if self._advance().value == "*":
                pointer += "*"
            else:
                reference = True
        name = ""
        if self._tok().kind is TokenKind.IDENT:
            name = self._advance().value
        arrays: list[Optional[Expr]] = []
        while self._match_punct("["):
            if self._check_punct("]"):
                arrays.append(None)
            else:
                arrays.append(self.parse_assignment())
            self._expect_punct("]")
        default = None
        if self._match_punct("="):
            default = self.parse_assignment()
        node = Param(type=ty, pointer=pointer, reference=reference, name=name,
                     arrays=arrays, default=default)
        return node.with_extent(start, self.i)

    def _parse_declaration_tail(self, specifiers: list[str], ty: TypeName,
                                start: int, is_typedef: bool = False) -> Declaration:
        declarators: list[Declarator] = []
        while True:
            declarators.append(self._parse_declarator())
            if not self._match_punct(","):
                break
        self._expect_punct(";")
        node = Declaration(specifiers=specifiers, type=ty, declarators=declarators,
                           is_typedef=is_typedef)
        return node.with_extent(start, self.i)

    def _parse_declarator(self) -> Declarator:
        start = self.i
        pointer = ""
        reference = False
        while self._check_punct("*", "&"):
            if self._advance().value == "*":
                pointer += "*"
            else:
                reference = True
        name = ""
        if self._tok().kind is TokenKind.IDENT:
            name = self._advance().value
        arrays: list[Optional[Expr]] = []
        while self._match_punct("["):
            if self._check_punct("]"):
                arrays.append(None)
            else:
                arrays.append(self.parse_expression())
            self._expect_punct("]")
        init: Expr | None = None
        if self._match_punct("="):
            if self._check_punct("{"):
                init = self._parse_init_list()
            else:
                init = self.parse_assignment()
        elif self._check_punct("(") and self.options.is_cxx and name:
            # constructor-style initialisation ``T x(args);``
            self._advance()
            args = self._parse_call_args()
            self._expect_punct(")")
            init = InitList(items=args).with_extent(start, self.i)
        node = Declarator(pointer=pointer, reference=reference, name=name,
                          arrays=arrays, init=init)
        return node.with_extent(start, self.i)

    def _parse_init_list(self) -> InitList:
        start = self.i
        self._expect_punct("{")
        items: list[Expr] = []
        while not self._check_punct("}") and not self._at_end():
            if self._check_punct("{"):
                items.append(self._parse_init_list())
            else:
                items.append(self.parse_assignment())
            if not self._match_punct(","):
                break
        self._expect_punct("}")
        return InitList(items=items).with_extent(start, self.i)

    # -- statements -------------------------------------------------------------

    def parse_compound(self) -> CompoundStmt:
        start = self.i
        self._expect_punct("{")
        stmts: list[Node] = []
        while not self._check_punct("}") and not self._at_end():
            # statement-list metavariable covering the whole remaining body
            tok = self._tok()
            if (self.pattern_mode and tok.kind is TokenKind.IDENT
                    and self._mv_kind(tok.value) == "statement list"
                    and self._tok(1).is_punct("}")):
                s = self.i
                self._advance()
                stmts.append(MetaStmtList(name=tok.value).with_extent(s, self.i))
                continue
            before = self.i
            try:
                stmts.append(self.parse_statement())
            except CParseError:
                if not self.tolerant:
                    raise
                stmts.append(self._recover_raw_stmt(before))
            if self.i == before:
                self._advance()
        self._expect_punct("}")
        node = CompoundStmt(stmts=stmts)
        return node.with_extent(start, self.i)

    def parse_statement(self) -> Node:
        tok = self._tok()
        start = self.i

        if tok.kind is TokenKind.DIRECTIVE:
            return self.parse_directive()
        if tok.kind is TokenKind.DOTS:
            self._advance()
            return DotsStmt().with_extent(start, self.i)
        if tok.kind is TokenKind.DISJ_OPEN:
            return self._parse_group(self._parse_group_branch_stmt)
        if tok.is_punct("{"):
            return self.parse_compound()
        if tok.is_punct(";"):
            self._advance()
            return EmptyStmt().with_extent(start, self.i)

        if tok.kind is TokenKind.IDENT:
            kw = tok.value
            if kw == "if":
                return self._parse_if()
            if kw == "for":
                return self._parse_for()
            if kw == "while":
                return self._parse_while()
            if kw == "do":
                return self._parse_do()
            if kw == "return":
                self._advance()
                value = None
                if not self._check_punct(";"):
                    value = self.parse_expression()
                self._expect_punct(";")
                return ReturnStmt(value=value).with_extent(start, self.i)
            if kw == "break":
                self._advance()
                self._expect_punct(";")
                return BreakStmt().with_extent(start, self.i)
            if kw == "continue":
                self._advance()
                self._expect_punct(";")
                return ContinueStmt().with_extent(start, self.i)
            if kw in ("switch", "goto", "case", "default"):
                if not self.tolerant:
                    raise self._error(f"unsupported statement keyword {kw!r}")
                return self._recover_raw_stmt(start)
            if kw == "typedef":
                decl = self._parse_typedef()
                if isinstance(decl, Declaration):
                    return DeclStmt(decl=decl).with_extent(start, self.i)
                return decl

            # SmPL statement metavariable, optionally with a position
            mv = self._mv_kind(kw)
            if self.pattern_mode and mv == "statement":
                self._advance()
                positions = self._parse_position_suffix()
                node = MetaStmt(name=kw)
                node.pos_metavars = positions
                self._match_punct(";")
                return node.with_extent(start, self.i)
            if self.pattern_mode and mv == "statement list":
                self._advance()
                return MetaStmtList(name=kw).with_extent(start, self.i)

        # declaration?
        if self.looks_like_declaration():
            save = self.i
            try:
                specifiers: list[str] = []
                while (self._tok().kind is TokenKind.IDENT
                        and self._tok().value in SPECIFIER_KEYWORDS):
                    specifiers.append(self._advance().value)
                # the heuristic above already decided this is a declaration,
                # so an unknown identifier in type position is a type name
                ty = self.parse_type(allow_unknown=True)
                decl = self._parse_declaration_tail(specifiers=specifiers, ty=ty, start=start)
                return DeclStmt(decl=decl).with_extent(start, self.i)
            except CParseError:
                self.i = save  # fall back to expression statement

        # expression statement
        expr = self.parse_expression()
        has_semi = True
        if not self._match_punct(";"):
            nxt = self._tok()
            if self.pattern_mode and (nxt.kind in (TokenKind.EOF, TokenKind.DISJ_OR,
                                                   TokenKind.CONJ_AND, TokenKind.DISJ_CLOSE)
                                      or nxt.is_punct("}")):
                has_semi = False
            else:
                raise self._error("expected ';' after expression")
        return ExprStmt(expr=expr, has_semicolon=has_semi).with_extent(start, self.i)

    def _parse_position_suffix(self) -> tuple[str, ...]:
        positions: list[str] = []
        while (self._check_punct("@") and self._tok(1).kind is TokenKind.IDENT
               and self._mv_kind(self._tok(1).value) == "position"):
            self._advance()
            positions.append(self._advance().value)
        return tuple(positions)

    def _parse_if(self) -> IfStmt:
        start = self.i
        self._advance()
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        then = self.parse_statement()
        orelse = None
        if self._check_ident("else"):
            self._advance()
            orelse = self.parse_statement()
        return IfStmt(cond=cond, then=then, orelse=orelse).with_extent(start, self.i)

    def _parse_while(self) -> WhileStmt:
        start = self.i
        self._advance()
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        body = self.parse_statement()
        return WhileStmt(cond=cond, body=body).with_extent(start, self.i)

    def _parse_do(self) -> DoWhileStmt:
        start = self.i
        self._advance()
        body = self.parse_statement()
        if not self._check_ident("while"):
            raise self._error("expected 'while' after do-body")
        self._advance()
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return DoWhileStmt(body=body, cond=cond).with_extent(start, self.i)

    def _parse_for(self) -> Node:
        start = self.i
        self._advance()
        self._expect_punct("(")

        # C++ range-for: ``for (T &x : arr)``
        if self.options.is_cxx or self.pattern_mode:
            save = self.i
            rf = self._try_parse_range_for_header(start)
            if rf is not None:
                return rf
            self.i = save

        init: Node | None = None
        if self._check_punct(";"):
            self._advance()
        elif self._tok().kind is TokenKind.DOTS:
            s = self.i
            self._advance()
            init = DotsExpr().with_extent(s, self.i)
            self._expect_punct(";")
        elif self.looks_like_declaration():
            s = self.i
            specifiers: list[str] = []
            ty = self.parse_type()
            decl = self._parse_declaration_tail(specifiers=specifiers, ty=ty, start=s)
            init = DeclStmt(decl=decl).with_extent(s, self.i)
        else:
            s = self.i
            expr = self.parse_expression()
            self._expect_punct(";")
            init = ExprStmt(expr=expr).with_extent(s, self.i)

        cond: Expr | None = None
        if not self._check_punct(";"):
            if self._tok().kind is TokenKind.DOTS:
                s = self.i
                self._advance()
                cond = DotsExpr().with_extent(s, self.i)
            else:
                cond = self.parse_expression()
        self._expect_punct(";")

        step: Expr | None = None
        if not self._check_punct(")"):
            if self._tok().kind is TokenKind.DOTS:
                s = self.i
                self._advance()
                step = DotsExpr().with_extent(s, self.i)
            else:
                step = self._parse_comma_list()
        self._expect_punct(")")
        body = self.parse_statement()
        return ForStmt(init=init, cond=cond, step=step, body=body).with_extent(start, self.i)

    def _try_parse_range_for_header(self, start: int) -> Optional[RangeForStmt]:
        try:
            if not (self._tok().kind is TokenKind.IDENT and self._is_type_start(self._tok())):
                return None
            ty = self.parse_type()
            pointer = ""
            reference = False
            while self._check_punct("*", "&"):
                if self._advance().value == "*":
                    pointer += "*"
                else:
                    reference = True
            if self._tok().kind is not TokenKind.IDENT:
                return None
            var = self._advance().value
            if not self._check_punct(":"):
                return None
            self._advance()
            iterable = self.parse_expression()
            self._expect_punct(")")
            body = self.parse_statement()
            return RangeForStmt(type=ty, reference=reference, pointer=pointer, var=var,
                                iterable=iterable, body=body).with_extent(start, self.i)
        except CParseError:
            return None

    def _parse_comma_list(self) -> Expr:
        start = self.i
        first = self.parse_assignment()
        if not self._check_punct(","):
            return first
        items = [first]
        while self._match_punct(","):
            items.append(self.parse_assignment())
        return CommaExpr(items=items).with_extent(start, self.i)

    # -- expressions --------------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> Expr:
        start = self.i
        left = self._parse_ternary()
        tok = self._tok()
        if tok.kind is TokenKind.PUNCT and tok.value in ASSIGN_OPS:
            op = self._advance().value
            if self._check_punct("{"):
                value: Expr = self._parse_init_list()
            else:
                value = self.parse_assignment()
            return Assignment(op=op, target=left, value=value).with_extent(start, self.i)
        return left

    def _parse_ternary(self) -> Expr:
        start = self.i
        cond = self._parse_binary(0)
        if self._check_punct("?"):
            self._advance()
            then = self.parse_assignment()
            self._expect_punct(":")
            orelse = self.parse_assignment()
            return Ternary(cond=cond, then=then, orelse=orelse).with_extent(start, self.i)
        return cond

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        start = self.i
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while True:
            tok = self._tok()
            if tok.kind is TokenKind.PUNCT and tok.value in ops:
                # don't steal '>' that closes a kernel-launch chevron or '&'
                # that introduces an SmPL conjunction marker (those are
                # different token kinds, so no special case needed).
                op = self._advance().value
                right = self._parse_binary(level + 1)
                left = BinaryOp(op=op, left=left, right=right).with_extent(start, self.i)
            else:
                break
        return left

    def _parse_unary(self) -> Expr:
        start = self.i
        tok = self._tok()
        if tok.kind is TokenKind.PUNCT and tok.value in UNARY_OPS:
            op = self._advance().value
            operand = self._parse_unary()
            return UnaryOp(op=op, operand=operand, prefix=True).with_extent(start, self.i)
        if tok.is_ident("sizeof"):
            self._advance()
            if self._check_punct("(") and self._is_type_start(self._tok(1)):
                self._advance()
                ty = self.parse_type()
                while self._check_punct("*"):
                    ty.parts.append("*")
                    self._advance()
                self._expect_punct(")")
                return SizeofExpr(arg=ty).with_extent(start, self.i)
            operand = self._parse_unary()
            return SizeofExpr(arg=operand).with_extent(start, self.i)
        # cast expression
        if self._check_punct("(") and self._is_type_start(self._tok(1)):
            save = self.i
            try:
                self._advance()
                ty = self.parse_type()
                while self._check_punct("*"):
                    ty.parts.append("*")
                    self._advance()
                if self._check_punct(")"):
                    self._advance()
                    nxt = self._tok()
                    if (nxt.kind in (TokenKind.IDENT, TokenKind.NUMBER, TokenKind.STRING,
                                     TokenKind.CHAR)
                            or nxt.is_punct("(", "*", "&", "-", "+", "!", "~")):
                        expr = self._parse_unary()
                        return Cast(type=ty, expr=expr).with_extent(start, self.i)
                self.i = save
            except CParseError:
                self.i = save
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        start = self.i
        expr = self._parse_primary()
        while True:
            tok = self._tok()
            if tok.is_punct("("):
                self._advance()
                args = self._parse_call_args()
                self._expect_punct(")")
                expr = Call(func=expr, args=args).with_extent(start, self.i)
            elif tok.is_punct("["):
                self._advance()
                indices: list[Expr] = []
                if not self._check_punct("]"):
                    while True:
                        indices.append(self._parse_arg_element())
                        if not self._match_punct(","):
                            break
                self._expect_punct("]")
                expr = Subscript(base=expr, indices=indices).with_extent(start, self.i)
            elif tok.is_punct(".", "->"):
                op = self._advance().value
                name = self._expect_ident().value
                expr = Member(base=expr, op=op, name=name).with_extent(start, self.i)
            elif tok.is_punct("++", "--"):
                op = self._advance().value
                expr = UnaryOp(op=op, operand=expr, prefix=False).with_extent(start, self.i)
            elif tok.is_punct("<<<"):
                self._advance()
                config: list[Expr] = []
                while not self._check_punct(">>>") and not self._at_end():
                    config.append(self._parse_arg_element())
                    if not self._match_punct(","):
                        break
                self._expect_punct(">>>")
                self._expect_punct("(")
                args = self._parse_call_args()
                self._expect_punct(")")
                expr = KernelLaunch(func=expr, config=config, args=args) \
                    .with_extent(start, self.i)
            else:
                break
        return expr

    def _parse_call_args(self) -> list[Expr]:
        args: list[Expr] = []
        if self._check_punct(")"):
            return args
        while True:
            args.append(self._parse_arg_element())
            if not self._match_punct(","):
                break
        return args

    def _parse_primary(self) -> Expr:
        tok = self._tok()
        start = self.i

        if tok.kind is TokenKind.DOTS:
            self._advance()
            return DotsExpr().with_extent(start, self.i)
        if tok.kind is TokenKind.DISJ_OPEN:
            return self._parse_group(self.parse_assignment)  # type: ignore[return-value]
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            category = "float" if any(c in tok.value for c in ".eE") and not tok.value.startswith("0x") else "int"
            return Literal(value=tok.value, category=category).with_extent(start, self.i)
        if tok.kind is TokenKind.STRING:
            self._advance()
            return Literal(value=tok.value, category="string").with_extent(start, self.i)
        if tok.kind is TokenKind.CHAR:
            self._advance()
            return Literal(value=tok.value, category="char").with_extent(start, self.i)
        if tok.is_punct("("):
            self._advance()
            inner = self.parse_expression()
            self._expect_punct(")")
            return Paren(expr=inner).with_extent(start, self.i)
        if tok.is_punct("[") and self.options.is_cxx:
            lam = self._try_parse_lambda(start)
            if lam is not None:
                return lam
        if tok.is_punct("{"):
            return self._parse_init_list()
        if tok.kind is TokenKind.IDENT:
            if tok.value in ("true", "false"):
                self._advance()
                return Literal(value=tok.value, category="bool").with_extent(start, self.i)
            if tok.value in ("NULL", "nullptr"):
                self._advance()
                return Literal(value=tok.value, category="null").with_extent(start, self.i)
            self._advance()
            name = tok.value
            while self._check_punct("::") and self._tok(1).kind is TokenKind.IDENT:
                self._advance()
                name += "::" + self._advance().value
            ident = Ident(name=name)
            ident.with_extent(start, self.i)
            positions = self._parse_position_suffix()
            if positions:
                ident.pos_metavars = positions
                ident.with_extent(start, self.i)
            return ident
        raise self._error(f"unexpected token {tok.value!r} in expression")

    def _try_parse_lambda(self, start: int) -> Optional[Lambda]:
        save = self.i
        try:
            self._expect_punct("[")
            cap_start = self._tok().offset
            depth = 1
            cap_end = cap_start
            while depth > 0 and not self._at_end():
                t = self._advance()
                if t.is_punct("["):
                    depth += 1
                elif t.is_punct("]"):
                    depth -= 1
                    if depth == 0:
                        cap_end = t.offset
                        break
                cap_end = t.end
            capture = self.source.text[cap_start:cap_end]
            params: ParamList | None = None
            if self._check_punct("("):
                params = self.parse_param_list()
            if not self._check_punct("{"):
                self.i = save
                return None
            body = self.parse_compound()
            return Lambda(capture=capture, params=params, body=body).with_extent(start, self.i)
        except CParseError:
            self.i = save
            return None


# ---------------------------------------------------------------------------
# convenience entry points
# ---------------------------------------------------------------------------

def parse_source(text: str, name: str = "<string>",
                 options: SpatchOptions = DEFAULT_OPTIONS,
                 metavars: dict[str, str] | None = None,
                 smpl_mode: bool = False,
                 tolerant: bool = True) -> ParseTree:
    """Tokenize and parse ``text`` into a :class:`ParseTree`."""
    source = SourceFile(name=name, text=text)
    tokens = Lexer(source, smpl_mode=smpl_mode).tokenize()
    parser = CParser(tokens, source, options=options, metavars=metavars, tolerant=tolerant)
    return parser.parse_translation_unit()


def parse_tokens(tokens: Sequence[Token], source: SourceFile,
                 options: SpatchOptions = DEFAULT_OPTIONS,
                 metavars: dict[str, str] | None = None,
                 tolerant: bool = True) -> CParser:
    """Build a parser over an existing token stream (used by the SmPL side,
    which lexes pattern slices itself to attach annotations)."""
    return CParser(tokens, source, options=options, metavars=metavars, tolerant=tolerant)
