"""Source file abstraction: text, line maps and locations.

Semantic patches produce *textual* edits against the original file so that
untouched code is preserved byte-for-byte; everything that needs to convert
between byte offsets and line/column coordinates goes through
:class:`SourceFile`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, order=True)
class Location:
    """A position inside a source file (1-based line, 0-based column)."""

    line: int
    col: int
    offset: int = 0
    filename: str = "<string>"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.filename}:{self.line}:{self.col}"


@dataclass
class SourceFile:
    """A named chunk of source text with fast offset<->line/column mapping."""

    name: str
    text: str
    _line_starts: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._line_starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                self._line_starts.append(i + 1)

    # -- basic queries ----------------------------------------------------

    @property
    def num_lines(self) -> int:
        """Number of physical lines (a trailing newline does not add one)."""
        n = len(self._line_starts)
        if self.text.endswith("\n") or not self.text:
            return n - 1 if self.text else 0
        return n

    def line_start(self, line: int) -> int:
        """Byte offset at which 1-based ``line`` starts."""
        return self._line_starts[line - 1]

    def line_end(self, line: int) -> int:
        """Byte offset one past the last character of ``line`` (excl. newline)."""
        if line < len(self._line_starts):
            end = self._line_starts[line] - 1
        else:
            end = len(self.text)
        return end

    def line_text(self, line: int) -> str:
        """The text of the 1-based ``line`` without its newline."""
        return self.text[self.line_start(line):self.line_end(line)]

    def lines(self) -> Iterator[str]:
        """Iterate over the lines of the file (without newlines)."""
        for i in range(1, max(self.num_lines, 0) + 1):
            yield self.line_text(i)

    # -- offset <-> location ----------------------------------------------

    def location(self, offset: int) -> Location:
        """Convert a byte offset into a :class:`Location`."""
        offset = max(0, min(offset, len(self.text)))
        line = bisect.bisect_right(self._line_starts, offset)
        col = offset - self._line_starts[line - 1]
        return Location(line=line, col=col, offset=offset, filename=self.name)

    def offset(self, line: int, col: int = 0) -> int:
        """Convert a 1-based line and 0-based column into a byte offset."""
        return self.line_start(line) + col

    def indentation_of_line(self, line: int) -> str:
        """Leading whitespace of the given 1-based line."""
        text = self.line_text(line)
        return text[: len(text) - len(text.lstrip(" \t"))]

    def indentation_at(self, offset: int) -> str:
        """Leading whitespace of the line containing ``offset``."""
        return self.indentation_of_line(self.location(offset).line)

    # -- misc ---------------------------------------------------------------

    def slice(self, start: int, end: int) -> str:
        """Return ``text[start:end]`` (clamped)."""
        return self.text[max(0, start):min(len(self.text), end)]

    def count_loc(self) -> int:
        """Count non-blank, non-comment-only lines (a rough LoC metric)."""
        loc = 0
        in_block_comment = False
        for line in self.lines():
            stripped = line.strip()
            if in_block_comment:
                if "*/" in stripped:
                    in_block_comment = False
                    stripped = stripped.split("*/", 1)[1].strip()
                else:
                    continue
            if not stripped:
                continue
            if stripped.startswith("//"):
                continue
            if stripped.startswith("/*"):
                if "*/" not in stripped:
                    in_block_comment = True
                continue
            loc += 1
        return loc

    @classmethod
    def from_path(cls, path, name: str | None = None) -> "SourceFile":
        """Read a file from disk."""
        import pathlib

        p = pathlib.Path(path)
        return cls(name=name or str(p), text=p.read_text())
