"""Pretty printer: turn AST nodes back into C/C++ source text.

The transformation engine does *not* reprint matched files (it performs
byte-level edits on the original text, as Coccinelle does), so this module is
used for: rendering synthetic code in tests, printing bound metavariable
values in reports, the mini interpreter's diagnostics, and round-trip
property tests of the parser.
"""

from __future__ import annotations

from .ast_nodes import (
    AttributeSpec, Assignment, BinaryOp, BreakStmt, Call, Cast, CommaExpr,
    CompoundStmt, Conjunction, ContinueStmt, Declaration, Declarator,
    DeclStmt, DefineDirective, Disjunction, DoWhileStmt, DotsExpr, DotsParam,
    DotsStmt, EmptyStmt, ExprStmt, ForStmt, FunctionDef, Ident, IfStmt,
    IncludeDirective, InitList, KernelLaunch, Lambda, Literal, Member,
    MetaExprList, MetaParamList, MetaStmt, MetaStmtList, Node, OtherDirective,
    Param, ParamList, Paren, PragmaDirective, RangeForStmt, RawDecl, RawStmt,
    ReturnStmt, SizeofExpr, StructDef, Subscript, Ternary, TranslationUnit,
    TypeName, UnaryOp, WhileStmt,
)


class CPrinter:
    """Render AST nodes as source text with simple, consistent formatting."""

    def __init__(self, indent: str = "    "):
        self.indent_unit = indent

    # -- public API ---------------------------------------------------------

    def print(self, node: Node) -> str:
        return self._print(node, 0)

    __call__ = print

    # -- dispatch -----------------------------------------------------------

    def _print(self, node: Node, level: int) -> str:
        method = getattr(self, f"_print_{type(node).__name__}", None)
        if method is None:
            raise TypeError(f"CPrinter cannot print node of kind {node.kind}")
        return method(node, level)

    def _ind(self, level: int) -> str:
        return self.indent_unit * level

    # -- top level ------------------------------------------------------------

    def _print_TranslationUnit(self, node: TranslationUnit, level: int) -> str:
        chunks = [self._print(d, level) for d in node.decls]
        return "\n".join(chunks) + ("\n" if chunks else "")

    def _print_IncludeDirective(self, node: IncludeDirective, level: int) -> str:
        return f"#include {node.header_text}"

    def _print_DefineDirective(self, node: DefineDirective, level: int) -> str:
        return node.raw

    def _print_PragmaDirective(self, node: PragmaDirective, level: int) -> str:
        return f"{self._ind(level)}#pragma {node.text}"

    def _print_OtherDirective(self, node: OtherDirective, level: int) -> str:
        return node.raw

    def _print_RawDecl(self, node: RawDecl, level: int) -> str:
        return node.text

    def _print_StructDef(self, node: StructDef, level: int) -> str:
        head = f"typedef {node.keyword}" if node.is_typedef else node.keyword
        if node.name:
            head += f" {node.name}"
        lines = [head + " {"]
        if node.keyword == "enum":
            inner = ", ".join(node.enumerators)
            lines.append(self._ind(level + 1) + inner)
        else:
            for member in node.members:
                lines.append(self._print(member, level + 1))
        tail = "}"
        if node.is_typedef and node.typedef_name:
            tail += f" {node.typedef_name}"
        lines.append(self._ind(level) + tail + ";")
        return "\n".join(lines)

    def _print_AttributeSpec(self, node: AttributeSpec, level: int) -> str:
        if node.has_args:
            args = ", ".join(self._print(a, 0) for a in node.args)
            return f"__attribute__(({node.name}({args})))"
        return f"__attribute__(({node.name}))"

    def _print_FunctionDef(self, node: FunctionDef, level: int) -> str:
        parts = []
        for attr in node.attributes:
            parts.append(self._print(attr, level))
        head = ""
        if node.specifiers:
            head += " ".join(node.specifiers) + " "
        head += node.return_type.text if node.return_type else "void"
        if node.pointer:
            head += " " + node.pointer
        head += f" {node.name}"
        head += self._print(node.params, level) if node.params else "()"
        if node.is_prototype or node.body is None:
            parts.append(head + ";")
        else:
            parts.append(head)
            parts.append(self._print(node.body, level))
        return "\n".join(self._ind(level) + p if not p.startswith(self._ind(level)) else p
                         for p in parts)

    def _print_ParamList(self, node: ParamList, level: int) -> str:
        if not node.params:
            return "(void)"
        return "(" + ", ".join(self._print(p, 0) for p in node.params) + ")"

    def _print_Param(self, node: Param, level: int) -> str:
        text = node.type.text if node.type else ""
        if node.pointer:
            text += " " + node.pointer
        if node.reference:
            text += " &"
        if node.name:
            text += ("" if text.endswith(("*", "&")) else " ") + node.name
        for dim in node.arrays:
            text += "[" + (self._print(dim, 0) if dim is not None else "") + "]"
        if node.default is not None:
            text += " = " + self._print(node.default, 0)
        return text.strip()

    def _print_DotsParam(self, node: DotsParam, level: int) -> str:
        return "..."

    def _print_MetaParamList(self, node: MetaParamList, level: int) -> str:
        return node.name

    def _print_Declaration(self, node: Declaration, level: int) -> str:
        prefix = ""
        for attr in node.attributes:
            prefix += self._print(attr, 0) + " "
        words = list(node.specifiers)
        if node.type is not None:
            words.append(node.type.text)
        decls = ", ".join(self._print(d, 0) for d in node.declarators)
        return f"{self._ind(level)}{prefix}{' '.join(words)} {decls};"

    def _print_Declarator(self, node: Declarator, level: int) -> str:
        text = node.pointer + ("&" if node.reference else "") + node.name
        for dim in node.arrays:
            text += "[" + (self._print(dim, 0) if dim is not None else "") + "]"
        if node.init is not None:
            text += " = " + self._print(node.init, 0)
        return text

    # -- statements -------------------------------------------------------------

    def _print_CompoundStmt(self, node: CompoundStmt, level: int) -> str:
        lines = [self._ind(level) + "{"]
        for stmt in node.stmts:
            lines.append(self._print(stmt, level + 1))
        lines.append(self._ind(level) + "}")
        return "\n".join(lines)

    def _print_ExprStmt(self, node: ExprStmt, level: int) -> str:
        semi = ";" if node.has_semicolon else ""
        return f"{self._ind(level)}{self._print(node.expr, 0)}{semi}"

    def _print_DeclStmt(self, node: DeclStmt, level: int) -> str:
        return self._print(node.decl, level)

    def _print_IfStmt(self, node: IfStmt, level: int) -> str:
        text = f"{self._ind(level)}if ({self._print(node.cond, 0)})\n"
        text += self._body(node.then, level)
        if node.orelse is not None:
            text += f"\n{self._ind(level)}else\n" + self._body(node.orelse, level)
        return text

    def _body(self, stmt: Node, level: int) -> str:
        if isinstance(stmt, CompoundStmt):
            return self._print(stmt, level)
        return self._print(stmt, level + 1)

    def _print_ForStmt(self, node: ForStmt, level: int) -> str:
        init = ""
        if isinstance(node.init, DeclStmt):
            init = self._print(node.init, 0).strip().rstrip(";")
        elif isinstance(node.init, ExprStmt):
            init = self._print(node.init.expr, 0)
        elif node.init is not None:
            init = self._print(node.init, 0)
        cond = self._print(node.cond, 0) if node.cond is not None else ""
        step = self._print(node.step, 0) if node.step is not None else ""
        head = f"{self._ind(level)}for ({init}; {cond}; {step})"
        return head + "\n" + self._body(node.body, level)

    def _print_RangeForStmt(self, node: RangeForStmt, level: int) -> str:
        ref = " &" if node.reference else (" " + node.pointer if node.pointer else " ")
        head = (f"{self._ind(level)}for ({node.type.text}{ref}{node.var} : "
                f"{self._print(node.iterable, 0)})")
        return head + "\n" + self._body(node.body, level)

    def _print_WhileStmt(self, node: WhileStmt, level: int) -> str:
        return (f"{self._ind(level)}while ({self._print(node.cond, 0)})\n"
                + self._body(node.body, level))

    def _print_DoWhileStmt(self, node: DoWhileStmt, level: int) -> str:
        return (f"{self._ind(level)}do\n" + self._body(node.body, level)
                + f"\n{self._ind(level)}while ({self._print(node.cond, 0)});")

    def _print_ReturnStmt(self, node: ReturnStmt, level: int) -> str:
        if node.value is None:
            return f"{self._ind(level)}return;"
        return f"{self._ind(level)}return {self._print(node.value, 0)};"

    def _print_BreakStmt(self, node: BreakStmt, level: int) -> str:
        return f"{self._ind(level)}break;"

    def _print_ContinueStmt(self, node: ContinueStmt, level: int) -> str:
        return f"{self._ind(level)}continue;"

    def _print_EmptyStmt(self, node: EmptyStmt, level: int) -> str:
        return f"{self._ind(level)};"

    def _print_RawStmt(self, node: RawStmt, level: int) -> str:
        return f"{self._ind(level)}{node.text}"

    def _print_MetaStmt(self, node: MetaStmt, level: int) -> str:
        return f"{self._ind(level)}{node.name}"

    def _print_MetaStmtList(self, node: MetaStmtList, level: int) -> str:
        return f"{self._ind(level)}{node.name}"

    def _print_DotsStmt(self, node: DotsStmt, level: int) -> str:
        return f"{self._ind(level)}..."

    # -- expressions -------------------------------------------------------------

    def _print_Ident(self, node: Ident, level: int) -> str:
        return node.name

    def _print_Literal(self, node: Literal, level: int) -> str:
        return node.value

    def _print_BinaryOp(self, node: BinaryOp, level: int) -> str:
        return f"{self._print(node.left, 0)} {node.op} {self._print(node.right, 0)}"

    def _print_UnaryOp(self, node: UnaryOp, level: int) -> str:
        if node.prefix:
            return f"{node.op}{self._print(node.operand, 0)}"
        return f"{self._print(node.operand, 0)}{node.op}"

    def _print_Assignment(self, node: Assignment, level: int) -> str:
        return f"{self._print(node.target, 0)} {node.op} {self._print(node.value, 0)}"

    def _print_Ternary(self, node: Ternary, level: int) -> str:
        return (f"{self._print(node.cond, 0)} ? {self._print(node.then, 0)}"
                f" : {self._print(node.orelse, 0)}")

    def _print_Call(self, node: Call, level: int) -> str:
        args = ", ".join(self._print(a, 0) for a in node.args)
        return f"{self._print(node.func, 0)}({args})"

    def _print_KernelLaunch(self, node: KernelLaunch, level: int) -> str:
        config = ", ".join(self._print(a, 0) for a in node.config)
        args = ", ".join(self._print(a, 0) for a in node.args)
        return f"{self._print(node.func, 0)}<<<{config}>>>({args})"

    def _print_Subscript(self, node: Subscript, level: int) -> str:
        idx = ", ".join(self._print(i, 0) for i in node.indices)
        return f"{self._print(node.base, 0)}[{idx}]"

    def _print_Member(self, node: Member, level: int) -> str:
        return f"{self._print(node.base, 0)}{node.op}{node.name}"

    def _print_Cast(self, node: Cast, level: int) -> str:
        return f"({node.type.text}){self._print(node.expr, 0)}"

    def _print_Paren(self, node: Paren, level: int) -> str:
        return f"({self._print(node.expr, 0)})"

    def _print_InitList(self, node: InitList, level: int) -> str:
        return "{" + ", ".join(self._print(i, 0) for i in node.items) + "}"

    def _print_CommaExpr(self, node: CommaExpr, level: int) -> str:
        return ", ".join(self._print(i, 0) for i in node.items)

    def _print_SizeofExpr(self, node: SizeofExpr, level: int) -> str:
        if isinstance(node.arg, TypeName):
            return f"sizeof({node.arg.text})"
        return f"sizeof({self._print(node.arg, 0)})"

    def _print_Lambda(self, node: Lambda, level: int) -> str:
        params = self._print(node.params, 0) if node.params else "()"
        body = self._print(node.body, 0) if node.body else "{}"
        return f"[{node.capture}]{params} {body}"

    def _print_TypeName(self, node: TypeName, level: int) -> str:
        return node.text

    def _print_DotsExpr(self, node: DotsExpr, level: int) -> str:
        return "..."

    def _print_MetaExprList(self, node: MetaExprList, level: int) -> str:
        return node.name

    def _print_Disjunction(self, node: Disjunction, level: int) -> str:
        return "\\( " + " \\| ".join(self._print(b, 0) for b in node.branches) + " \\)"

    def _print_Conjunction(self, node: Conjunction, level: int) -> str:
        return "\\( " + " \\& ".join(self._print(b, 0) for b in node.branches) + " \\)"


_DEFAULT_PRINTER = CPrinter()


def to_source(node: Node) -> str:
    """Render ``node`` with the default printer."""
    return _DEFAULT_PRINTER.print(node)
