"""Per-function control-flow graphs.

Coccinelle matches semantic patches against a function's control-flow graph
so that ``...`` respects execution order (e.g. across loop back edges).  Our
sequence matcher works on statement lists (sufficient for every pattern in
the paper), and the CFG built here backs the complementary analyses the
engine and the cookbook expose: loop discovery (which loops does a rule
instrument / rewrite), reachability queries used to validate that inserted
markers enclose the intended region, and simple dominance information used by
the analysis reports.

The graph is kept in plain Python structures; :meth:`CFG.to_networkx` exports
it for clients that want the full algorithm library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .ast_nodes import (
    BreakStmt, CompoundStmt, ContinueStmt, DeclStmt, DoWhileStmt, ExprStmt,
    ForStmt, FunctionDef, IfStmt, Node, PragmaDirective, RangeForStmt,
    ReturnStmt, WhileStmt, RawStmt, EmptyStmt,
)


@dataclass
class CFGNode:
    """One node of the control-flow graph.

    ``kind`` is ``entry``, ``exit``, ``stmt``, ``cond``, ``loop-head`` or
    ``join``; ``stmt`` nodes reference the AST statement they represent.
    """

    index: int
    kind: str
    stmt: Optional[Node] = None
    label: str = ""
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CFGNode({self.index}, {self.kind}, {self.label!r})"


@dataclass
class Loop:
    """A natural loop discovered in the CFG."""

    head: int
    back_edge_from: int
    body: set[int] = field(default_factory=set)
    stmt: Optional[Node] = None


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, function: FunctionDef):
        self.function = function
        self.nodes: list[CFGNode] = []
        self.entry = self._new_node("entry", label="ENTRY")
        self.exit = self._new_node("exit", label="EXIT")
        self._break_targets: list[int] = []
        self._continue_targets: list[int] = []
        if function.body is not None and isinstance(function.body, CompoundStmt):
            last = self._build_seq(function.body.stmts, self.entry.index)
            self._add_edge(last, self.exit.index)
        else:
            self._add_edge(self.entry.index, self.exit.index)

    # -- construction ---------------------------------------------------------

    def _new_node(self, kind: str, stmt: Node | None = None, label: str = "") -> CFGNode:
        node = CFGNode(index=len(self.nodes), kind=kind, stmt=stmt, label=label)
        self.nodes.append(node)
        return node

    def _add_edge(self, src: int, dst: int) -> None:
        if src < 0 or dst < 0:
            return
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
        if src not in self.nodes[dst].preds:
            self.nodes[dst].preds.append(src)

    def _build_seq(self, stmts: list[Node], pred: int) -> int:
        """Wire a statement sequence after node ``pred``; return the last node
        (or -1 if control cannot fall through)."""
        current = pred
        for stmt in stmts:
            if current < 0:
                # unreachable code still gets nodes, but no incoming edge
                current = -1
            current = self._build_stmt(stmt, current)
        return current

    def _build_stmt(self, stmt: Node, pred: int) -> int:
        if isinstance(stmt, CompoundStmt):
            return self._build_seq(stmt.stmts, pred)

        if isinstance(stmt, IfStmt):
            cond = self._new_node("cond", stmt=stmt, label="if")
            self._add_edge(pred, cond.index)
            then_last = self._build_stmt(stmt.then, cond.index)
            join = self._new_node("join", label="endif")
            self._add_edge(then_last, join.index)
            if stmt.orelse is not None:
                else_last = self._build_stmt(stmt.orelse, cond.index)
                self._add_edge(else_last, join.index)
            else:
                self._add_edge(cond.index, join.index)
            return join.index

        if isinstance(stmt, (ForStmt, WhileStmt, RangeForStmt)):
            head = self._new_node("loop-head", stmt=stmt, label=type(stmt).__name__)
            self._add_edge(pred, head.index)
            after = self._new_node("join", label="after-loop")
            self._break_targets.append(after.index)
            self._continue_targets.append(head.index)
            body = stmt.body
            body_last = self._build_stmt(body, head.index) if body is not None else head.index
            self._add_edge(body_last, head.index)  # back edge
            self._add_edge(head.index, after.index)
            self._break_targets.pop()
            self._continue_targets.pop()
            return after.index

        if isinstance(stmt, DoWhileStmt):
            head = self._new_node("loop-head", stmt=stmt, label="do")
            self._add_edge(pred, head.index)
            after = self._new_node("join", label="after-loop")
            self._break_targets.append(after.index)
            self._continue_targets.append(head.index)
            body_last = self._build_stmt(stmt.body, head.index) if stmt.body is not None else head.index
            self._add_edge(body_last, head.index)
            self._add_edge(head.index, after.index)
            self._break_targets.pop()
            self._continue_targets.pop()
            return after.index

        if isinstance(stmt, ReturnStmt):
            node = self._new_node("stmt", stmt=stmt, label="return")
            self._add_edge(pred, node.index)
            self._add_edge(node.index, self.exit.index)
            return -1

        if isinstance(stmt, BreakStmt):
            node = self._new_node("stmt", stmt=stmt, label="break")
            self._add_edge(pred, node.index)
            if self._break_targets:
                self._add_edge(node.index, self._break_targets[-1])
            return -1

        if isinstance(stmt, ContinueStmt):
            node = self._new_node("stmt", stmt=stmt, label="continue")
            self._add_edge(pred, node.index)
            if self._continue_targets:
                self._add_edge(node.index, self._continue_targets[-1])
            return -1

        # plain statements: expressions, declarations, pragmas, raw, empty
        label = type(stmt).__name__
        node = self._new_node("stmt", stmt=stmt, label=label)
        self._add_edge(pred, node.index)
        return node.index

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def successors(self, index: int) -> list[int]:
        return list(self.nodes[index].succs)

    def predecessors(self, index: int) -> list[int]:
        return list(self.nodes[index].preds)

    def statement_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if node.stmt is not None:
                yield node

    def node_for_statement(self, stmt: Node) -> Optional[CFGNode]:
        for node in self.nodes:
            if node.stmt is stmt:
                return node
        return None

    def reachable_from(self, index: int) -> set[int]:
        """All node indices reachable from ``index`` (including itself)."""
        seen: set[int] = set()
        stack = [index]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.nodes[cur].succs)
        return seen

    def on_every_path_between(self, start: int, end: int, through: int) -> bool:
        """True when every path ``start -> end`` passes through ``through``
        (a weak form of the path-sensitivity Coccinelle's dots provide)."""
        if through in (start, end):
            return True
        seen: set[int] = set()
        stack = [start]
        while stack:
            cur = stack.pop()
            if cur == through:
                continue
            if cur == end:
                return False
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.nodes[cur].succs)
        return True

    def back_edges(self) -> list[tuple[int, int]]:
        """Edges ``(src, dst)`` where ``dst`` is an ancestor of ``src`` in the
        DFS tree rooted at the entry node (loop back edges)."""
        color: dict[int, int] = {}
        edges: list[tuple[int, int]] = []

        def dfs(u: int) -> None:
            color[u] = 1
            for v in self.nodes[u].succs:
                if color.get(v, 0) == 0:
                    dfs(v)
                elif color.get(v) == 1:
                    edges.append((u, v))
            color[u] = 2

        dfs(self.entry.index)
        return edges

    def natural_loops(self) -> list[Loop]:
        """Natural loops: for each back edge ``n -> h``, the set of nodes that
        can reach ``n`` without going through ``h``."""
        loops: list[Loop] = []
        for src, head in self.back_edges():
            body = {head, src}
            stack = [src]
            while stack:
                cur = stack.pop()
                for pred in self.nodes[cur].preds:
                    if pred not in body:
                        body.add(pred)
                        stack.append(pred)
            loops.append(Loop(head=head, back_edge_from=src, body=body,
                              stmt=self.nodes[head].stmt))
        return loops

    def dominators(self) -> dict[int, set[int]]:
        """Classic iterative dominator computation (small functions only)."""
        all_nodes = set(range(len(self.nodes)))
        dom: dict[int, set[int]] = {n: set(all_nodes) for n in all_nodes}
        dom[self.entry.index] = {self.entry.index}
        changed = True
        while changed:
            changed = False
            for n in all_nodes - {self.entry.index}:
                preds = self.nodes[n].preds
                if preds:
                    new = set.intersection(*(dom[p] for p in preds)) | {n}
                else:
                    new = {n}
                if new != dom[n]:
                    dom[n] = new
                    changed = True
        return dom

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` (node attribute ``kind``)."""
        import networkx as nx

        g = nx.DiGraph()
        for node in self.nodes:
            g.add_node(node.index, kind=node.kind, label=node.label)
        for node in self.nodes:
            for succ in node.succs:
                g.add_edge(node.index, succ)
        return g


def build_cfg(function: FunctionDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    return CFG(function)
