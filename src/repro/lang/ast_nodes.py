"""AST node classes for the C/C++ subset and for SmPL pattern code.

Design notes
------------
* Every node records the half-open token-index range ``[start, end)`` it
  covers in the token list it was parsed from.  The transformation stage maps
  pattern tokens onto code tokens through these extents, so edits are
  byte-accurate and untouched code survives verbatim.
* Pattern-only nodes (metavariable references, dots, disjunctions) live in the
  same hierarchy: the same recursive-descent parser parses both real code and
  the minus-slice of a semantic patch, it simply knows which identifiers are
  metavariables when parsing a pattern.
* :func:`iter_child_nodes` provides generic traversal used by the matcher,
  the CFG builder, the interpreter and the analysis passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dc_fields
from typing import Iterator, Optional


# ---------------------------------------------------------------------------
# base node
# ---------------------------------------------------------------------------

@dataclass
class Node:
    """Base class of all AST nodes."""

    #: half-open token index range covered by this node
    start: int = field(default=-1, kw_only=True)
    end: int = field(default=-1, kw_only=True)
    #: names of SmPL position metavariables attached with ``@p`` (patterns only)
    pos_metavars: tuple[str, ...] = field(default=(), kw_only=True)

    @property
    def kind(self) -> str:
        """Node kind name (the class name); handy for reports and debugging."""
        return type(self).__name__

    def with_extent(self, start: int, end: int) -> "Node":
        self.start = start
        self.end = end
        return self


#: semantic field names per node class — ``dataclasses.fields`` re-derives
#: the tuple on every call, which made generic traversal the hottest part of
#: tree walking; the field list of a class never changes, so cache it
_CHILD_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    names = _CHILD_FIELD_NAMES.get(cls)
    if names is None:
        names = tuple(f.name for f in dc_fields(cls)
                      if f.name not in ("start", "end", "pos_metavars"))
        _CHILD_FIELD_NAMES[cls] = names
    return names


def iter_child_nodes(node: Node) -> Iterator[Node]:
    """Yield the direct child nodes of ``node`` in field order."""
    for name in _field_names(type(node)):
        value = getattr(node, name)
        if isinstance(value, Node):
            yield value
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Node):
                    yield item


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of ``node`` and all its descendants."""
    stack = [node]
    pop = stack.pop
    while stack:
        n = pop()
        yield n
        children = []
        for name in _field_names(type(n)):
            value = getattr(n, name)
            if isinstance(value, Node):
                children.append(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        children.append(item)
        stack.extend(reversed(children))


def child_fields(node: Node) -> Iterator[tuple[str, object]]:
    """Yield ``(field_name, value)`` pairs for the node's semantic fields."""
    for name in _field_names(type(node)):
        yield name, getattr(node, name)


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------

@dataclass
class TypeName(Node):
    """A (possibly qualified) type: ``const double``, ``struct particle``,
    ``std::size_t``, ``__half`` ...

    ``parts`` are the whitespace-separated words of the base type;
    pointer/reference markers live on the declarator/parameter instead, which
    matches how the paper's patterns mention types (a single metavariable
    ``T`` covering the base type).
    """

    parts: list[str] = field(default_factory=list)

    @property
    def text(self) -> str:
        return " ".join(self.parts)

    @property
    def is_single_identifier(self) -> bool:
        return len(self.parts) == 1

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.text


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    """Base class of expressions."""


@dataclass
class Ident(Expr):
    """An identifier (possibly qualified, e.g. ``std::find``)."""

    name: str = ""


@dataclass
class Literal(Expr):
    """A literal constant.  ``category`` is one of int/float/string/char/bool."""

    value: str = ""
    category: str = "int"


@dataclass
class BinaryOp(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class UnaryOp(Expr):
    op: str = ""
    operand: Expr | None = None
    prefix: bool = True


@dataclass
class Assignment(Expr):
    """Assignment, including compound assignment (``+=`` etc.)."""

    op: str = "="
    target: Expr | None = None
    value: Expr | None = None


@dataclass
class Ternary(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    orelse: Expr | None = None


@dataclass
class Call(Expr):
    func: Expr | None = None
    args: list[Expr] = field(default_factory=list)


@dataclass
class KernelLaunch(Expr):
    """CUDA triple-chevron kernel launch ``k<<<b, t, x, y>>>(args)``."""

    func: Expr | None = None
    config: list[Expr] = field(default_factory=list)
    args: list[Expr] = field(default_factory=list)


@dataclass
class Subscript(Expr):
    """Array subscript.  ``a[x]`` has one index; the C++23 multi-index
    subscript ``a[x, y, z]`` carries them all (the target of the paper's
    mdspan rule)."""

    base: Expr | None = None
    indices: list[Expr] = field(default_factory=list)


@dataclass
class Member(Expr):
    """Member access ``a.b`` / ``a->b``."""

    base: Expr | None = None
    op: str = "."
    name: str = ""


@dataclass
class Cast(Expr):
    type: TypeName | None = None
    expr: Expr | None = None


@dataclass
class Paren(Expr):
    expr: Expr | None = None


@dataclass
class InitList(Expr):
    items: list[Expr] = field(default_factory=list)


@dataclass
class CommaExpr(Expr):
    items: list[Expr] = field(default_factory=list)


@dataclass
class SizeofExpr(Expr):
    arg: Node | None = None  # TypeName or Expr


@dataclass
class Lambda(Expr):
    """A C++ lambda (simplified): capture text, parameters, body."""

    capture: str = ""
    params: "ParamList | None" = None
    body: "CompoundStmt | None" = None


@dataclass
class DotsExpr(Expr):
    """SmPL ``...`` in expression/argument position (matches anything)."""


@dataclass
class MetaExprList(Expr):
    """SmPL ``expression list`` metavariable used in argument position."""

    name: str = ""


@dataclass
class Disjunction(Node):
    """SmPL disjunction ``\\( A \\| B \\)`` (expression or statement branches)."""

    branches: list[Node] = field(default_factory=list)


@dataclass
class Conjunction(Node):
    """SmPL conjunction ``\\( A \\& B \\)``; all branches must match the same
    code node."""

    branches: list[Node] = field(default_factory=list)


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------

@dataclass
class AttributeSpec(Node):
    """``__attribute__((name(args...)))`` (one attribute inside the double
    parentheses).  ``args`` may contain :class:`DotsExpr` in patterns."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)
    has_args: bool = True


@dataclass
class Declarator(Node):
    """One declarator of a declaration: pointer stars, the name, array
    dimensions and an optional initializer."""

    pointer: str = ""
    reference: bool = False
    name: str = ""
    arrays: list[Optional[Expr]] = field(default_factory=list)
    init: Expr | None = None


@dataclass
class Declaration(Node):
    """A variable/typedef declaration (at file scope or as a statement)."""

    specifiers: list[str] = field(default_factory=list)
    type: TypeName | None = None
    declarators: list[Declarator] = field(default_factory=list)
    attributes: list[AttributeSpec] = field(default_factory=list)
    is_typedef: bool = False


@dataclass
class Param(Node):
    """A single function parameter."""

    type: TypeName | None = None
    pointer: str = ""
    reference: bool = False
    name: str = ""
    arrays: list[Optional[Expr]] = field(default_factory=list)
    default: Expr | None = None


@dataclass
class DotsParam(Node):
    """``...`` in a parameter list: C varargs or an SmPL wildcard."""


@dataclass
class MetaParamList(Node):
    """SmPL ``parameter list`` metavariable (e.g. ``PL``)."""

    name: str = ""


@dataclass
class ParamList(Node):
    params: list[Node] = field(default_factory=list)


@dataclass
class StructDef(Node):
    """struct/union/enum definition, possibly wrapped in a typedef."""

    keyword: str = "struct"
    name: str = ""
    members: list[Declaration] = field(default_factory=list)
    enumerators: list[str] = field(default_factory=list)
    is_typedef: bool = False
    typedef_name: str = ""


@dataclass
class FunctionDef(Node):
    """A function definition or prototype."""

    attributes: list[AttributeSpec] = field(default_factory=list)
    specifiers: list[str] = field(default_factory=list)
    return_type: TypeName | None = None
    pointer: str = ""
    name: str = ""
    params: ParamList | None = None
    body: "CompoundStmt | MetaStmtList | None" = None
    is_prototype: bool = False


@dataclass
class IncludeDirective(Node):
    """``#include <header>`` or ``#include "header"``."""

    target: str = ""
    system: bool = True
    raw: str = ""

    @property
    def header_text(self) -> str:
        return f"<{self.target}>" if self.system else f'"{self.target}"'


@dataclass
class DefineDirective(Node):
    raw: str = ""


@dataclass
class PragmaDirective(Node):
    """``#pragma ...`` — usable at file scope and in statement position.

    ``text`` is the directive body after the ``#pragma`` keyword with
    whitespace normalised (continuations merged by the lexer), which is what
    ``pragmainfo`` metavariables bind to.
    """

    text: str = ""
    raw: str = ""

    @property
    def words(self) -> list[str]:
        return self.text.split()


@dataclass
class OtherDirective(Node):
    """Any other preprocessor directive, preserved verbatim."""

    raw: str = ""


@dataclass
class RawDecl(Node):
    """An unparsable top-level construct, preserved verbatim (error tolerance)."""

    text: str = ""


@dataclass
class TranslationUnit(Node):
    decls: list[Node] = field(default_factory=list)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    """Base class of statements."""


@dataclass
class CompoundStmt(Stmt):
    stmts: list[Node] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None
    has_semicolon: bool = True


@dataclass
class DeclStmt(Stmt):
    decl: Declaration | None = None


@dataclass
class IfStmt(Stmt):
    cond: Expr | None = None
    then: Node | None = None
    orelse: Node | None = None


@dataclass
class ForStmt(Stmt):
    init: Node | None = None       # DeclStmt, ExprStmt, DotsExpr or None
    cond: Expr | None = None
    step: Expr | None = None
    body: Node | None = None


@dataclass
class RangeForStmt(Stmt):
    """C++ range-for: ``for (T &elem : arr) body``."""

    type: TypeName | None = None
    reference: bool = False
    pointer: str = ""
    var: str = ""
    iterable: Expr | None = None
    body: Node | None = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr | None = None
    body: Node | None = None


@dataclass
class DoWhileStmt(Stmt):
    body: Node | None = None
    cond: Expr | None = None


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class EmptyStmt(Stmt):
    pass


@dataclass
class RawStmt(Stmt):
    """An unparsable statement preserved verbatim (error tolerance)."""

    text: str = ""


@dataclass
class MetaStmt(Stmt):
    """SmPL ``statement`` metavariable in statement position."""

    name: str = ""


@dataclass
class MetaStmtList(Stmt):
    """SmPL ``statement list`` metavariable (e.g. a whole function body)."""

    name: str = ""


@dataclass
class DotsStmt(Stmt):
    """SmPL ``...`` in statement position."""


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

#: Binary operators whose operands may be swapped by the commutativity
#: isomorphism during matching.
COMMUTATIVE_OPS = {"==", "!=", "+", "*", "&", "|", "^", "&&", "||"}

#: Statement classes that control flow treats as branching/looping.
LOOP_STMTS = (ForStmt, WhileStmt, DoWhileStmt, RangeForStmt)


def is_statement(node: Node) -> bool:
    """True for statement nodes, including pragma directives used as
    statements (which is how ``#pragma omp`` lines appear in function
    bodies)."""
    return isinstance(node, (Stmt, PragmaDirective))


def is_expression(node: Node) -> bool:
    return isinstance(node, Expr)


def expressions_of(node: Node) -> Iterator[Expr]:
    """Yield every expression node in the subtree rooted at ``node``."""
    for n in walk(node):
        if isinstance(n, Expr):
            yield n


def statements_of(node: Node) -> Iterator[Node]:
    """Yield every statement node in the subtree rooted at ``node``."""
    for n in walk(node):
        if is_statement(n):
            yield n


def compound_blocks_of(node: Node) -> Iterator[CompoundStmt]:
    """Yield every compound statement in the subtree rooted at ``node``."""
    for n in walk(node):
        if isinstance(n, CompoundStmt):
            yield n


def functions_of(unit: TranslationUnit) -> Iterator[FunctionDef]:
    """Yield every function definition (with a body) in a translation unit."""
    for n in walk(unit):
        if isinstance(n, FunctionDef) and n.body is not None:
            yield n
