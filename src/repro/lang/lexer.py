"""Tokenizer for the C/C++ subset understood by the front end.

The same lexer is reused by the SmPL pattern parser (with
``smpl_mode=True``), which adds a handful of extra tokens: escaped
disjunction delimiters (``\\(``, ``\\|``, ``\\&``, ``\\)``), the position
operator ``@``, the regex-constraint operator ``=~`` and the concatenation
operator ``##`` used by ``fresh identifier`` declarations.

Preprocessor directives are lexed as single :data:`TokenKind.DIRECTIVE`
tokens covering the whole *logical* line (backslash continuations merged),
because semantic patches treat ``#pragma``/``#include`` lines as atomic
pattern elements, exactly as Coccinelle does.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from ..errors import LexError
from .source import SourceFile


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    DIRECTIVE = "directive"
    # SmPL-only kinds
    DOTS = "dots"          # ...
    DISJ_OPEN = "disj_open"    # \( or a column-0 '(' line
    DISJ_OR = "disj_or"        # \| or a column-0 '|' line
    CONJ_AND = "conj_and"      # \& or a column-0 '&' line
    DISJ_CLOSE = "disj_close"  # \) or a column-0 ')' line
    EOF = "eof"


#: Pattern-line annotations used by the SmPL machinery.  Plain C tokens carry
#: ``None``.
ANNOT_CONTEXT = " "
ANNOT_MINUS = "-"
ANNOT_PLUS = "+"


@dataclass
class Token:
    """One lexical token.

    ``offset``/``end`` index into the originating text, which is what the
    transformation stage uses to produce byte-accurate edits.  ``annot`` and
    ``pline`` are only populated for SmPL pattern tokens (the annotation of
    the pattern line the token came from, and that line's index).
    """

    kind: TokenKind
    value: str
    offset: int
    end: int
    line: int
    col: int
    annot: Optional[str] = None
    pline: int = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.value!r}, @{self.line}:{self.col})"

    @property
    def length(self) -> int:
        return self.end - self.offset

    def is_punct(self, *values: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.value in values

    def is_ident(self, *names: str) -> bool:
        if self.kind is not TokenKind.IDENT:
            return False
        return not names or self.value in names

    def with_annotation(self, annot: str, pline: int) -> "Token":
        return replace(self, annot=annot, pline=pline)


# Multi-character punctuators, longest first.  ``<<<``/``>>>`` are the CUDA
# kernel-launch chevrons the paper's CUDA->HIP rules must recognise.
_PUNCTUATORS = [
    "<<<", ">>>",
    "<<=", ">>=", "...", "->*", "::*",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "::", "##", "=~",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "[", "]", "{", "}", ";", ",", ".", "?", ":", "#", "@",
]

_SMPL_ESCAPES = {
    "\\(": TokenKind.DISJ_OPEN,
    "\\|": TokenKind.DISJ_OR,
    "\\&": TokenKind.CONJ_AND,
    "\\)": TokenKind.DISJ_CLOSE,
}

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")


class Lexer:
    """Streaming tokenizer over a :class:`SourceFile`.

    Parameters
    ----------
    source:
        The file to tokenize.
    smpl_mode:
        Enable the SmPL-only tokens (escaped disjunction markers, ``...`` as
        a DOTS token, ``@``/``=~``/``##`` punctuators).  In plain C mode
        ``...`` is also emitted as DOTS (it only occurs in parameter lists as
        varargs, which the parser handles).
    directives_as_tokens:
        Lex ``#``-lines as single DIRECTIVE tokens (the default).  When
        disabled, ``#`` is an ordinary punctuator (used when tokenizing the
        *interior* of a pragma line).
    """

    def __init__(self, source: SourceFile, smpl_mode: bool = False,
                 directives_as_tokens: bool = True):
        self.source = source
        self.text = source.text
        self.smpl_mode = smpl_mode
        self.directives_as_tokens = directives_as_tokens
        self.pos = 0
        self.comments: list[tuple[int, int]] = []

    # -- helpers -----------------------------------------------------------

    def _loc(self, offset: int) -> tuple[int, int]:
        loc = self.source.location(offset)
        return loc.line, loc.col

    def _error(self, message: str, offset: int) -> LexError:
        line, col = self._loc(offset)
        return LexError(message, self.source.name, line, col)

    def _make(self, kind: TokenKind, value: str, start: int, end: int) -> Token:
        line, col = self._loc(start)
        return Token(kind=kind, value=value, offset=start, end=end, line=line, col=col)

    # -- scanning ----------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Tokenize the whole file, appending a final EOF token."""
        tokens: list[Token] = []
        while True:
            tok = self._next_token()
            tokens.append(tok)
            if tok.kind is TokenKind.EOF:
                break
        return tokens

    def _skip_trivia(self) -> None:
        text, n = self.text, len(self.text)
        while self.pos < n:
            ch = text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif ch == "/" and self.pos + 1 < n and text[self.pos + 1] == "/":
                start = self.pos
                while self.pos < n and text[self.pos] != "\n":
                    self.pos += 1
                self.comments.append((start, self.pos))
            elif ch == "/" and self.pos + 1 < n and text[self.pos + 1] == "*":
                start = self.pos
                self.pos += 2
                while self.pos < n and not text.startswith("*/", self.pos):
                    self.pos += 1
                if self.pos >= n:
                    raise self._error("unterminated block comment", start)
                self.pos += 2
                self.comments.append((start, self.pos))
            elif ch == "\\" and self.pos + 1 < n and text[self.pos + 1] == "\n":
                # stray line continuation outside a directive
                self.pos += 2
            else:
                break

    def _at_line_start(self, offset: int) -> bool:
        i = offset - 1
        while i >= 0 and self.text[i] in " \t":
            i -= 1
        return i < 0 or self.text[i] == "\n"

    def _next_token(self) -> Token:
        self._skip_trivia()
        text, n = self.text, len(self.text)
        if self.pos >= n:
            return self._make(TokenKind.EOF, "", n, n)
        start = self.pos
        ch = text[start]

        # --- preprocessor directives -----------------------------------
        if ch == "#" and self.directives_as_tokens and self._at_line_start(start):
            return self._lex_directive(start)

        # --- SmPL escaped disjunction markers ---------------------------
        if self.smpl_mode and ch == "\\" and start + 1 < n:
            two = text[start:start + 2]
            if two in _SMPL_ESCAPES:
                self.pos = start + 2
                return self._make(_SMPL_ESCAPES[two], two, start, self.pos)

        # --- identifiers and keywords ------------------------------------
        if ch in _IDENT_START:
            end = start + 1
            while end < n and text[end] in _IDENT_CONT:
                end += 1
            self.pos = end
            return self._make(TokenKind.IDENT, text[start:end], start, end)

        # --- numbers ------------------------------------------------------
        if ch in _DIGITS or (ch == "." and start + 1 < n and text[start + 1] in _DIGITS):
            return self._lex_number(start)

        # --- string / char literals --------------------------------------
        if ch == '"':
            return self._lex_quoted(start, '"', TokenKind.STRING)
        if ch == "'":
            return self._lex_quoted(start, "'", TokenKind.CHAR)

        # --- punctuation ---------------------------------------------------
        for punct in _PUNCTUATORS:
            if text.startswith(punct, start):
                # '>>>' only closes a CUDA kernel launch; inside nested
                # templates it would be wrong, but the supported subset never
                # nests templates three deep.
                end = start + len(punct)
                self.pos = end
                kind = TokenKind.DOTS if punct == "..." else TokenKind.PUNCT
                return self._make(kind, punct, start, end)

        raise self._error(f"unexpected character {ch!r}", start)

    def _lex_directive(self, start: int) -> Token:
        """Lex a whole ``#...`` logical line (merging ``\\`` continuations)."""
        text, n = self.text, len(self.text)
        end = start
        while end < n:
            if text[end] == "\n":
                # merged continuation?
                back = end - 1
                while back > start and text[back] in " \t\r":
                    back -= 1
                if text[back] == "\\":
                    end += 1
                    continue
                break
            end += 1
        self.pos = end
        raw = text[start:end]
        # normalise continuations and collapse whitespace runs in the value;
        # the raw extent is still [start, end) for edit purposes.
        value = " ".join(raw.replace("\\\n", " ").replace("\\\r\n", " ").split())
        return self._make(TokenKind.DIRECTIVE, value, start, end)

    def _lex_number(self, start: int) -> Token:
        text, n = self.text, len(self.text)
        end = start
        if text.startswith(("0x", "0X"), start):
            end = start + 2
            while end < n and (text[end] in "0123456789abcdefABCDEF"):
                end += 1
        else:
            seen_dot = seen_exp = False
            while end < n:
                c = text[end]
                if c in _DIGITS:
                    end += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    end += 1
                elif c in "eE" and not seen_exp and end + 1 < n and (
                        text[end + 1] in _DIGITS or text[end + 1] in "+-"):
                    seen_exp = True
                    end += 1
                    if text[end] in "+-":
                        end += 1
                else:
                    break
        # suffixes
        while end < n and text[end] in "uUlLfF":
            end += 1
        self.pos = end
        return self._make(TokenKind.NUMBER, text[start:end], start, end)

    def _lex_quoted(self, start: int, quote: str, kind: TokenKind) -> Token:
        text, n = self.text, len(self.text)
        end = start + 1
        while end < n and text[end] != quote:
            if text[end] == "\\" and end + 1 < n:
                end += 2
            else:
                end += 1
        if end >= n:
            raise self._error("unterminated literal", start)
        end += 1
        self.pos = end
        return self._make(kind, text[start:end], start, end)


def tokenize(text: str, name: str = "<string>", smpl_mode: bool = False,
             directives_as_tokens: bool = True) -> list[Token]:
    """Convenience wrapper: tokenize a string into a token list (with EOF)."""
    src = SourceFile(name=name, text=text)
    return Lexer(src, smpl_mode=smpl_mode,
                 directives_as_tokens=directives_as_tokens).tokenize()


def tokenize_pragma_text(text: str) -> list[str]:
    """Split the body of a ``#pragma`` (after the ``#pragma`` keyword) into
    word/punctuation tokens.  Used for prefix matching of pragma patterns
    such as ``#pragma omp ...``."""
    toks: list[str] = []
    try:
        for tok in tokenize(text, directives_as_tokens=False):
            if tok.kind is TokenKind.EOF:
                break
            toks.append(tok.value)
    except LexError:
        toks = text.split()
    return toks


def significant_tokens(tokens: Iterable[Token]) -> list[Token]:
    """Drop the trailing EOF token (and nothing else)."""
    return [t for t in tokens if t.kind is not TokenKind.EOF]


#: the identifier shape accepted by the full lexer (see ``_IDENT_START`` /
#: ``_IDENT_CONT`` above) as a regular expression, for the fast word scan
_WORD_SCAN_RE = re.compile(r"[A-Za-z_$][A-Za-z0-9_$]*")


def scan_word_tokens(text: str) -> set[str]:
    """Lightweight token scan: the set of identifier-like words in ``text``.

    This is the prefilter's view of a file: a superset of the IDENT token
    values the full lexer would produce (words inside comments, strings and
    directives are included, which only makes the scan more conservative).
    It never raises — unterminated literals or stray characters that would
    make :class:`Lexer` error are simply skipped over — and runs an order of
    magnitude faster than full tokenization, which is what makes it usable
    as a per-code-base index."""
    return set(_WORD_SCAN_RE.findall(text))
