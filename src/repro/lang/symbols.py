"""Lightweight symbol tables over parsed translation units.

The AoS→SoA cookbook rules and the analysis passes need to answer questions
like "which global arrays have a struct element type?", "which fields does
``struct particle`` have?", "which functions exist and what are their
parameters?".  This module collects that information in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .ast_nodes import (
    Declaration, DeclStmt, FunctionDef, Node, StructDef, TranslationUnit, walk,
)
from .parser import ParseTree


@dataclass
class StructInfo:
    """A struct/union definition: name and ``(type text, field name, dims)``.

    ``field_extents`` maps a field name to the printed extents of its array
    dimensions (e.g. ``{"pos": ["3"]}`` for ``double pos[3];``).
    """

    name: str
    keyword: str = "struct"
    fields: list[tuple[str, str, int]] = field(default_factory=list)
    typedef_name: str = ""
    field_extents: dict[str, list[str]] = field(default_factory=dict)

    def field_names(self) -> list[str]:
        return [f[1] for f in self.fields]

    def field_type(self, name: str) -> Optional[str]:
        for ty, fname, _dims in self.fields:
            if fname == name:
                return ty
        return None

    def field_dims(self, name: str) -> int:
        for _ty, fname, dims in self.fields:
            if fname == name:
                return dims
        return 0


@dataclass
class VariableInfo:
    """A (global or local) variable declaration."""

    name: str
    type_text: str
    pointer: str = ""
    array_dims: list[str] = field(default_factory=list)
    is_global: bool = True
    function: str = ""

    @property
    def is_array(self) -> bool:
        return bool(self.array_dims)

    @property
    def element_struct(self) -> Optional[str]:
        """If the element type is ``struct X`` (or a typedef'd struct name
        registered in the table), return ``X``."""
        words = self.type_text.split()
        if "struct" in words:
            idx = words.index("struct")
            if idx + 1 < len(words):
                return words[idx + 1]
        return None


@dataclass
class FunctionInfo:
    name: str
    return_type: str
    params: list[tuple[str, str]] = field(default_factory=list)  # (type, name)
    has_body: bool = False
    attributes: list[str] = field(default_factory=list)
    node: Optional[FunctionDef] = None


@dataclass
class SymbolTable:
    """All symbols of one translation unit."""

    structs: dict[str, StructInfo] = field(default_factory=dict)
    typedefs: dict[str, str] = field(default_factory=dict)
    globals: dict[str, VariableInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    locals: dict[str, list[VariableInfo]] = field(default_factory=dict)

    # -- queries -------------------------------------------------------------

    def struct_for_type(self, type_text: str) -> Optional[StructInfo]:
        """Resolve a type text to a struct definition (through typedefs)."""
        words = type_text.split()
        if "struct" in words:
            idx = words.index("struct")
            if idx + 1 < len(words) and words[idx + 1] in self.structs:
                return self.structs[words[idx + 1]]
        for word in words:
            if word in self.typedefs and self.typedefs[word] in self.structs:
                return self.structs[self.typedefs[word]]
            if word in self.structs:
                return self.structs[word]
        return None

    def arrays_of_struct(self, struct_name: str) -> list[VariableInfo]:
        """Global arrays whose element type is the given struct."""
        out = []
        for var in self.globals.values():
            if not var.is_array:
                continue
            st = self.struct_for_type(var.type_text)
            if st is not None and st.name == struct_name:
                out.append(var)
        return out

    def functions_matching(self, regex: str) -> list[FunctionInfo]:
        import re

        pat = re.compile(regex)
        return [f for f in self.functions.values() if pat.search(f.name)]

    def all_variables(self) -> Iterator[VariableInfo]:
        yield from self.globals.values()
        for var_list in self.locals.values():
            yield from var_list


def _declaration_variables(decl: Declaration, is_global: bool,
                           function: str = "") -> list[VariableInfo]:
    out: list[VariableInfo] = []
    type_text = decl.type.text if decl.type else ""
    for d in decl.declarators:
        if not d.name:
            continue
        dims = []
        for a in d.arrays:
            dims.append("" if a is None else "<expr>")
        out.append(VariableInfo(name=d.name, type_text=type_text, pointer=d.pointer,
                                array_dims=dims, is_global=is_global, function=function))
    return out


def build_symbol_table(tree: ParseTree) -> SymbolTable:
    """Collect structs, typedefs, globals, functions and locals of a file."""
    table = SymbolTable()
    unit: TranslationUnit = tree.unit

    for decl in unit.decls:
        if isinstance(decl, StructDef):
            name = decl.name or decl.typedef_name
            info = StructInfo(name=name, keyword=decl.keyword,
                              typedef_name=decl.typedef_name)
            for member in decl.members:
                mtype = member.type.text if member.type else ""
                for d in member.declarators:
                    info.fields.append((mtype, d.name, len(d.arrays)))
                    if d.arrays:
                        info.field_extents[d.name] = [
                            tree.node_text(a) if a is not None else "" for a in d.arrays]
            table.structs[name] = info
            if decl.typedef_name:
                table.typedefs[decl.typedef_name] = name
        elif isinstance(decl, Declaration):
            if decl.is_typedef:
                base = decl.type.text if decl.type else ""
                for d in decl.declarators:
                    if d.name:
                        table.typedefs[d.name] = base
                continue
            for var in _declaration_variables(decl, is_global=True):
                table.globals[var.name] = var
        elif isinstance(decl, FunctionDef):
            params: list[tuple[str, str]] = []
            if decl.params is not None:
                for p in decl.params.params:
                    ptype = getattr(getattr(p, "type", None), "text", "") or ""
                    pname = getattr(p, "name", "") or ""
                    if ptype or pname:
                        params.append((ptype, pname))
            info = FunctionInfo(
                name=decl.name,
                return_type=decl.return_type.text if decl.return_type else "void",
                params=params,
                has_body=decl.body is not None and not decl.is_prototype,
                attributes=[a.name for a in decl.attributes],
                node=decl,
            )
            # a body-bearing definition wins over an earlier prototype
            existing = table.functions.get(decl.name)
            if existing is None or (info.has_body and not existing.has_body):
                table.functions[decl.name] = info
            # locals
            local_vars: list[VariableInfo] = []
            if decl.body is not None:
                for n in walk(decl.body):
                    if isinstance(n, DeclStmt) and n.decl is not None:
                        local_vars.extend(_declaration_variables(
                            n.decl, is_global=False, function=decl.name))
            table.locals[decl.name] = local_vars

    return table
