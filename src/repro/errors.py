"""Exception hierarchy for the :mod:`repro` semantic patching engine.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Parse errors carry enough
location information to point the user at the offending line, mirroring the
diagnostics `spatch` emits.
"""

from __future__ import annotations

from dataclasses import dataclass


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class LexError(ReproError):
    """Raised when the C/C++ or SmPL lexer meets an unrecognisable character."""

    def __init__(self, message: str, filename: str = "<string>", line: int = 0, col: int = 0):
        super().__init__(f"{filename}:{line}:{col}: {message}")
        self.message = message
        self.filename = filename
        self.line = line
        self.col = col


class CParseError(ReproError):
    """Raised when the C/C++ parser cannot make sense of the input.

    The top-level parser is error tolerant (unparsable top-level constructs
    become opaque declarations), so this error mostly surfaces for malformed
    statements inside function bodies or for malformed SmPL pattern code.
    """

    def __init__(self, message: str, filename: str = "<string>", line: int = 0, col: int = 0):
        super().__init__(f"{filename}:{line}:{col}: {message}")
        self.message = message
        self.filename = filename
        self.line = line
        self.col = col


class SmplParseError(ReproError):
    """Raised for malformed semantic patches (rule headers, metavariable
    declarations, pattern bodies)."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"semantic patch line {line}: {message}" if line else message)
        self.message = message
        self.line = line


class FrontendParseError(ReproError):
    """Raised for malformed machine-patch frontend inputs (JSON operation
    arrays, 'ap' locator documents, search/replace block files)."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.message = message
        self.line = line


class PatchFileError(ReproError):
    """A patch input (``--sp-file`` / ``--patch-file`` / inline spec) could
    not be read or parsed.  The argument is a pre-formatted one-line
    ``file:line: message`` diagnostic, identical between the in-process CLI
    path and the server's error envelope."""


def patch_error_line(name: str, exc: Exception) -> str:
    """One-line ``file:line: message`` diagnostic for a failed patch input.

    ``name`` identifies the patch source (usually the file's basename, which
    is also the name a server spec carries — keeping local and remote
    diagnostics byte-identical).
    """
    if isinstance(exc, OSError):
        where = exc.filename or name
        return f"{where}: {exc.strerror or exc}"
    line = getattr(exc, "line", 0) or 0
    message = getattr(exc, "message", None) or str(exc).splitlines()[0]
    return f"{name}:{line}: {message}"


class MetavarError(ReproError):
    """Raised for invalid metavariable declarations or inconsistent usage."""


class ScriptRuleError(ReproError):
    """Raised when a ``script:python`` rule fails in a way that cannot be
    interpreted as 'drop this environment'."""


class TransformError(ReproError):
    """Raised when the transformation stage cannot map pattern tokens onto
    the matched code (e.g. conflicting overlapping edits)."""


class EditConflictError(TransformError):
    """Raised when two edits overlap in an irreconcilable way."""


class InterpreterError(ReproError):
    """Raised by the mini C interpreter (unsupported construct, bad value)."""


class WorkloadError(ReproError):
    """Raised by synthetic workload generators on invalid parameters."""


@dataclass(frozen=True)
class Diagnostic:
    """A non-fatal message produced while applying a semantic patch.

    Diagnostics are accumulated in reports rather than raised, so that a
    patch application over a large code base never aborts half way through.
    """

    severity: str  # "info" | "warning" | "error"
    message: str
    filename: str = ""
    line: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        loc = f"{self.filename}:{self.line}: " if self.filename else ""
        return f"{loc}{self.severity}: {self.message}"
