"""Use case: ease introduction of modern C++ STL constructs.

Paper, Section 3, *"Ease introduction of modern C++ STL constructs"*: replace
a *raw loop* that linearly scans a container for a value (setting a flag,
possibly printing diagnostics, then breaking) by a call to ``std::find``.
A second rule, ``depends on`` the first, adds the required headers next to an
include the file already has.
"""

from __future__ import annotations

from ..api import SemanticPatch
from ..options import SpatchOptions


PAPER_LISTING = r"""
#spatch --c++=17
@rl@
type T;
constant k;
identifier elem,result,arrid;
@@
- bool result = false;
...
- for ( T &elem : arrid )
-   if ( \( elem == k \| k == elem \) )
-   {
-     ...
-     result = true;
-     break;
-   }
+ const bool result =
+   (find(begin(arrid),end(arrid),k) !=
+   end(arrid));

@ah depends on rl@
@@
#include <iostream>
+ #include <algorithm>
+ #include <functional>
"""


def paper_listing() -> str:
    """The semantic patch exactly as printed in the paper."""
    return PAPER_LISTING


def raw_loop_to_find_patch(anchor_header: str = "iostream",
                           qualify_std: bool = False) -> SemanticPatch:
    """The raw-loop → ``std::find`` patch.

    ``anchor_header`` is the already-included header next to which
    ``<algorithm>``/``<functional>`` are added; ``qualify_std`` emits
    ``std::find``/``std::begin``/``std::end`` instead of relying on ADL, which
    is the more robust spelling for production use.
    """
    find = "std::find" if qualify_std else "find"
    begin = "std::begin" if qualify_std else "begin"
    end = "std::end" if qualify_std else "end"
    text = rf"""
#spatch --c++=17
@rl@
type T;
constant k;
identifier elem,result,arrid;
@@
- bool result = false;
...
- for ( T &elem : arrid )
-   if ( \( elem == k \| k == elem \) )
-   {{
-     ...
-     result = true;
-     break;
-   }}
+ const bool result =
+   ({find}({begin}(arrid),{end}(arrid),k) !=
+   {end}(arrid));

@ah depends on rl@
@@
#include <{anchor_header}>
+ #include <algorithm>
+ #include <functional>
"""
    return SemanticPatch.from_string(text, name="raw-loop-to-find",
                                     options=SpatchOptions(cxx=17))


def accumulate_patch() -> SemanticPatch:
    """A companion modernisation in the same spirit (the paper notes the
    technique generalises to "specific recurring code portions ... replaced by
    function calls", which is "exactly what HPC-oriented C++ APIs usually
    require"): a raw summation loop over a container becomes
    ``std::accumulate``."""
    text = r"""
#spatch --c++=17
@acc@
type T;
identifier elem,total,arrid;
@@
- T total = 0;
- for ( T &elem : arrid )
- {
-   total += elem;
- }
+ const T total = accumulate(begin(arrid), end(arrid), (T)0);

@hdr depends on acc@
@@
#include <iostream>
+ #include <numeric>
"""
    return SemanticPatch.from_string(text, name="raw-loop-to-accumulate",
                                     options=SpatchOptions(cxx=17))
