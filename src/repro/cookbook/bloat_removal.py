"""Use case: bloat and clone removal.

Paper, Section 3, *"Bloat and clone removal"*: in a project with a long
development history, delete obsolete function specialisations.  The patch has
two rules: rule ``c`` removes every function carrying one of the obsolete
``__attribute__((target(...)))`` specialisations (a disjunction over the
attribute values), and rule ``d`` — reusing ``c``'s metavariables through
inheritance — strips the ``target("default")`` attribute from the matching
base function, leaving the (now unspecialised) base definition in place.
"""

from __future__ import annotations

from ..api import SemanticPatch


PAPER_LISTING = """\
@c@
type T;
function f;
parameter list PL;
@@
- __attribute__((target(
(
- "avx512"
|
- "avx2"
)
- )))
- T f(PL) { ... }

@d@
type c.T;
function c.f;
parameter list c.PL;
@@
- __attribute__((target("default")))
T f(PL) { ... }
"""


def paper_listing() -> str:
    """The semantic patch exactly as printed in the paper."""
    return PAPER_LISTING


def patch_text(obsolete_archs: tuple[str, ...] = ("avx512", "avx2"),
               strip_default: bool = True) -> str:
    """Render the removal patch for an arbitrary set of obsolete ISA strings."""
    branches = "\n|\n".join(f'- "{arch}"' for arch in obsolete_archs)
    text = f"""\
@c@
type T;
function f;
parameter list PL;
@@
- __attribute__((target(
(
{branches}
)
- )))
- T f(PL) {{ ... }}
"""
    if strip_default:
        text += """
@d@
type c.T;
function c.f;
parameter list c.PL;
@@
- __attribute__((target("default")))
T f(PL) { ... }
"""
    return text


def remove_obsolete_clones(obsolete_archs: tuple[str, ...] = ("avx512", "avx2"),
                           strip_default: bool = True) -> SemanticPatch:
    """The paper's bloat-removal patch, parameterised by the obsolete ISAs."""
    return SemanticPatch.from_string(patch_text(obsolete_archs, strip_default),
                                     name="bloat-removal")


def remove_pragma_guarded_code(pragma_prefix: str) -> SemanticPatch:
    """A further bloat-removal intervention of the kind the paper imagines
    ("location and removal of code associated with specific attributes or
    compiler-specific pragmas"): drop pragmas with a given prefix together
    with nothing else — useful for retiring a defunct instrumentation or
    tuning layer."""
    text = f"""\
@drop_pragma@
@@
- #pragma {pragma_prefix} ...
"""
    return SemanticPatch.from_string(text, name=f"remove-pragma-{pragma_prefix}")
