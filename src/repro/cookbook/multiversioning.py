"""Use case: function cloning and attributes for function multiversioning.

Paper, Section 3, *"Function cloning and introduction of attributes for
function multiversioning"*: independent of OpenMP, GCC/Clang offer the
``target`` and ``target_clones`` attributes.  The patch below automates the
two steps the paper describes:

1. clone functions and mark the base as ``__attribute__((target("default")))``
   while the clones get the architecture-specific attribute (analogous to the
   declare-variant example), and
2. match functions already carrying an architecture attribute in order to
   apply architecture-specific edits inside them (the paper's second listing
   matches ``__attribute__((target(...,"avx512",...)))``).
"""

from __future__ import annotations

from ..api import SemanticPatch


PAPER_LISTING_MATCH_AVX512 = """\
@@
identifier f;
type T;
@@
__attribute__((target(...,"avx512",...)))
T f(...)
{
+ // add and modify avx512-specific code only
...
}
"""


def paper_listing() -> str:
    """The attribute-matching listing as printed in the paper."""
    return PAPER_LISTING_MATCH_AVX512


def clone_with_target_attributes(function_regex: str = "kernel",
                                 architectures: tuple[str, ...] = ("avx2", "avx512")) -> SemanticPatch:
    """Create per-architecture clones guarded by ``__attribute__((target(...)))``
    and mark the original as the ``"default"`` version (step 1 of the use case)."""
    fresh_decls = []
    plus_lines = []
    for idx, arch in enumerate(architectures):
        mv = f"fc{idx}"
        fresh_decls.append(f'fresh identifier {mv} = "{arch}_" ## f;')
        plus_lines.append(f'+ __attribute__((target("{arch}")))')
        plus_lines.append(f"+ T {mv} (PL) {{ SL }}")
    plus_lines.append('+ __attribute__((target("default")))')
    # the pure-match guard makes the cloning idempotent at file granularity:
    # only this patch marks a function as the "default" version, so its
    # presence means the file has been multiversioned already — without the
    # guard a second application would clone the clones
    text = f"""\
@has_default_version@
identifier g;
type T0;
@@
__attribute__((target(...,"default",...)))
T0 g(...)
{{
...
}}

@multiversion depends on !has_default_version@
type T;
identifier f =~ "{function_regex}";
parameter list PL;
statement list SL;
{chr(10).join(fresh_decls)}
@@
{chr(10).join(plus_lines)}
T f (PL) {{ SL }}
"""
    return SemanticPatch.from_string(text, name="target-multiversioning")


def target_clones_patch(function_regex: str = "kernel",
                        architectures: tuple[str, ...] = ("default", "avx2", "avx512")) -> SemanticPatch:
    """The lighter-weight alternative the paper mentions first: a single
    ``target_clones`` attribute makes the compiler create and dispatch the
    clones itself."""
    arch_list = ",".join(f'"{a}"' for a in architectures)
    text = f"""\
@add_target_clones@
type T;
identifier f =~ "{function_regex}";
parameter list PL;
@@
+ __attribute__((target_clones({arch_list})))
T f (PL) {{ ... }}
"""
    return SemanticPatch.from_string(text, name="target-clones")


def match_architecture_specific(arch: str = "avx512",
                                marker_comment: str | None = None) -> SemanticPatch:
    """Step 2 of the use case: locate the functions specialised for ``arch``
    so that follow-up (program-specific) rules can edit only those.  By
    default it inserts the explanatory comment the paper's listing inserts."""
    comment = marker_comment if marker_comment is not None else \
        f"// add and modify {arch}-specific code only"
    text = f"""\
@arch_specific@
identifier f;
type T;
@@
__attribute__((target(...,"{arch}",...)))
T f(...)
{{
+ {comment}
...
}}
"""
    return SemanticPatch.from_string(text, name=f"match-{arch}-functions")
