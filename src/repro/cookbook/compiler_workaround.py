"""Use case: workarounds for occasional compiler bugs.

Paper, Section 3, *"Workarounds for occasional compiler bugs"*: the LIBRSB
library hit a GCC 11.2 vectorizer bug affecting double-precision complex
conjugate kernels.  Because the generated kernels follow a strict naming
convention, a regular-expression-constrained ``identifier`` metavariable
selects exactly the affected functions, and the patch wraps them in
``#pragma GCC push_options`` / ``optimize`` / ``pop_options`` lines that
lower the optimisation level — a transitory change triggered from the build
system only for the affected compiler versions.
"""

from __future__ import annotations

from ..api import SemanticPatch


#: The affected-function naming convention from the paper (double precision
#: complex, conjugated SpMV kernels of the BCSR format).
LIBRSB_AFFECTED_REGEX = (
    "rsb__BCSR_spmv_sasa_double_complex_[CH]__t[NTC]_r1_c1_uu_s[HS]_dE_uG")


PAPER_LISTING = f"""\
@pragma_inject@
identifier i =~ "{LIBRSB_AFFECTED_REGEX}";
type T;
@@
+ #pragma GCC push_options
+ #pragma GCC optimize "-O3", "-fno-tree-loop-vectorize"
T i(...)
{{
...
}}
+ #pragma GCC pop_options
"""


def paper_listing() -> str:
    """The semantic patch exactly as printed in the paper."""
    return PAPER_LISTING


def patch_text(function_regex: str = LIBRSB_AFFECTED_REGEX,
               options: tuple[str, ...] = ("-O3", "-fno-tree-loop-vectorize")) -> str:
    """Render the workaround patch for an arbitrary function-name regex and
    GCC optimisation options.

    A pure-match guard rule makes the patch idempotent at file granularity:
    a file already containing ``#pragma GCC push_options`` (which for the
    generated LIBRSB kernels only this workaround introduces) is not wrapped
    a second time.
    """
    opts = ", ".join(f'"{o}"' for o in options)
    return f"""\
@has_workaround@ @@
#pragma GCC push_options

@pragma_inject depends on !has_workaround@
identifier i =~ "{function_regex}";
type T;
@@
+ #pragma GCC push_options
+ #pragma GCC optimize {opts}
T i(...)
{{
...
}}
+ #pragma GCC pop_options
"""


def gcc_workaround_patch(function_regex: str = LIBRSB_AFFECTED_REGEX,
                         options: tuple[str, ...] = ("-O3", "-fno-tree-loop-vectorize")) -> SemanticPatch:
    """The paper's LIBRSB/GCC-vectorizer workaround patch, parameterised."""
    return SemanticPatch.from_string(patch_text(function_regex, options),
                                     name="gcc-vectorizer-workaround")


def removal_patch(function_regex: str = LIBRSB_AFFECTED_REGEX) -> SemanticPatch:
    """The matching cleanup patch: once a fixed compiler is required, remove
    the injected pragmas again (the 'transitory' aspect the paper stresses)."""
    text = f"""\
@pragma_remove@
identifier i =~ "{function_regex}";
type T;
@@
- #pragma GCC push_options
- #pragma GCC optimize ...
T i(...)
{{
...
}}
- #pragma GCC pop_options
"""
    return SemanticPatch.from_string(text, name="gcc-workaround-removal")
