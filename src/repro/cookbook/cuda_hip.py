"""Use case: translation of very similar APIs (CUDA → HIP).

Paper, Section 3, *"Translation of very similar APIs"*: NVIDIA's CUDA and
AMD's HIP are so close that their mutual translation is mostly a
token-to-token correspondence between two enumerable sets — which is exactly
how ``hipify-perl`` works, "albeit without using an AST".  The semantic
patches here reproduce the paper's three ingredients:

* a Python-dictionary-driven rule chain for *function* renaming
  (``cfe`` → ``cf2hf`` → ``hfe``),
* the analogous chain for *type* renaming (``cte`` → ``ct2hf`` → ``hte``),
* a rule replacing the triple-chevron kernel-launch syntax
  ``k<<<b,t,x,y>>>(args)`` with ``hipLaunchKernelGGL(k,b,t,x,y,args)``.

The dictionaries below cover the portion of the CUDA runtime / cuRAND /
cuBLAS surface exercised by the synthetic CUDA workload; they can be extended
or replaced by the caller, as a complete translation "would need to have the
entire list of functions and types involved in the two APIs".
"""

from __future__ import annotations

import json

from ..api import SemanticPatch


#: CUDA → HIP function translation table (paper: ``C2HF``).
FUNCTION_MAP: dict[str, str] = {
    # runtime memory management
    "cudaMalloc": "hipMalloc",
    "cudaFree": "hipFree",
    "cudaMemcpy": "hipMemcpy",
    "cudaMemcpyAsync": "hipMemcpyAsync",
    "cudaMemset": "hipMemset",
    "cudaMallocHost": "hipHostMalloc",
    "cudaFreeHost": "hipHostFree",
    # device / stream / event management
    "cudaSetDevice": "hipSetDevice",
    "cudaGetDevice": "hipGetDevice",
    "cudaGetDeviceCount": "hipGetDeviceCount",
    "cudaDeviceSynchronize": "hipDeviceSynchronize",
    "cudaStreamCreate": "hipStreamCreate",
    "cudaStreamDestroy": "hipStreamDestroy",
    "cudaStreamSynchronize": "hipStreamSynchronize",
    "cudaEventCreate": "hipEventCreate",
    "cudaEventRecord": "hipEventRecord",
    "cudaEventSynchronize": "hipEventSynchronize",
    "cudaEventElapsedTime": "hipEventElapsedTime",
    "cudaEventDestroy": "hipEventDestroy",
    "cudaGetLastError": "hipGetLastError",
    "cudaGetErrorString": "hipGetErrorString",
    # cuRAND (the paper's own example)
    "curand_uniform_double": "rocrand_uniform_double",
    "curand_uniform": "rocrand_uniform",
    "curand_normal_double": "rocrand_normal_double",
    "curand_init": "rocrand_init",
    # cuBLAS-ish
    "cublasDaxpy": "rocblas_daxpy",
    "cublasDdot": "rocblas_ddot",
    "cublasCreate": "rocblas_create_handle",
    "cublasDestroy": "rocblas_destroy_handle",
}

#: CUDA → HIP type translation table (paper: ``C2HT``).
TYPE_MAP: dict[str, str] = {
    "__half": "rocblas_half",
    "cudaError_t": "hipError_t",
    "cudaStream_t": "hipStream_t",
    "cudaEvent_t": "hipEvent_t",
    "cudaDeviceProp": "hipDeviceProp_t",
    "curandState": "rocrand_state_xorwow",
    "cublasHandle_t": "rocblas_handle",
}

#: CUDA → HIP constant/enumerator translation (token-to-token, via functions
#: rule chain as they appear in argument position as identifiers).
CONSTANT_MAP: dict[str, str] = {
    "cudaMemcpyHostToDevice": "hipMemcpyHostToDevice",
    "cudaMemcpyDeviceToHost": "hipMemcpyDeviceToHost",
    "cudaMemcpyDeviceToDevice": "hipMemcpyDeviceToDevice",
    "cudaSuccess": "hipSuccess",
}

#: CUDA → HIP header translation.
HEADER_MAP: dict[str, str] = {
    "cuda_runtime.h": "hip/hip_runtime.h",
    "curand_kernel.h": "rocrand/rocrand_kernel.h",
    "cublas_v2.h": "rocblas/rocblas.h",
}


PAPER_LISTING_FUNCTIONS = """\
@initialize:python@ @@
C2HF = { "curand_uniform_double":
  "rocrand_uniform_double" }

@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)

@script:python cf2hf@
fn << cfe.fn;
nf;
@@
coccinelle.nf = cocci.make_ident(C2HF[fn])

@hfe@
identifier cfe.fn;
identifier cf2hf.nf;
position cfe.p;
@@
- fn@p
+ nf
(...)
"""

PAPER_LISTING_TYPES = """\
@initialize:python@ @@
C2HT = { "__half": "rocblas_half" }

@cte@
type c_t;
identifier i;
@@
c_t i;

@script:python ct2hf@
c_t << cte.c_t;
h_t;
@@
coccinelle.h_t = cocci.make_type(C2HT[c_t])

@hte@
type ct2hf.h_t;
type cte.c_t;
identifier cte.i;
@@
- c_t i;
+ h_t i;
"""

PAPER_LISTING_CHEVRON = """\
#spatch --c++
@@
identifier k;
expression b,t,x,y;
expression list el;
@@
- k<<<b,t,x,y>>>(el)
+ hipLaunchKernelGGL(k,b,t,x,y,el)
"""


def paper_listing_functions() -> str:
    return PAPER_LISTING_FUNCTIONS


def paper_listing_types() -> str:
    return PAPER_LISTING_TYPES


def paper_listing_chevron() -> str:
    return PAPER_LISTING_CHEVRON


# ---------------------------------------------------------------------------
# parameterised builders
# ---------------------------------------------------------------------------

def function_rename_text(function_map: dict[str, str] | None = None) -> str:
    mapping = dict(FUNCTION_MAP if function_map is None else function_map)
    mapping.update({} if function_map is not None else CONSTANT_MAP)
    table = json.dumps(mapping, indent=1)
    return f"""\
@initialize:python@ @@
C2HF = {table}

@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)

@script:python cf2hf@
fn << cfe.fn;
nf;
@@
coccinelle.nf = cocci.make_ident(C2HF[fn])

@hfe@
identifier cfe.fn;
identifier cf2hf.nf;
position cfe.p;
@@
- fn@p
+ nf
(...)
"""


def type_rename_text(type_map: dict[str, str] | None = None) -> str:
    mapping = TYPE_MAP if type_map is None else type_map
    table = json.dumps(dict(mapping), indent=1)
    return f"""\
@initialize:python@ @@
C2HT = {table}

@cte@
type c_t;
identifier i;
@@
c_t i;

@script:python ct2hf@
c_t << cte.c_t;
h_t;
@@
coccinelle.h_t = cocci.make_type(C2HT[c_t])

@hte@
type ct2hf.h_t;
type cte.c_t;
identifier cte.i;
@@
- c_t i;
+ h_t i;
"""


def header_rename_text(header_map: dict[str, str] | None = None) -> str:
    mapping = HEADER_MAP if header_map is None else header_map
    rules = []
    for index, (cuda_header, hip_header) in enumerate(sorted(mapping.items())):
        rules.append(f"""\
@hdr{index}@ @@
- #include <{cuda_header}>
+ #include <{hip_header}>
""")
    return "\n".join(rules)


def chevron_text() -> str:
    return PAPER_LISTING_CHEVRON


def function_rename_patch(function_map: dict[str, str] | None = None) -> SemanticPatch:
    """The dictionary-driven function renaming chain (paper listing, full map)."""
    return SemanticPatch.from_string(function_rename_text(function_map),
                                     name="cuda-hip-functions")


def type_rename_patch(type_map: dict[str, str] | None = None) -> SemanticPatch:
    """The dictionary-driven type renaming chain (paper listing, full map)."""
    return SemanticPatch.from_string(type_rename_text(type_map), name="cuda-hip-types")


def kernel_launch_patch() -> SemanticPatch:
    """Triple-chevron kernel launches → ``hipLaunchKernelGGL``."""
    return SemanticPatch.from_string(chevron_text(), name="cuda-hip-chevron")


def header_rename_patch(header_map: dict[str, str] | None = None) -> SemanticPatch:
    """CUDA headers → HIP headers."""
    return SemanticPatch.from_string(header_rename_text(header_map),
                                     name="cuda-hip-headers")


def cuda_to_hip_patch(function_map: dict[str, str] | None = None,
                      type_map: dict[str, str] | None = None,
                      header_map: dict[str, str] | None = None,
                      include_chevron: bool = True) -> SemanticPatch:
    """The full CUDA→HIP translation: headers, types, functions and kernel
    launches in one semantic patch (applied in that order)."""
    chunks = ["#spatch --c++"]
    chunks.append(header_rename_text(header_map))
    chunks.append(type_rename_text(type_map))
    chunks.append(function_rename_text(function_map))
    if include_chevron:
        chunks.append("""\
@chevron@
identifier k;
expression b,t,x,y;
expression list el;
@@
- k<<<b,t,x,y>>>(el)
+ hipLaunchKernelGGL(k,b,t,x,y,el)
""")
    return SemanticPatch.from_string("\n".join(chunks), name="cuda-to-hip")
