"""Case study: Array-of-Structures → Structure-of-Arrays (GADGET, [ML21]).

Paper, Section 2: the motivating prior work [ML21] transformed the GADGET
cosmological code from AoS to SoA with a collection of Coccinelle rules, so
that the domain scientists keep developing the clearer AoS code while the
vectorization-friendly SoA copy is regenerated on demand ("replayable
refactoring").  The data-structure definition is small enough to change by
hand, but the rules must patch "many tens of array-accessing expressions
within each of thousands of loops" — which is what the per-field expression
rules generated here do.

:func:`aos_to_soa_patch` builds the patch from an explicit description of the
struct; :func:`derive_spec` / :func:`aos_to_soa_patch_from_codebase` extract
that description from the code base itself via the symbol table (struct
definition + global arrays of that struct).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api import CodeBase, SemanticPatch
from ..lang.parser import parse_source
from ..lang.symbols import build_symbol_table
from ..options import SpatchOptions, DEFAULT_OPTIONS


@dataclass(frozen=True)
class FieldSpec:
    """One field of the AoS struct: C type, name, and inner array length
    (0 for scalar fields, e.g. 3 for ``double pos[3]``)."""

    ctype: str
    name: str
    inner_dim: int = 0


@dataclass
class AosSpec:
    """Everything needed to generate the AoS→SoA rules for one array."""

    struct_name: str
    array_name: str
    fields: list[FieldSpec] = field(default_factory=list)
    keep_fields: tuple[str, ...] = ()   # fields to keep in AoS form (paper: fine-grained control)

    def soa_name(self, field_name: str) -> str:
        return f"{self.array_name}_{field_name}"

    def transformed_fields(self) -> list[FieldSpec]:
        return [f for f in self.fields if f.name not in self.keep_fields]


# ---------------------------------------------------------------------------
# patch generation
# ---------------------------------------------------------------------------

def _access_rules(spec: AosSpec) -> list[str]:
    rules = []
    for index, f in enumerate(spec.transformed_fields()):
        soa = spec.soa_name(f.name)
        if f.inner_dim:
            rules.append(f"""\
@acc_{index}@
expression E, D;
@@
- {spec.array_name}[E].{f.name}[D]
+ {soa}[E][D]
""")
        else:
            rules.append(f"""\
@acc_{index}@
expression E;
@@
- {spec.array_name}[E].{f.name}
+ {soa}[E]
""")
    return rules


def _declaration_rule(spec: AosSpec) -> str:
    def plus_lines(prefix: str) -> str:
        lines = []
        for f in spec.transformed_fields():
            soa = spec.soa_name(f.name)
            inner = f"[{f.inner_dim}]" if f.inner_dim else ""
            lines.append(f"+ {prefix}{f.ctype} {soa}[N]{inner};")
        return "\n".join(lines)

    keep = [f for f in spec.fields if f.name in spec.keep_fields]
    minus = "-" if not keep else " "
    # the extern rule must come first: once the extern declarations (headers)
    # are rewritten, the definition rule handles the remaining ones
    return f"""\
@soa_decl_extern@
expression N;
@@
{minus} extern struct {spec.struct_name} {spec.array_name}[N];
{plus_lines("extern ")}

@soa_decl@
expression N;
@@
{minus} struct {spec.struct_name} {spec.array_name}[N];
{plus_lines("")}
"""


def patch_text(spec: AosSpec) -> str:
    """Render the full AoS→SoA patch: per-field access rules first, then the
    declaration replacement."""
    chunks = _access_rules(spec)
    chunks.append(_declaration_rule(spec))
    return "\n".join(chunks)


def aos_to_soa_patch(spec: AosSpec) -> SemanticPatch:
    """Build the AoS→SoA semantic patch for one array-of-structures."""
    return SemanticPatch.from_string(patch_text(spec),
                                     name=f"aos-to-soa-{spec.array_name}")


# ---------------------------------------------------------------------------
# derivation from a code base
# ---------------------------------------------------------------------------

def derive_spec(codebase: CodeBase, struct_name: str | None = None,
                array_name: str | None = None,
                keep_fields: tuple[str, ...] = (),
                options: SpatchOptions = DEFAULT_OPTIONS) -> AosSpec:
    """Derive the AoS description (struct fields + global array) from the
    declarations found in a code base."""
    struct_info = None
    chosen_array = None
    for name, text in codebase.items():
        tree = parse_source(text, name=name, options=options)
        table = build_symbol_table(tree)
        for sname, sinfo in table.structs.items():
            if struct_name is not None and sname != struct_name:
                continue
            arrays = table.arrays_of_struct(sname)
            if array_name is not None:
                arrays = [a for a in arrays if a.name == array_name]
            if arrays:
                struct_info = sinfo
                chosen_array = arrays[0]
                break
        if struct_info is not None:
            break
    if struct_info is None or chosen_array is None:
        raise ValueError(
            "could not find an array-of-structures declaration to transform"
            + (f" (struct {struct_name!r})" if struct_name else ""))
    spec = AosSpec(struct_name=struct_info.name, array_name=chosen_array.name,
                   fields=[], keep_fields=keep_fields)
    for ftype, fname, dims in struct_info.fields:
        inner = 0
        if dims:
            extents = struct_info.field_extents.get(fname, [])
            try:
                inner = int(extents[0]) if extents and extents[0] else 0
            except ValueError:
                inner = 0
        spec.fields.append(FieldSpec(ctype=ftype, name=fname, inner_dim=inner))
    return spec


def aos_to_soa_patch_from_codebase(codebase: CodeBase, struct_name: str | None = None,
                                   array_name: str | None = None,
                                   keep_fields: tuple[str, ...] = ()) -> SemanticPatch:
    """Derive the AoS spec from the code base and build the patch."""
    spec = derive_spec(codebase, struct_name=struct_name, array_name=array_name,
                       keep_fields=keep_fields)
    return aos_to_soa_patch(spec)


def reverse_patch(spec: AosSpec) -> SemanticPatch:
    """The inverse transformation (SoA back to AoS accesses), demonstrating
    the reversibility/replayability the paper's discussion section calls for."""
    rules = []
    for index, f in enumerate(spec.transformed_fields()):
        soa = spec.soa_name(f.name)
        if f.inner_dim:
            rules.append(f"""\
@racc_{index}@
expression E, D;
@@
- {soa}[E][D]
+ {spec.array_name}[E].{f.name}[D]
""")
        else:
            rules.append(f"""\
@racc_{index}@
expression E;
@@
- {soa}[E]
+ {spec.array_name}[E].{f.name}
""")
    return SemanticPatch.from_string("\n".join(rules),
                                     name=f"soa-to-aos-{spec.array_name}")
