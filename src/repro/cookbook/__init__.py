"""The paper's HPC refactoring use cases as ready-to-apply semantic patches.

Each module corresponds to one use case of Section 3 of the paper (plus the
AoS→SoA case study of Section 2 / [ML21]) and exposes:

* the semantic patch as written in the paper (``paper_listing()``), kept as
  close to the published listing as the reproduction allows,
* a parameterised builder returning a :class:`repro.SemanticPatch`, typically
  with configuration hooks the paper mentions in prose (marker API to use,
  architectures to clone for, translation dictionaries, ...).

============================  =========================================================
module                        paper use case
============================  =========================================================
``instrumentation``           Interfacing with an instrumentation API (LIKWID et al.)
``declare_variant``           OpenMP ``declare variant`` function cloning
``multiversioning``           Function cloning / ``target`` attributes
``bloat_removal``             Bloat and clone removal
``unrolling``                 Removal of explicit loop unrolling (rules p0, p1+r1)
``mdspan``                    Advanced expression modification (multi-index subscripts)
``cuda_hip``                  Translation of very similar APIs (CUDA → HIP)
``openacc_openmp``            Translation of directive-based APIs (OpenACC → OpenMP)
``stl_modernize``             Introduction of modern C++ STL constructs (std::find)
``kokkos_lambda``             Introduction of APIs enclosing lambdas (Kokkos)
``compiler_workaround``       Workarounds for occasional compiler bugs (LIBRSB)
``aos_soa``                   AoS → SoA case study (GADGET, [ML21])
============================  =========================================================
"""

from . import (
    aos_soa,
    bloat_removal,
    compiler_workaround,
    cuda_hip,
    declare_variant,
    instrumentation,
    kokkos_lambda,
    mdspan,
    multiversioning,
    openacc_openmp,
    stl_modernize,
    unrolling,
)

__all__ = [
    "aos_soa", "bloat_removal", "compiler_workaround", "cuda_hip",
    "declare_variant", "instrumentation", "kokkos_lambda", "mdspan",
    "multiversioning", "openacc_openmp", "stl_modernize", "unrolling",
]
