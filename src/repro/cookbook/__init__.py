"""The paper's HPC refactoring use cases as ready-to-apply semantic patches.

Each module corresponds to one use case of Section 3 of the paper (plus the
AoS→SoA case study of Section 2 / [ML21]) and exposes:

* the semantic patch as written in the paper (``paper_listing()``), kept as
  close to the published listing as the reproduction allows,
* a parameterised builder returning a :class:`repro.SemanticPatch`, typically
  with configuration hooks the paper mentions in prose (marker API to use,
  architectures to clone for, translation dictionaries, ...).

============================  =========================================================
module                        paper use case
============================  =========================================================
``instrumentation``           Interfacing with an instrumentation API (LIKWID et al.)
``declare_variant``           OpenMP ``declare variant`` function cloning
``multiversioning``           Function cloning / ``target`` attributes
``bloat_removal``             Bloat and clone removal
``unrolling``                 Removal of explicit loop unrolling (rules p0, p1+r1)
``mdspan``                    Advanced expression modification (multi-index subscripts)
``cuda_hip``                  Translation of very similar APIs (CUDA → HIP)
``openacc_openmp``            Translation of directive-based APIs (OpenACC → OpenMP)
``stl_modernize``             Introduction of modern C++ STL constructs (std::find)
``kokkos_lambda``             Introduction of APIs enclosing lambdas (Kokkos)
``compiler_workaround``       Workarounds for occasional compiler bugs (LIBRSB)
``aos_soa``                   AoS → SoA case study (GADGET, [ML21])
============================  =========================================================
"""

from typing import Optional

from . import (
    aos_soa,
    bloat_removal,
    compiler_workaround,
    cuda_hip,
    declare_variant,
    instrumentation,
    kokkos_lambda,
    mdspan,
    multiversioning,
    openacc_openmp,
    stl_modernize,
    unrolling,
)

__all__ = [
    "aos_soa", "bloat_removal", "compiler_workaround", "cuda_hip",
    "declare_variant", "instrumentation", "kokkos_lambda", "mdspan",
    "multiversioning", "openacc_openmp", "stl_modernize", "unrolling",
    "builders", "full_modernization_pipeline",
]


def builders() -> dict:
    """The canonical ``name -> zero-argument builder`` table of the twelve
    ready-to-apply cookbook patches (the CLI's ``--cookbook`` names and the
    order :func:`full_modernization_pipeline` applies them in)."""
    return {
        "likwid_instrumentation": instrumentation.likwid_patch,
        "declare_variant": declare_variant.declare_variant_patch,
        "target_multiversioning": multiversioning.clone_with_target_attributes,
        "bloat_removal": bloat_removal.remove_obsolete_clones,
        "reroll_p0": unrolling.reroll_patch_p0,
        "reroll_p1r1": unrolling.reroll_patch_p1_r1,
        "mdspan_multiindex": mdspan.multiindex_patch,
        "cuda_to_hip": cuda_hip.cuda_to_hip_patch,
        "acc_to_omp": openacc_openmp.acc_to_omp_patch,
        "raw_loop_to_find": stl_modernize.raw_loop_to_find_patch,
        "kokkos_lambda": kokkos_lambda.kokkos_patch,
        "gcc_workaround": compiler_workaround.gcc_workaround_patch,
    }


def full_modernization_pipeline(*, mdspan_arrays: Optional[dict] = None):
    """The whole cookbook as one :class:`~repro.api.PatchSet`: every
    ready-to-apply use-case patch, in the canonical :func:`builders` order,
    batch-applied in a single driver pass.

    ``mdspan_arrays`` optionally redirects the mdspan multi-index patch at
    specific ``{array_name: rank}`` pairs (the default targets the literal
    array ``a`` of the paper's listing).
    """
    from ..api import PatchSet

    patches = []
    for name, builder in builders().items():
        if name == "mdspan_multiindex" and mdspan_arrays is not None:
            patches.append(mdspan.multiindex_patch_for_arrays(mdspan_arrays))
        else:
            patches.append(builder())
    return PatchSet(patches, name="full-modernization")
