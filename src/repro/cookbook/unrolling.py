"""Use case: removal of explicit loop unrolling.

Paper, Section 3, *"Removal of explicit loop unrolling"*: script-generated
code bases often contain manually unrolled loops whose generator has been
lost.  Two strategies are given for loops unrolled ``k`` times (``k = 4`` in
the paper), both replacing the explicit unrolling with the OpenMP 5.1
``#pragma omp unroll partial`` request:

* rule ``p0`` matches a loop whose body is four statements using
  ``i+0 .. i+3`` and deletes the last three — simple, but may mis-fire when
  the four statements are not identical modulo the index;
* rules ``p1`` + ``r1`` first rewrite ``i+1 .. i+3`` to ``i+0`` (``p1``) and
  only then (``r1``) collapse the body when the rewrite really produced four
  identical statements, which is the safer variant the paper recommends for
  ambiguous code bases.
"""

from __future__ import annotations

from ..api import SemanticPatch


PAPER_LISTING_P0 = r"""
@p0@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
+ #pragma omp unroll partial(4)
for (T i=0; i
- +k-1
< l ;
- i+=k
+ ++i
)
{
\( A \& i+0 \) \(
- B \& i+1
\) \(
- C \& i+2
\) \(
- D \& i+3
\)
}
"""

PAPER_LISTING_P1_R1 = r"""
@p1@
type T;
identifier i,l;
constant k={4};
statement A,B,C,D;
@@
for (T i=0; i+k-1 < l; i+=k)
{
\( A \& i+0 \) \( B \&
- i+1
+ i+0
\) \( C \&
- i+2
+ i+0
\) \( D \&
- i+3
+ i+0
\)
}

@r1@
type T;
identifier i,l;
constant k={4};
statement p1.A;
@@
+ #pragma omp unroll partial(4)
for (T i=0; i
- +k-1
< l ;
- i+=k
+ ++i
)
{
A
- A A A
}
"""


def paper_listing_p0() -> str:
    """Rule ``p0`` as printed in the paper."""
    return PAPER_LISTING_P0


def paper_listing_p1_r1() -> str:
    """Rules ``p1`` and ``r1`` as printed in the paper."""
    return PAPER_LISTING_P1_R1


def _statement_groups(factor: int, replace_index: bool) -> str:
    """Render the conjunction groups of the loop body for a given unroll
    factor.  With ``replace_index`` the groups rewrite ``i+n`` to ``i+0``
    (rules p1); otherwise they delete the repeated statements (rule p0)."""
    letters = [f"S{n}" for n in range(factor)]
    chunks = [rf"\( {letters[0]} \& i+0 \)"]
    for n in range(1, factor):
        if replace_index:
            chunks.append(rf"\( {letters[n]} \&" + "\n"
                          + f"- i+{n}\n+ i+0\n" + r"\)")
        else:
            chunks.append(rf"\(" + "\n" + rf"- {letters[n]} \& i+{n}" + "\n" + r"\)")
    return " ".join(chunks)


def _statement_decl(factor: int) -> str:
    return "statement " + ",".join(f"S{n}" for n in range(factor)) + ";"


def reroll_patch_p0(factor: int = 4) -> SemanticPatch:
    """Rule ``p0`` generalised to an arbitrary unroll factor."""
    text = f"""\
@p0@
type T;
identifier i,l;
constant k={{{factor}}};
{_statement_decl(factor)}
@@
+ #pragma omp unroll partial({factor})
for (T i=0; i
- +k-1
< l ;
- i+=k
+ ++i
)
{{
{_statement_groups(factor, replace_index=False)}
}}
"""
    return SemanticPatch.from_string(text, name=f"reroll-p0-{factor}")


def reroll_patch_p1_r1(factor: int = 4) -> SemanticPatch:
    """Rules ``p1`` + ``r1`` generalised to an arbitrary unroll factor."""
    repeated = " ".join("S0" for _ in range(factor - 1))
    text = f"""\
@p1@
type T;
identifier i,l;
constant k={{{factor}}};
{_statement_decl(factor)}
@@
for (T i=0; i+k-1 < l; i+=k)
{{
{_statement_groups(factor, replace_index=True)}
}}

@r1@
type T;
identifier i,l;
constant k={{{factor}}};
statement p1.S0;
@@
+ #pragma omp unroll partial({factor})
for (T i=0; i
- +k-1
< l ;
- i+=k
+ ++i
)
{{
S0
- {repeated}
}}
"""
    return SemanticPatch.from_string(text, name=f"reroll-p1r1-{factor}")


def reroll_patch_checked(factor: int = 4) -> SemanticPatch:
    """The *checked* strategy — our implementation of the follow-up the paper
    asks for ("we could introduce a third rule that undoes the
    transformations of p1 when r1 is not applied"): instead of rewriting and
    undoing, a pure matching rule binds the ``factor`` candidate statements, a
    ``script:python`` rule verifies that they really are copies of the first
    one modulo the index offset (dropping the environment otherwise), and only
    then does the transforming rule reroll the loop.  Impostor loops are left
    completely untouched."""
    letters = [f"S{n}" for n in range(factor)]
    groups = " ".join(rf"\( {letters[n]} \& i+{n} \)" for n in range(factor))
    imports = "\n".join(f"{s} << cand.{s};" for s in letters)
    stmt_decl_inherited = "\n".join(f"statement cand.{s};" for s in letters)
    norm_checks = "\n".join(
        f"ok = ok and _same(S0, S{n}, {n})" for n in range(1, factor))
    repeated = " ".join(letters[1:])
    text = f"""\
@cand@
type T;
identifier i,l;
constant k={{{factor}}};
{_statement_decl(factor)}
@@
for (T i=0; i+k-1 < l; i+=k)
{{
{groups}
}}

@script:python verify@
{imports}
i << cand.i;
@@
import re
def _same(first, other, offset):
    rewritten = re.sub(r"\\b" + re.escape(i) + r"\\s*\\+\\s*" + str(offset) + r"\\b",
                       i + "+0", other)
    return " ".join(first.split()) == " ".join(rewritten.split())
ok = True
{norm_checks}
if not ok:
    cocci.include_match(False)

@reroll depends on verify@
type T;
identifier cand.i;
identifier cand.l;
constant k={{{factor}}};
{stmt_decl_inherited}
@@
+ #pragma omp unroll partial({factor})
for (T i=0; i
- +k-1
< l ;
- i+=k
+ ++i
)
{{
S0
- {repeated}
}}
"""
    return SemanticPatch.from_string(text, name=f"reroll-checked-{factor}")


#: available unroll-removal strategies, from the least to the most careful
STRATEGIES = ("p0", "p1r1", "checked")


def reroll_patch(factor: int = 4, safe: bool = True,
                 strategy: str | None = None) -> SemanticPatch:
    """The unroll-removal patch.

    ``strategy`` selects among ``"p0"`` (paper rule p0), ``"p1r1"`` (paper
    rules p1+r1) and ``"checked"`` (p1+r1 plus the verification rule the
    paper proposes as follow-up).  Without ``strategy``, ``safe=True`` maps to
    ``"p1r1"`` as in the paper.
    """
    if strategy is None:
        strategy = "p1r1" if safe else "p0"
    if strategy == "p0":
        return reroll_patch_p0(factor)
    if strategy == "p1r1":
        return reroll_patch_p1_r1(factor)
    if strategy == "checked":
        return reroll_patch_checked(factor)
    raise ValueError(f"unknown unroll-removal strategy {strategy!r}; "
                     f"expected one of {STRATEGIES}")
