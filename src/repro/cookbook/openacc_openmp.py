"""Use case: translation of directive-based APIs (OpenACC → OpenMP).

Paper, Section 3, *"Translation of directive-based APIs"*: for the majority
of projects, which stick to a specific subset of OpenACC, translation can
proceed directive-line by directive-line.  A matching rule (``moa``) binds
the ``pragmainfo`` of every ``#pragma acc`` line, a Python rule translates
the clause list (the paper returns a hard-coded clause "for simplicity" and
suggests a small parser/translator — implemented here), and a final rule
replaces the OpenACC line with the corresponding OpenMP one.

The clause translator below follows the same logic as Intel's
``intel-application-migration-tool-for-openacc-to-openmp`` for the common
directives, but — as the paper points out — receives well-formed directive
text because Coccinelle already merged line continuations and normalised
whitespace.
"""

from __future__ import annotations

import json

from ..api import SemanticPatch


#: directive-word level translation used by the embedded python translator
DIRECTIVE_MAP: dict[str, str] = {
    "parallel loop": "target teams distribute parallel for",
    "kernels loop": "target teams distribute parallel for",
    "parallel": "target teams",
    "kernels": "target teams",
    "loop": "distribute parallel for",
    "data": "target data",
    "enter data": "target enter data",
    "exit data": "target exit data",
    "update": "target update",
    "routine": "declare target",
    "declare": "declare target",
    "wait": "taskwait",
    "atomic": "atomic",
}

#: clause-level translation
CLAUSE_MAP: dict[str, str] = {
    "copy": "map(tofrom: {args})",
    "copyin": "map(to: {args})",
    "copyout": "map(from: {args})",
    "create": "map(alloc: {args})",
    "present": "map(present, alloc: {args})",
    "deviceptr": "is_device_ptr({args})",
    "private": "private({args})",
    "firstprivate": "firstprivate({args})",
    "reduction": "reduction({args})",
    "num_gangs": "num_teams({args})",
    "num_workers": "thread_limit({args})",
    "vector_length": "simdlen({args})",
    "collapse": "collapse({args})",
    "async": "nowait",
    "gang": "",
    "worker": "",
    "vector": "simd",
    "seq": "",
    "independent": "",
}


PAPER_LISTING = """\
@moa@
pragmainfo pi;
@@
#pragma acc pi

@script:python o2o@
pi << moa.pi;
po;
@@
// Here we could have a small parser and translator using pi, but for
// simplicity we are just returning a hardcoded clause
coccinelle.po = cocci.make_pragmainfo("kernels copy(a)")

@@
pragmainfo moa.pi;
pragmainfo o2o.po;
@@
- #pragma acc pi
+ #pragma omp po
"""


def paper_listing() -> str:
    """The skeleton semantic patch as printed in the paper (hard-coded
    replacement clause)."""
    return PAPER_LISTING


#: The translator injected into the script rule.  It is ordinary Python code
#: textually embedded in the semantic patch, exactly as the paper suggests
#: ("such a Python rule could invoke a line-oriented parser-based translator
#: implemented in place or in a separate Python module").
_TRANSLATOR_CODE = '''
def _split_clauses(text):
    """Split an OpenACC clause list into (name, args) pairs, respecting
    parentheses."""
    out, word, args, depth, in_args = [], "", "", 0, False
    for ch in text + " ":
        if ch == "(":
            depth += 1
            if depth == 1:
                in_args = True
                continue
        if ch == ")":
            depth -= 1
            if depth == 0:
                in_args = False
                out.append((word.strip(), args.strip()))
                word, args = "", ""
                continue
        if in_args:
            args += ch
        elif ch.isspace():
            if word:
                out.append((word.strip(), ""))
                word = ""
        else:
            word += ch
    return [c for c in out if c[0]]


def translate_acc_to_omp(pragmainfo):
    """Translate the body of one '#pragma acc' line to its OpenMP equivalent."""
    words = pragmainfo.strip()
    clauses = _split_clauses(words)
    if not clauses:
        return "target"
    names = [c[0] for c in clauses]
    # directive = longest matching prefix of bare clause names
    directive_words = []
    consumed = 0
    for name, args in clauses:
        if args == "" and (" ".join(directive_words + [name]) in DIRECTIVE_MAP
                           or name in DIRECTIVE_MAP) and consumed == len(directive_words):
            directive_words.append(name)
            consumed += 1
        else:
            break
    directive_key = " ".join(directive_words) if directive_words else names[0]
    omp_directive = DIRECTIVE_MAP.get(directive_key) or DIRECTIVE_MAP.get(names[0], "target")
    out_clauses = []
    for name, args in clauses[consumed:]:
        template = CLAUSE_MAP.get(name)
        if template is None:
            out_clauses.append(name + ("(" + args + ")" if args else ""))
        elif template:
            out_clauses.append(template.format(args=args))
    return " ".join([omp_directive] + [c for c in out_clauses if c])
'''


def patch_text(directive_map: dict[str, str] | None = None,
               clause_map: dict[str, str] | None = None) -> str:
    """The full OpenACC→OpenMP patch with the embedded clause translator."""
    dmap = json.dumps(DIRECTIVE_MAP if directive_map is None else directive_map, indent=1)
    cmap = json.dumps(CLAUSE_MAP if clause_map is None else clause_map, indent=1)
    return f"""\
@initialize:python@ @@
DIRECTIVE_MAP = {dmap}
CLAUSE_MAP = {cmap}
{_TRANSLATOR_CODE}

@moa@
pragmainfo pi;
@@
#pragma acc pi

@script:python o2o@
pi << moa.pi;
po;
@@
coccinelle.po = cocci.make_pragmainfo(translate_acc_to_omp(pi))

@replace@
pragmainfo moa.pi;
pragmainfo o2o.po;
@@
- #pragma acc pi
+ #pragma omp po
"""


def acc_to_omp_patch(directive_map: dict[str, str] | None = None,
                     clause_map: dict[str, str] | None = None) -> SemanticPatch:
    """The OpenACC→OpenMP translation patch with a real clause translator."""
    return SemanticPatch.from_string(patch_text(directive_map, clause_map),
                                     name="openacc-to-openmp")


def hardcoded_paper_patch() -> SemanticPatch:
    """The paper's skeleton (hard-coded ``kernels copy(a)`` output) — kept for
    the tests that follow the listing verbatim."""
    return SemanticPatch.from_string(PAPER_LISTING, name="openacc-skeleton")
