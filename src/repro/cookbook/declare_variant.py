"""Use case: OpenMP ``declare variant`` function cloning.

Paper, Section 3, *"OpenMP's declare variant"*: for every function whose name
matches a regular expression (``"kernel"`` in the paper), create one clone
per target instruction-set architecture, and declare the clones as variants
of the base function with ``#pragma omp declare variant`` lines placed just
above the base definition.  The clone names are built with ``fresh
identifier`` metavariables using the ``##`` concatenation operator.

Note on the published listing: the paper's pragma lines reference ``v512_f``
and ``v10_f`` while the declared fresh identifiers are ``f512`` and ``f10``;
we use the declared names so the generated pragmas actually refer to the
clones (the discrepancy is recorded in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api import SemanticPatch


@dataclass(frozen=True)
class VariantSpec:
    """One ISA variant to generate: clone-name prefix and the ``match`` clause
    device ISA string."""

    prefix: str
    isa: str


DEFAULT_VARIANTS = (
    VariantSpec(prefix="avx512_", isa="core-avx512"),
    VariantSpec(prefix="avx10_", isa="core-avx10"),
)


PAPER_LISTING = """\
@@
type T;
identifier f =~ "kernel";
parameter list PL;
statement list SL;
fresh identifier f512 = "avx512_" ## f;
fresh identifier f10 = "avx10_" ## f;
@@
+ T f512 (PL) { SL }
+ T f10 (PL) { SL }
+ #pragma omp declare variant(f512) match(device={isa("core-avx512")})
+ #pragma omp declare variant(f10) match(device={isa("core-avx10")})
T f (PL) { SL }
"""


def paper_listing() -> str:
    """The semantic patch essentially as printed in the paper."""
    return PAPER_LISTING


def patch_text(function_regex: str = "kernel",
               variants: tuple[VariantSpec, ...] = DEFAULT_VARIANTS) -> str:
    """Render the declare-variant cloning patch for arbitrary ISA variants."""
    fresh_decls = []
    clone_lines = []
    pragma_lines = []
    for idx, spec in enumerate(variants):
        mv = f"fv{idx}"
        fresh_decls.append(f'fresh identifier {mv} = "{spec.prefix}" ## f;')
        clone_lines.append(f"+ T {mv} (PL) {{ SL }}")
        pragma_lines.append(
            f'+ #pragma omp declare variant({mv}) match(device={{isa("{spec.isa}")}})')
    decls = "\n".join(fresh_decls)
    plus = "\n".join(clone_lines + pragma_lines)
    # the pure-match guard makes the cloning idempotent at file granularity:
    # a file that already carries declare-variant pragmas (only this patch
    # introduces them in the targeted kernels) is not cloned again — without
    # it a second application would clone the clones
    return f"""\
@has_variants@ @@
#pragma omp declare ...

@clone depends on !has_variants@
type T;
identifier f =~ "{function_regex}";
parameter list PL;
statement list SL;
{decls}
@@
{plus}
T f (PL) {{ SL }}
"""


def declare_variant_patch(function_regex: str = "kernel",
                          variants: tuple[VariantSpec, ...] = DEFAULT_VARIANTS) -> SemanticPatch:
    """The paper's declare-variant cloning patch, parameterised."""
    return SemanticPatch.from_string(patch_text(function_regex, variants),
                                     name="declare-variant")


def specialization_patch(clone_prefix: str, pragma: str) -> SemanticPatch:
    """A follow-up patch of the kind the paper alludes to ("a few extra rules
    that enact specific transformations on them"): here, prepend an
    architecture-specific pragma to the loops of every clone created with the
    given prefix, exploiting the clone naming convention to target only the
    clones."""
    text = f"""\
@specialize@
type T;
identifier g =~ "^{clone_prefix}";
@@
T g(...)
{{
...
}}

@loops depends on specialize@
identifier i;
expression n;
@@
+ #pragma {pragma}
for (...; i < n; ...)
{{
...
}}
"""
    return SemanticPatch.from_string(text, name=f"specialize-{clone_prefix}")
