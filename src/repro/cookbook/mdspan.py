"""Use case: advanced expression modification (multi-index subscripts).

Paper, Section 3, *"Advanced expression modification (e.g. mdspan)"*:
converting a data structure to C++23 ``std::mdspan`` requires rewriting a
large number of array-access expressions from the chained form
``a[x][y][z]`` to the multi-index form ``a[x, y, z]``.  The rule is applied
per array name; the paper notes that in production the array names should be
derived from global declarations — :func:`multiindex_patch_for_arrays`
accepts that list, and :func:`multiindex_patch_from_codebase` derives it from
the declarations in a code base via the symbol table.
"""

from __future__ import annotations

from ..api import CodeBase, SemanticPatch
from ..lang.parser import parse_source
from ..lang.symbols import build_symbol_table
from ..options import SpatchOptions


PAPER_LISTING = """\
# spatch --c++=23
@tomultiindex@
symbol a;
expression x,y,z;
@@
- a[x][y][z]
+ a[x, y, z]
"""


def paper_listing() -> str:
    """The semantic patch exactly as printed in the paper."""
    return PAPER_LISTING


def _rule_for(array: str, rank: int, index: int) -> str:
    metavars = [f"x{i}" for i in range(rank)]
    chained = "".join(f"[{m}]" for m in metavars)
    multi = ", ".join(metavars)
    return f"""\
@tomultiindex_{index}@
symbol {array};
expression {", ".join(metavars)};
@@
- {array}{chained}
+ {array}[{multi}]
"""


def multiindex_patch(array: str = "a", rank: int = 3) -> SemanticPatch:
    """The paper's rule for one array name (default: the literal ``a`` of the
    listing) and one rank."""
    text = "# spatch --c++=23\n" + _rule_for(array, rank, 0)
    return SemanticPatch.from_string(text, name=f"mdspan-{array}")


def multiindex_patch_for_arrays(arrays: dict[str, int]) -> SemanticPatch:
    """One rule per ``{array_name: rank}`` entry, in a single patch."""
    chunks = ["# spatch --c++=23"]
    for index, (array, rank) in enumerate(sorted(arrays.items())):
        chunks.append(_rule_for(array, rank, index))
    return SemanticPatch.from_string("\n".join(chunks), name="mdspan-multi")


def arrays_of_rank(codebase: CodeBase, min_rank: int = 2,
                   options: SpatchOptions | None = None) -> dict[str, int]:
    """Find global arrays with at least ``min_rank`` dimensions in a code
    base — the "follow a match in a global declaration" refinement the paper
    recommends before applying the rewrite in production."""
    options = options or SpatchOptions(cxx=23)
    found: dict[str, int] = {}
    for name, text in codebase.items():
        tree = parse_source(text, name=name, options=options)
        table = build_symbol_table(tree)
        for var in table.globals.values():
            if len(var.array_dims) >= min_rank:
                rank = len(var.array_dims)
                found[var.name] = max(rank, found.get(var.name, 0))
    return found


def multiindex_patch_from_codebase(codebase: CodeBase, min_rank: int = 2) -> SemanticPatch:
    """Derive the per-array rules from the code base's own declarations."""
    arrays = arrays_of_rank(codebase, min_rank=min_rank)
    if not arrays:
        # fall back to the paper's literal example so the patch is well formed
        return multiindex_patch()
    return multiindex_patch_for_arrays(arrays)
