"""Use case: introduction of APIs enclosing lambdas (Kokkos).

Paper, Section 3, *"Introduction of APIs enclosing lambdas"*: Kokkos, RAJA,
ISO C++ parallel algorithms and SYCL all require wrapping numerical kernels
in C++ lambdas.  Since Coccinelle (1.3) does not yet fully support lambda
manipulation, the paper demonstrates a "loophole": the loop body matched as a
statement is turned into a lambda *string* in a Python rule and passed back
through an ``identifier`` metavariable into calls to ``parallel_for`` /
``parallel_reduce``.

Two flavours are provided:

* :func:`paper_listing` — the exercise-specific patch of the paper (index
  variables ``i``/``j``, hard-coded ``RangePolicy`` bound ``n``, lambda index
  ``i``), targeting the loops of Kokkos tutorial exercise 01;
* :func:`kokkos_patch` — the same rule chain with the small generalisations
  the prose calls for: the policy bound and the lambda index are taken from
  the matched loop rather than hard-coded.
"""

from __future__ import annotations

from ..api import SemanticPatch
from ..options import SpatchOptions


PAPER_LISTING = """\
#spatch --c++
@r0@ @@
+ #include <Kokkos_Core.hpp>
#include <cmath>

@r1@
statement fb, fc;
expression n;
identifier c = {i,j};
position p;
@@
(
fc@p
&
for (...;c<n;...) fb
)

@script:python r2@
fb << r1.fb;
lb;
rp;
@@
coccinelle.lb = "KOKKOS_LAMBDA(const int i)" + fb
coccinelle.rp = "RangePolicy<HostExecutionSpace>(0,n)"

@r3@
statement r1.fc;
position r1.p;
identifier r2.lb;
identifier r2.rp;
@@
(
fc@p
&
(
- for (...;...;...) { ... result += ...; }
+ parallel_reduce(rp, lb);
|
- for (...;...;...) { ... }
+ parallel_for(rp, lb);
)
)
"""


def paper_listing() -> str:
    """The semantic patch essentially as printed in the paper (targeting the
    Kokkos tutorial exercise: loops with index variables ``i`` and ``j``)."""
    return PAPER_LISTING


def paper_patch() -> SemanticPatch:
    """The verbatim paper patch."""
    return SemanticPatch.from_string(PAPER_LISTING, name="kokkos-paper",
                                     options=SpatchOptions(cxx=17))


def patch_text(index_vars: tuple[str, ...] = ("i", "j"),
               accumulator: str = "result",
               execution_space: str = "Kokkos::DefaultHostExecutionSpace",
               anchor_header: str = "cmath") -> str:
    """The generalised rule chain: the RangePolicy bound and the lambda index
    come from the matched loop (metavariables ``n`` and ``c`` imported into
    the Python rule), and the reduction accumulator name is configurable."""
    idx_set = ",".join(index_vars)
    # the pure-match guard keeps r0 idempotent: a file that already includes
    # Kokkos_Core.hpp (only this patch adds it here) is not given a second copy
    return f"""\
#spatch --c++
@has_core_header@ @@
#include <Kokkos_Core.hpp>

@r0 depends on !has_core_header@ @@
+ #include <Kokkos_Core.hpp>
#include <{anchor_header}>

@r1@
statement fb, fc;
expression n;
identifier c = {{{idx_set}}};
position p;
@@
(
fc@p
&
for (...;c<n;...) fb
)

@script:python r2@
fb << r1.fb;
n << r1.n;
c << r1.c;
lb;
rp;
@@
coccinelle.lb = "KOKKOS_LAMBDA(const int " + c + ")" + fb
coccinelle.rp = "Kokkos::RangePolicy<{execution_space}>(0, " + n + ")"

@r3@
statement r1.fc;
position r1.p;
identifier r2.lb;
identifier r2.rp;
identifier r1.c;
expression r1.n;
@@
(
fc@p
&
(
- for (...;...;...) {{ ... {accumulator} += ...; }}
+ Kokkos::parallel_reduce(rp, lb, {accumulator});
|
- for (...;...;...) {{ ... }}
+ Kokkos::parallel_for(rp, lb);
)
)
"""


def kokkos_patch(index_vars: tuple[str, ...] = ("i", "j"),
                 accumulator: str = "result",
                 execution_space: str = "Kokkos::DefaultHostExecutionSpace",
                 anchor_header: str = "cmath") -> SemanticPatch:
    """Generalised Kokkos lambda-introduction patch."""
    return SemanticPatch.from_string(
        patch_text(index_vars, accumulator, execution_space, anchor_header),
        name="kokkos-lambda", options=SpatchOptions(cxx=17))
