"""Use case: interfacing with an instrumentation (marker) API.

Paper, Section 3, *"Interfacing with an instrumentation API"*: insert calls
to a marker API (LIKWID, Score-P, Caliper, ...) around OpenMP regions so that
performance metrics are collected per code phase.  The semantic patch has two
rules: one adds the marker header next to ``#include <omp.h>``, the other
encloses every ``#pragma omp`` region that is followed by a braced block with
start/stop marker calls labelled by ``__func__``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api import SemanticPatch


#: Marker APIs the builder knows about: header, start macro, stop macro.
MARKER_APIS = {
    "likwid": ("likwid-marker.h", "LIKWID_MARKER_START", "LIKWID_MARKER_STOP"),
    "scorep": ("scorep/SCOREP_User.h", "SCOREP_USER_REGION_BY_NAME_BEGIN",
               "SCOREP_USER_REGION_BY_NAME_END"),
    "caliper": ("caliper/cali.h", "CALI_MARK_BEGIN", "CALI_MARK_END"),
}


PAPER_LISTING = """\
@@ @@
#include <omp.h>
+ #include <likwid-marker.h>

@@ @@
#pragma omp ...
{
+ LIKWID_MARKER_START(__func__);
...
+ LIKWID_MARKER_STOP(__func__);
}
"""


def paper_listing() -> str:
    """The semantic patch exactly as printed in the paper."""
    return PAPER_LISTING


@dataclass(frozen=True)
class InstrumentationConfig:
    """Configuration of the instrumentation patch.

    ``api`` selects the marker API; ``pragma_prefix`` restricts which pragma
    lines are instrumented (the paper suggests refining the pattern "to be
    more selective in choosing such code locations"); ``label`` is the
    expression passed to the marker macros (``__func__`` by default).
    """

    api: str = "likwid"
    pragma_prefix: str = "omp"
    label: str = "__func__"

    def marker(self) -> tuple[str, str, str]:
        if self.api not in MARKER_APIS:
            raise ValueError(f"unknown marker API {self.api!r}; "
                             f"known: {sorted(MARKER_APIS)}")
        return MARKER_APIS[self.api]


def patch_text(config: InstrumentationConfig = InstrumentationConfig()) -> str:
    """Render the semantic patch for a given marker API / pragma prefix.

    Unlike the paper's listing, the rendered patch is *idempotent*: two
    pure-match guard rules detect a file that already carries the marker
    header / marker calls, and the inserting rules ``depend on !`` them, so
    re-applying the patch to its own output changes nothing (file-level
    granularity — the standard Coccinelle guard idiom).
    """
    header, start, stop = config.marker()
    return f"""\
@has_header@ @@
#include <{header}>

@add_header depends on !has_header@ @@
#include <omp.h>
+ #include <{header}>

@has_markers@ @@
{start}({config.label});

@instrument depends on !has_markers@ @@
#pragma {config.pragma_prefix} ...
{{
+ {start}({config.label});
...
+ {stop}({config.label});
}}
"""


def likwid_patch() -> SemanticPatch:
    """The paper's LIKWID instrumentation patch."""
    return SemanticPatch.from_string(patch_text(), name="instrumentation-likwid")


def marker_patch(api: str = "likwid", pragma_prefix: str = "omp",
                 label: str = "__func__") -> SemanticPatch:
    """Instrumentation patch for an arbitrary marker API."""
    config = InstrumentationConfig(api=api, pragma_prefix=pragma_prefix, label=label)
    return SemanticPatch.from_string(patch_text(config),
                                     name=f"instrumentation-{api}")


def removal_patch(api: str = "likwid") -> SemanticPatch:
    """The inverse refactoring the paper mentions ("introduction and removal
    of instrumentation syntax"): strip the marker calls and the header again,
    restoring the un-instrumented code."""
    header, start, stop = InstrumentationConfig(api=api).marker()
    text = f"""\
@strip_header@ @@
#include <omp.h>
- #include <{header}>

@strip_markers@
expression L;
@@
- {start}(L);
...
- {stop}(L);
"""
    return SemanticPatch.from_string(text, name=f"instrumentation-remove-{api}")
