"""Engine-wide options, mirroring the relevant ``spatch`` command line flags.

The paper's listings use ``# spatch --c++=23`` / ``#spatch --c++`` pseudo
option lines inside the semantic patches; :class:`SpatchOptions` is the
Python-side equivalent, and the SmPL parser recognises those option lines and
folds them into the options attached to a parsed patch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


#: C++ standard levels the front end accepts for the ``--c++`` option.
CXX_LEVELS = (11, 14, 17, 20, 23, 26)


@dataclass(frozen=True)
class SpatchOptions:
    """Options controlling parsing and rule application.

    Attributes
    ----------
    cxx:
        ``None`` parses plain C; an integer (e.g. ``17`` or ``23``) enables
        the C++ subset of the front end (range-``for``, references, lambdas,
        qualified names, multi-index subscripts).  ``spatch --c++`` with no
        level maps to the newest supported level.
    extra_types:
        Additional identifiers to treat as type names when disambiguating
        declarations from expressions (the equivalent of Coccinelle's
        ``--macro-file`` style hints).
    attribute_names:
        Non ``__``-prefixed attribute keywords that should be recognised, as
        the paper notes Coccinelle requires declaring via ``attribute name``.
    apply_isomorphisms:
        Enable the built-in isomorphisms (commutative comparisons, redundant
        parentheses, ``E + 0`` equivalence).
    max_dots_statements:
        Safety bound on how many statements a single ``...`` may absorb.
    python_scripting:
        Allow ``script:python`` rules to execute.  Disabled engines treat
        script rules as matching nothing (useful for sandboxed runs).
    diff_context_lines:
        Context lines for generated unified diffs.
    verbose:
        Emit informational diagnostics about rule application.
    """

    cxx: Optional[int] = None
    extra_types: tuple[str, ...] = field(default_factory=tuple)
    attribute_names: tuple[str, ...] = field(default_factory=tuple)
    apply_isomorphisms: bool = True
    max_dots_statements: int = 2000
    python_scripting: bool = True
    diff_context_lines: int = 3
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.cxx is not None and self.cxx not in CXX_LEVELS:
            raise ValueError(f"unsupported C++ level {self.cxx!r}; expected one of {CXX_LEVELS}")

    # -- convenience -----------------------------------------------------

    @property
    def is_cxx(self) -> bool:
        """True when the C++ subset of the front end is enabled."""
        return self.cxx is not None

    def with_cxx(self, level: int | None = 17) -> "SpatchOptions":
        """Return a copy of the options with the C++ level set."""
        return replace(self, cxx=level)

    def with_extra_types(self, *names: str) -> "SpatchOptions":
        """Return a copy with additional type-name hints for the parser."""
        return replace(self, extra_types=tuple(self.extra_types) + tuple(names))

    @classmethod
    def from_spatch_line(cls, line: str, base: "SpatchOptions | None" = None) -> "SpatchOptions":
        """Parse a ``# spatch --c++=23`` style pseudo-option line.

        Unknown flags are ignored, matching spatch's permissiveness for
        comment-embedded option lines.
        """
        opts = base or cls()
        text = line.lstrip("#").strip()
        if text.startswith("spatch"):
            text = text[len("spatch"):].strip()
        for word in text.split():
            if word.startswith("--c++"):
                if "=" in word:
                    try:
                        level = int(word.split("=", 1)[1])
                    except ValueError:
                        level = CXX_LEVELS[-1]
                else:
                    level = CXX_LEVELS[-1]
                if level not in CXX_LEVELS:
                    # clamp to the closest supported level rather than failing
                    level = min(CXX_LEVELS, key=lambda lv: abs(lv - level))
                opts = replace(opts, cxx=level)
            elif word == "--verbose":
                opts = replace(opts, verbose=True)
            elif word == "--no-isos":
                opts = replace(opts, apply_isomorphisms=False)
        return opts


DEFAULT_OPTIONS = SpatchOptions()
