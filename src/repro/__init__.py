"""repro — a Python reproduction of "Advances in Semantic Patching for
HPC-oriented Refactorings with Coccinelle" (Martone & Lawall, IPPS 2025).

The package provides:

* :mod:`repro.lang` — a from-scratch C/C++-subset front end (lexer, parser,
  AST, CFG, pretty printer, symbol tables),
* :mod:`repro.smpl` — the Semantic Patch Language: rules, metavariables,
  dots, disjunction/conjunction, python scripting rules, isomorphisms,
* :mod:`repro.engine` — the matching and transformation engine producing
  byte-accurate edits and unified diffs,
* :mod:`repro.cookbook` — the paper's eleven HPC refactoring use cases plus
  the AoS→SoA case study, as reusable, parameterisable semantic patches,
* :mod:`repro.workloads` — synthetic HPC code bases standing in for the
  codes the paper refers to (GADGET, Kokkos tutorial, LIBRSB, CUDA/OpenACC
  mini-apps, script-generated unrolled kernels),
* :mod:`repro.baselines` — the text/line-oriented tools the paper contrasts
  with (hipify-perl-like, Intel-migration-script-like, sed-like),
* :mod:`repro.eval` — a mini C interpreter used to check that
  transformations preserve observable behaviour,
* :mod:`repro.analysis` — metrics (terseness, robustness, scaling) backing
  the experiment harness in ``benchmarks/``.

Quick start::

    from repro import SemanticPatch, CodeBase
    from repro.cookbook import instrumentation
    from repro.workloads import openmp_kernels

    code = openmp_kernels.generate(n_files=4, kernels_per_file=6, seed=0)
    patch = instrumentation.likwid_patch()
    result = patch.apply(code)
    print(result.summary())
"""

from .api import CodeBase, PatchSet, SemanticPatch, apply_patch
from .options import SpatchOptions, DEFAULT_OPTIONS
from .errors import (
    CParseError, Diagnostic, EditConflictError, FrontendParseError,
    InterpreterError, LexError, MetavarError, PatchFileError, ReproError,
    ScriptRuleError, SmplParseError, TransformError, WorkloadError,
)
from .engine.report import FileResult, PatchResult, RuleReport

__version__ = "1.3.0"

__all__ = [
    "CodeBase", "PatchSet", "SemanticPatch", "apply_patch",
    "SpatchOptions", "DEFAULT_OPTIONS",
    "FileResult", "PatchResult", "RuleReport",
    "ReproError", "LexError", "CParseError", "SmplParseError", "MetavarError",
    "ScriptRuleError", "TransformError", "EditConflictError",
    "InterpreterError", "WorkloadError", "Diagnostic",
    "FrontendParseError", "PatchFileError",
    "__version__",
]
