"""Filesystem-watching backends for ``--watch`` and workspace auto-refresh.

The watch loops never *trust* a backend: change classification stays with
the portable two-stage sweep (mtime+size stat gate, then content hashes
deciding what re-runs), so a backend only answers one question — *"may
anything have changed since I last asked?"* — through ``wait(timeout)``.
Returning ``True`` means "sweep now"; a spurious ``True`` costs one cheap
sweep and a missed event costs only latency (callers still sweep at least
once per timeout).  That contract lets three implementations coexist:

* :class:`WatchdogWatcher` — the optional third-party ``watchdog`` package
  (kqueue/FSEvents/ReadDirectoryChangesW where available), feature-detected
  and never required;
* :class:`InotifyWatcher` — Linux inotify via ``ctypes`` + ``selectors``,
  no third-party code;
* :class:`PollWatcher` — the portable fallback: ``wait`` simply sleeps the
  interval and reports "sweep now", reproducing the original polling loop.

:func:`create_watcher` picks the best available backend (or an explicitly
requested one — the ``REPRO_WATCH_BACKEND`` environment variable and the
CLI's ``--watch-backend`` both force a choice, which is how tests pin the
fallback path), logs the decision, and degrades to polling whenever a
fancier backend cannot start.
"""

from __future__ import annotations

import importlib.util
import os
import pathlib
import selectors
import sys
import threading
import time
from typing import Callable, Iterable, Optional

#: recognised ``--watch-backend`` / ``REPRO_WATCH_BACKEND`` values
BACKENDS = ("auto", "watchdog", "inotify", "poll")

#: environment override consulted when the caller asks for ``auto``
BACKEND_ENV = "REPRO_WATCH_BACKEND"


class PollWatcher:
    """The portable baseline: every ``wait`` sleeps and answers "sweep now"."""

    name = "poll"

    def __init__(self, roots: Iterable[str]):
        self.roots = list(roots)

    def wait(self, timeout: float) -> bool:
        time.sleep(max(timeout, 0.0))
        return True

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# inotify (Linux, stdlib-only: ctypes + selectors)
# ---------------------------------------------------------------------------

_IN_EVENTS = (0x0002 | 0x0004 | 0x0008 | 0x0040 | 0x0080 | 0x0100 | 0x0200
              | 0x0400 | 0x0800)  # MODIFY|ATTRIB|CLOSE_WRITE|MOVED_*|CREATE|
#                                   DELETE|DELETE_SELF|MOVE_SELF


def _libc():
    import ctypes

    lib = ctypes.CDLL(None, use_errno=True)
    for symbol in ("inotify_init1", "inotify_add_watch"):
        if not hasattr(lib, symbol):
            raise OSError(f"libc lacks {symbol}")
    lib.inotify_add_watch.argtypes = [ctypes.c_int, ctypes.c_char_p,
                                      ctypes.c_uint32]
    return lib


class InotifyWatcher:
    """Linux inotify over every directory under the roots, multiplexed with
    ``selectors`` so ``wait`` blocks with a timeout.  New subdirectories are
    picked up by re-walking the roots after each burst of events (the sweep
    that follows classifies the changes anyway)."""

    name = "inotify"

    def __init__(self, roots: Iterable[str]):
        if not sys.platform.startswith("linux"):
            raise OSError("inotify is Linux-only")
        self.roots = list(roots)
        self._libc = _libc()
        self._fd = self._libc.inotify_init1(0)
        if self._fd < 0:
            raise OSError("inotify_init1 failed")
        self._watched: set[str] = set()
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._fd, selectors.EVENT_READ)
        self._rescan()

    def _dirs(self) -> set[str]:
        dirs: set[str] = set()
        for root in self.roots:
            path = pathlib.Path(root)
            if path.is_dir():
                dirs.add(str(path))
                for sub in path.rglob("*"):
                    if sub.is_dir():
                        dirs.add(str(sub))
            elif path.parent.is_dir():  # a file target: watch its directory
                dirs.add(str(path.parent))
        return dirs

    def _rescan(self) -> None:
        for directory in self._dirs() - self._watched:
            # per-dir failures (racing deletion, permissions, watch limit)
            # degrade to the sweep noticing the change later, never crash
            if self._libc.inotify_add_watch(self._fd, directory.encode(),
                                            _IN_EVENTS) >= 0:
                self._watched.add(directory)

    def wait(self, timeout: float) -> bool:
        if not self._selector.select(timeout):
            return False
        # drain the burst (edits arrive as several events) then pick up any
        # newly created subdirectories before the caller sweeps
        while self._selector.select(0):
            os.read(self._fd, 65536)
        self._rescan()
        return True

    def close(self) -> None:
        self._selector.close()
        os.close(self._fd)


# ---------------------------------------------------------------------------
# watchdog (optional third-party; feature-detected, never required)
# ---------------------------------------------------------------------------

class WatchdogWatcher:
    """The ``watchdog`` package's observer, when importable: any event sets
    a flag that the next ``wait`` reports."""

    name = "watchdog"

    def __init__(self, roots: Iterable[str]):
        if importlib.util.find_spec("watchdog") is None:
            raise OSError("watchdog is not importable")
        from watchdog.events import FileSystemEventHandler
        from watchdog.observers import Observer

        self.roots = list(roots)
        self._changed = threading.Event()
        changed = self._changed

        class _Handler(FileSystemEventHandler):
            def on_any_event(self, event):
                changed.set()

        self._observer = Observer(timeout=0.2)
        handler = _Handler()
        for root in self.roots:
            path = pathlib.Path(root)
            target = path if path.is_dir() else path.parent
            if target.is_dir():
                self._observer.schedule(handler, str(target), recursive=True)
        self._observer.daemon = True
        self._observer.start()

    def wait(self, timeout: float) -> bool:
        fired = self._changed.wait(timeout)
        if fired:
            # only consume the flag when reporting it: clearing after a
            # timed-out wait would race an event landing in between and
            # silently swallow the one notification a caller that skips
            # sweeps on False (the server refresh loop) would ever get
            self._changed.clear()
        return fired

    def close(self) -> None:
        self._observer.stop()
        self._observer.join(timeout=2.0)


_BACKEND_CLASSES = {"watchdog": WatchdogWatcher, "inotify": InotifyWatcher,
                    "poll": PollWatcher}


def create_watcher(roots: Iterable[str], backend: str = "auto",
                   log: Optional[Callable[[str], None]] = None):
    """The best available watcher over ``roots``.

    ``backend`` pins a choice (``auto`` consults ``REPRO_WATCH_BACKEND``
    first, then tries watchdog → inotify → poll); a pinned backend that
    cannot start falls back to polling rather than failing the watch loop.
    The decision — and any fallback — is reported through ``log``."""
    log = log or (lambda message: print(f"# {message}", file=sys.stderr))
    if backend not in BACKENDS:
        raise ValueError(f"unknown watch backend {backend!r}; "
                         f"expected one of {', '.join(BACKENDS)}")
    if backend == "auto":
        backend = os.environ.get(BACKEND_ENV, "auto")
        if backend not in BACKENDS:
            backend = "auto"
    candidates = ["watchdog", "inotify", "poll"] if backend == "auto" \
        else [backend, "poll"]
    roots = list(roots)
    last_error: Optional[BaseException] = None
    for name in candidates:
        try:
            watcher = _BACKEND_CLASSES[name](roots)
        except Exception as exc:
            last_error = exc
            continue
        if name != candidates[0] and last_error is not None:
            log(f"watch backend: {name} "
                f"(fell back: {candidates[0]}: {last_error})")
        else:
            log(f"watch backend: {name}")
        return watcher
    raise RuntimeError("no watch backend could start")  # pragma: no cover
