"""``RemoteClient``: the in-process mirror of the daemon's verbs.

The client speaks the newline-delimited JSON protocol over one socket
(unix-domain or TCP).  On connect it sends a ``hello`` negotiating
**protocol v2** — request-id pipelining plus the optional shared-secret
``token`` for TCP daemons — and transparently degrades to v1 (strictly
serial, id-less) when the server answers ``bad-verb`` (an old daemon) or
when constructed with ``protocol=1``.

Under v2, :meth:`submit` sends a request without waiting and returns a
:class:`Reply` handle; responses are read on demand and parked by id, so
any number of requests can be in flight and the daemon may answer them
out of order.  The blocking verb methods (``apply``, ``sync_files``, ...)
are ``submit().wait()`` — same surface, same semantics, now pipelinable.
A lock serializes callers sharing one client; open several clients for
multi-threaded concurrency.

Its surface mirrors :class:`~repro.api.PatchSet` where that makes sense —
``apply(workspace, patches)`` accepts parsed :class:`~repro.api.SemanticPatch`
objects (shipped as inline SMPL) as well as raw wire specs — which is what
lets ``repro-spatch --server ADDR`` reuse a warm daemon transparently:
sync the local tree by content-hash delta, apply, print the same diffs and
exit the same code a local run would.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional, Sequence

from ..api import CodeBase, SemanticPatch
from ..errors import ReproError
from ..obs import registry as _obs
from ..obs import trace as _trace
from ..options import SpatchOptions
from .protocol import (PROTOCOL_VERSION, ProtocolError, options_payload,
                       parse_address, patch_specs, read_message,
                       write_message)


class RemoteError(ReproError):
    """A server-reported failure (``ok: false``), carrying the server's
    stable error ``kind``."""

    def __init__(self, kind: str, message: str,
                 trace: Optional[str] = None):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        #: the server's bare message, without the kind prefix — what the
        #: CLI re-prints for byte-identical local/remote diagnostics
        self.message = message
        #: the request's trace id, echoed back in the error envelope
        #: (``None`` when telemetry was off or the server predates traces)
        self.trace = trace


class ConnectionLost(ReproError):
    """The transport died (daemon gone, socket reset, framing violated)."""


class Reply:
    """A pipelined request's pending response (v2 only)."""

    __slots__ = ("_client", "_id")

    def __init__(self, client: "RemoteClient", request_id: int):
        self._client = client
        self._id = request_id

    def wait(self) -> dict:
        """Block until this request's response arrives (reading and
        parking other responses on the way); returns the ``result`` or
        raises :class:`RemoteError` / :class:`ConnectionLost`."""
        return self._client._wait(self._id)


class RemoteClient:
    """One connection to a patch daemon."""

    def __init__(self, address: str, *, timeout: Optional[float] = 60.0,
                 token: Optional[str] = None,
                 protocol: int = PROTOCOL_VERSION):
        self.address = address
        family, target = parse_address(address)
        if family == "unix":
            self._sock = socket.socket(socket.AF_UNIX)
            self._sock.settimeout(timeout)
            self._sock.connect(target)
        else:
            self._sock = socket.create_connection(target, timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._next_id = 0
        self._parked: dict[int, dict] = {}
        self._inflight: set[int] = set()
        #: the negotiated protocol: 2 after a successful hello, else 1
        self.protocol = 1
        if protocol >= 2:
            self._negotiate(token)
        elif token is not None:
            # auth rides the hello even when pipelining is not wanted
            self._hello(protocol=1, token=token)

    # -- negotiation ---------------------------------------------------------

    def _negotiate(self, token: Optional[str]) -> None:
        try:
            result = self._hello(protocol=PROTOCOL_VERSION, token=token)
        except RemoteError as exc:
            if exc.kind == "bad-verb" and token is None:
                return  # pre-v2 daemon: stay on the v1 contract
            raise  # auth failures (or a tokened old daemon) surface loudly
        if result.get("pipelined"):
            self.protocol = 2

    def _hello(self, *, protocol: int, token: Optional[str]) -> dict:
        message: dict = {"verb": "hello", "protocol": protocol}
        if token is not None:
            message["token"] = token
        return self._round_trip(message)

    # -- plumbing ------------------------------------------------------------

    def _round_trip(self, message: dict) -> dict:
        """One strictly serial request/response exchange (v1, hello)."""
        with self._lock:
            try:
                write_message(self._file, message)
                response = read_message(self._file)
            except ProtocolError as exc:
                raise ConnectionLost(f"bad response from server: {exc}") \
                    from None
            except OSError as exc:
                raise ConnectionLost(f"server connection failed: {exc}") \
                    from None
        return self._unwrap(response)

    @staticmethod
    def _unwrap(response: Optional[dict]) -> dict:
        if response is None:
            raise ConnectionLost("server closed the connection")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(error.get("type", "unknown"),
                              error.get("message", "unspecified error"),
                              trace=response.get("trace"))
        return response.get("result", {})

    @staticmethod
    def _stamp_trace(message: dict) -> None:
        """Attach the request's trace id: the active trace's (one CLI
        invocation = one trace spanning all its requests) or a fresh one.
        Skipped entirely when telemetry is off, so the wire bytes with
        ``REPRO_OBS=0`` are exactly the pre-trace protocol's."""
        if _obs.enabled():
            message["trace"] = (_trace.current_trace_id()
                                or _trace.new_trace_id())

    def request(self, verb: str, **params) -> dict:
        """One request/response; under v2 this is ``submit().wait()``, so
        interleaved submitters on other call sites keep their pipelining."""
        if self.protocol >= 2:
            return self.submit(verb, **params).wait()
        message = {"verb": verb}
        message.update({key: value for key, value in params.items()
                        if value is not None})
        self._stamp_trace(message)
        return self._round_trip(message)

    def submit(self, verb: str, **params) -> Reply:
        """Send one id-tagged request without waiting (v2 only) and return
        its :class:`Reply`.  Any number may be outstanding; the daemon may
        answer them out of order."""
        if self.protocol < 2:
            raise ConnectionLost("pipelining requires a v2 server "
                                 "(hello was not negotiated)")
        message: dict = {"verb": verb}
        message.update({key: value for key, value in params.items()
                        if value is not None})
        self._stamp_trace(message)
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            message["id"] = request_id
            try:
                write_message(self._file, message)
            except OSError as exc:
                raise ConnectionLost(f"server connection failed: {exc}") \
                    from None
            self._inflight.add(request_id)
        return Reply(self, request_id)

    def _wait(self, request_id: int) -> dict:
        with self._lock:
            while request_id not in self._parked:
                try:
                    response = read_message(self._file)
                except ProtocolError as exc:
                    raise ConnectionLost(
                        f"bad response from server: {exc}") from None
                except OSError as exc:
                    raise ConnectionLost(
                        f"server connection failed: {exc}") from None
                if response is None:
                    raise ConnectionLost("server closed the connection")
                answered = response.get("id")
                if answered not in self._inflight:
                    raise ConnectionLost(
                        f"response for unknown request id {answered!r}")
                self._inflight.discard(answered)
                self._parked[answered] = response
            return self._unwrap(self._parked.pop(request_id))

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        self._sock.close()

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- verbs ---------------------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def open_workspace(self, workspace: str, *, root: Optional[str] = None,
                       watch: bool = False,
                       watch_backend: Optional[str] = None) -> dict:
        return self.request("open_workspace", workspace=workspace, root=root,
                            watch=watch or None,
                            watch_backend=watch_backend)

    def sync_files(self, workspace: str, *, files: Optional[dict] = None,
                   remove: Optional[Sequence[str]] = None,
                   hashes: Optional[dict] = None) -> dict:
        return self.request("sync_files", workspace=workspace, files=files,
                            remove=list(remove) if remove else None,
                            hashes=hashes)

    def sync_codebase(self, workspace: str, codebase: CodeBase) -> dict:
        """Two-phase content-hash delta: ship the manifest, then only the
        contents the server says it lacks.  An unchanged tree costs one
        hash round; the steady-state edit costs its changed files only —
        and files the server can *recall* from the fleet-wide blob memo
        (any client uploaded them before, to any workspace) cost nothing
        at all (the ``recalled`` count in the return value).

        The manifest travels *again* with every upload round: the server
        applies upserts before evaluating a manifest, so a round that
        covers everything the server reported missing re-establishes this
        client's whole tree in one atomic request.  Another client racing
        its own sync can invalidate a round (its writes show up as fresh
        ``need`` entries), so rounds repeat until the server reports
        nothing missing — the workspace then holds one client's whole
        tree, never a torn mixture of two."""
        manifest = codebase.content_hashes()
        delta = self.sync_files(workspace, hashes=manifest)
        uploaded = 0
        recalled = len(delta.get("recalled") or ())
        removed = set(delta["removed"])
        need = delta.get("need") or []
        for _ in range(8):  # bounded: pathological contention must not hang
            if not need:
                break
            uploads = {name: codebase[name] for name in need
                       if name in codebase}
            response = self.sync_files(workspace, files=uploads,
                                       hashes=manifest)
            uploaded += len(uploads)
            recalled += len(response.get("recalled") or ())
            removed |= set(response["removed"])
            delta = response
            need = response.get("need") or []
        return {**delta, "removed": sorted(removed), "need": need,
                "uploaded": uploaded, "recalled": recalled}

    @staticmethod
    def _specs(patches) -> list[dict]:
        """Wire specs from SemanticPatch objects, raw spec dicts, or a mix."""
        specs: list[dict] = []
        for patch in patches:
            if isinstance(patch, SemanticPatch):
                specs.extend(patch_specs([patch]))
            elif isinstance(patch, dict):
                specs.append(patch)
            else:
                raise TypeError(f"cannot send {type(patch).__name__} as a "
                                f"patch; expected SemanticPatch or spec dict")
        return specs

    def apply(self, workspace: str, patches, *,
              options: Optional[SpatchOptions] = None,
              jobs: "int | str | None" = None, prefilter: bool = True,
              diff: bool = True, texts: bool = False,
              profile: bool = False) -> dict:
        """Mirror of ``PatchSet.apply`` against the server's warm workspace;
        returns the shared result payload (see
        :func:`~repro.server.protocol.result_payload`)."""
        return self.request(
            "apply", workspace=workspace, patches=self._specs(patches),
            options=options_payload(options) if options else None,
            jobs=jobs, prefilter=prefilter, diff=diff,
            texts=texts or None, profile=profile or None)

    def submit_apply(self, workspace: str, patches, *,
                     options: Optional[SpatchOptions] = None,
                     jobs: "int | str | None" = None, prefilter: bool = True,
                     diff: bool = True, texts: bool = False,
                     profile: bool = False) -> Reply:
        """Pipelined :meth:`apply`: returns immediately with the
        :class:`Reply` (v2 connections only)."""
        return self.submit(
            "apply", workspace=workspace, patches=self._specs(patches),
            options=options_payload(options) if options else None,
            jobs=jobs, prefilter=prefilter, diff=diff,
            texts=texts or None, profile=profile or None)

    def query(self, workspace: str, patches, *,
              options: Optional[SpatchOptions] = None,
              jobs: "int | str | None" = None, prefilter: bool = True,
              profile: bool = False) -> dict:
        return self.request(
            "query", workspace=workspace, patches=self._specs(patches),
            options=options_payload(options) if options else None,
            jobs=jobs, prefilter=prefilter, profile=profile or None)

    def stats(self, workspace: Optional[str] = None) -> dict:
        return self.request("stats", workspace=workspace)

    def shutdown(self) -> dict:
        return self.request("shutdown")
