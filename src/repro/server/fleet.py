"""The apply fleet: persistent forked worker processes behind the daemon.

One CPython process can hold many warm workspaces but only one GIL: with
the v1 daemon, two clients applying to two *different* workspaces still
match one-at-a-time.  :class:`ApplyFleet` moves apply execution into a
pool of long-lived **worker processes** (the persistent-sibling of
:func:`~repro.engine.driver.run_fork_pool`'s per-call forks): each
workspace is pinned to one worker by a stable shard of its name, so
per-workspace operations stay serial — the same consistency clients
already rely on — while N workers serve N concurrent applies across
workspaces on N CPUs.

Mirror protocol
---------------
The parent keeps the authoritative file tree (it answers ``sync_files``
manifests); each worker keeps a warm *mirror* per pinned workspace — a
:class:`~repro.api.CodeBase`, a :class:`~repro.engine.cache.TreeCache`
backed by a per-worker :class:`~repro.engine.cache.SharedTreeStore`, the
last :class:`~repro.engine.pipeline.PipelineResult` seeding incremental
splicing, and a bounded built-patch cache.  Every apply job carries the
delta since the parent last spoke to that worker *plus* the full
``{name: sha1}`` manifest the tree must hash to afterwards; the worker
applies the delta, verifies the manifest, and answers ``{"resync": true}``
on any mismatch — the parent then resends the job with the full tree.
That one self-healing rule covers every divergence at once: a respawned
worker, a corrupt restored snapshot, a parent restart with stale
``fleet_seen`` bookkeeping.

Restart survival: with a ``state_root``, a worker restores a workspace
mirror from its :class:`~repro.engine.incremental.PipelineState` snapshot
on first touch and re-saves it after every stored apply, so a daemon
killed ``-9`` comes back warm (files, last result *and* parse-cache
entries) instead of cold.

Workers are forked at service construction time — before the daemon's
accept threads exist — so no lock can be mid-acquire in the child, and
each parent-side pipe is guarded by a lock so dispatcher threads
serialize per worker.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import traceback
from collections import OrderedDict
from typing import Optional

#: bound on each worker's per-workspace built-patch cache (mirrors the
#: parent's ``MAX_CACHED_PATCH_SPECS`` discipline)
_WORKER_PATCH_SPECS = 64


def shard_of(name: str, workers: int) -> int:
    """The worker index workspace ``name`` is pinned to.  ``hash()`` is
    salted per process, so shard on a stable digest — the pin must hold
    across daemon restarts (a restarted parent's delta bookkeeping and the
    worker's restored mirror meet at the same worker)."""
    digest = hashlib.sha1(name.encode("utf-8", "surrogatepass")).hexdigest()
    return int(digest[:8], 16) % workers


def state_path(state_root: str, name: str) -> str:
    """The snapshot file for workspace ``name``: a sanitized prefix for
    humans plus a name digest for uniqueness (two names may sanitize
    alike, and names are not valid filenames in general)."""
    safe = "".join(ch if ch.isalnum() or ch in "-_" else "_"
                   for ch in name)[:48]
    digest = hashlib.sha1(name.encode("utf-8", "surrogatepass")).hexdigest()
    return os.path.join(state_root, f"{safe}-{digest[:12]}.state")


# ---------------------------------------------------------------------------
# worker side (runs in the forked child)
# ---------------------------------------------------------------------------

class _Mirror:
    """One workspace's warm state inside a worker process."""

    def __init__(self, cache_entries: int, shared):
        from ..api import CodeBase
        from ..engine.cache import TreeCache

        self.codebase = CodeBase()
        self.cache = TreeCache(max_entries=cache_entries, shared=shared)
        self.last = None
        self.patches: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.restored = False


class _FleetWorker:
    """The worker loop: receive a job, answer it, forever."""

    def __init__(self, conn, config: dict):
        from ..engine.cache import SharedTreeStore
        from ..engine.memo import TransformMemo

        self.conn = conn
        self.config = config
        self.state_root = config.get("state_root")
        self.cache_entries = config.get("cache_entries", 512)
        self.mirrors: dict[str, _Mirror] = {}
        #: per-worker shared parse-tree layer: vendored-identical files
        #: across this worker's workspaces parse once
        self.tree_store = SharedTreeStore()
        #: per-worker memo sharing the fleet's disk directory, so entries
        #: cross worker processes through the content-addressed disk tier
        self.memo = TransformMemo(
            max_entries=config.get("memo_entries", 4096),
            path=config.get("memo_dir"))

    def run(self) -> None:
        while True:
            try:
                job = self.conn.recv()
            except (EOFError, OSError):
                return  # parent is gone; nothing left to serve
            op = job.get("op")
            try:
                if op == "exit":
                    self.conn.send({"ok": True})
                    return
                if op == "apply":
                    self.conn.send(self._apply(job))
                elif op == "drop":
                    self.mirrors.pop(job.get("workspace"), None)
                    self.conn.send({"ok": True})
                elif op == "stats":
                    self.conn.send({"ok": True, "stats": self._stats()})
                else:
                    self.conn.send({"ok": False, "error": {
                        "kind": "internal",
                        "message": f"unknown fleet op {op!r}"}})
            except Exception as exc:  # the loop must outlive any one job
                try:
                    self.conn.send({"ok": False, "error": {
                        "kind": "internal",
                        "message": f"{type(exc).__name__}: {exc}\n"
                                   f"{traceback.format_exc()}"}})
                except (OSError, ValueError):
                    return

    # -- mirror maintenance --------------------------------------------------

    def _mirror(self, name: str) -> _Mirror:
        mirror = self.mirrors.get(name)
        if mirror is None:
            mirror = self.mirrors[name] = _Mirror(self.cache_entries,
                                                  self.tree_store)
            self._restore(name, mirror)
        return mirror

    def _restore(self, name: str, mirror: _Mirror) -> None:
        """Warm-start a first-touched mirror from its snapshot (corrupt or
        missing snapshots load nothing; the manifest check heals the rest)."""
        if self.state_root is None:
            return
        from ..engine.incremental import PipelineState

        state = PipelineState.load(state_path(self.state_root, name))
        if state is None or state.files is None:
            return
        for filename, text in state.files.items():
            mirror.codebase[filename] = text
        mirror.last = state.result
        mirror.cache.restore(state.cache_entries)
        mirror.restored = True

    def _save(self, name: str, mirror: _Mirror) -> None:
        if self.state_root is None:
            return
        from ..engine.incremental import PipelineState

        try:
            os.makedirs(self.state_root, exist_ok=True)
            PipelineState(result=mirror.last,
                          cache_entries=mirror.cache.snapshot(),
                          files=dict(mirror.codebase.files),
                          ).save(state_path(self.state_root, name))
        except Exception:
            pass  # an unwritable state dir must never fail the apply

    # -- jobs ----------------------------------------------------------------

    def _apply(self, job: dict) -> dict:
        from ..engine.incremental import IncrementalPipeline
        from ..obs import registry as _obs
        from ..server.service import ServiceError
        from .protocol import (options_from_payload, profile_payload,
                               result_payload)

        # per-job before/after capture of this worker's registry: the delta
        # rides the reply so the parent daemon's /metrics stays exact even
        # though all the matching happened in this process
        capture = _obs.telemetry_capture() if _obs.enabled() else None
        name = job["workspace"]
        mirror = self._mirror(name)
        codebase = mirror.codebase
        if job.get("full"):
            for filename in codebase.names():
                del codebase[filename]
        for filename in job.get("removals") or ():
            if filename in codebase:
                del codebase[filename]
        for filename, text in (job.get("upserts") or {}).items():
            if filename not in codebase or codebase[filename] != text:
                codebase[filename] = text
        manifest = job.get("manifest")
        if manifest is not None and not job.get("full"):
            if codebase.content_hashes() != manifest:
                # divergence (respawned worker, stale snapshot, lost delta):
                # ask the parent for the full tree instead of guessing
                self.mirrors.pop(name, None)
                return {"ok": False, "resync": True}
        try:
            built = self._patches(mirror, job["patches"],
                                  options_from_payload(job.get("options")))
            pipeline = IncrementalPipeline(
                [patch.ast for patch in built],
                options=[patch.options for patch in built],
                names=[patch.name for patch in built],
                jobs=job.get("jobs", 1),
                prefilter=job.get("prefilter", True),
                tree_cache=mirror.cache, memo=self.memo)
            token_index = codebase.token_index() \
                if job.get("prefilter", True) else None
            result = pipeline.run(codebase.files, since=mirror.last,
                                  token_index=token_index)
        except ServiceError as exc:
            return {"ok": False,
                    "error": {"kind": exc.kind, "message": str(exc)}}
        if job.get("store", True):
            mirror.last = result
            self._save(name, mirror)
        payload = result_payload(result, built,
                                 include_diff=job.get("diff", True),
                                 include_texts=job.get("texts", False))
        if job.get("profile"):
            payload["profile"] = profile_payload(
                result, cache=mirror.cache,
                token_index=codebase._token_index, memo=self.memo)
            payload["profile"]["tree_store"] = self.tree_store.counters()
            payload["profile"]["restored"] = mirror.restored
        reply = {"ok": True, "payload": payload, "pid": os.getpid()}
        if capture is not None:
            reply["telemetry"] = capture.delta()
        return reply

    def _patches(self, mirror: _Mirror, specs, options):
        from ..server.service import build_patch_list, spec_key

        key = tuple(spec_key(spec, repr(options)) for spec in specs)
        cached = mirror.patches.get(key)
        if cached is None:
            cached = tuple(build_patch_list(specs, options))
            mirror.patches[key] = cached
            while len(mirror.patches) > _WORKER_PATCH_SPECS:
                mirror.patches.popitem(last=False)
        else:
            mirror.patches.move_to_end(key)
        return list(cached)

    def _stats(self) -> dict:
        return {
            "pid": os.getpid(),
            "workspaces": sorted(self.mirrors),
            "restored": sorted(n for n, m in self.mirrors.items()
                               if m.restored),
            "memo": self.memo.counters(),
            "tree_store": self.tree_store.counters(),
            "parse_caches": {name: mirror.cache.counters()
                             for name, mirror in self.mirrors.items()},
        }


def _fleet_worker_main(conn, config: dict) -> None:
    _FleetWorker(conn, config).run()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------

class _WorkerHandle:
    __slots__ = ("process", "conn", "lock", "index")

    def __init__(self, process, conn, index: int):
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.index = index


class ApplyFleet:
    """The parent-side pool: spawn, route, heal, stop."""

    def __init__(self, workers: int, *, cache_entries: int = 512,
                 memo_entries: int = 4096, memo_dir=None,
                 state_root: Optional[str] = None):
        if workers < 2:
            raise ValueError("ApplyFleet needs at least 2 workers; "
                             "run in-process below that")
        self.workers = workers
        self._config = {"cache_entries": cache_entries,
                        "memo_entries": memo_entries,
                        "memo_dir": os.fspath(memo_dir)
                        if memo_dir is not None else None,
                        "state_root": os.fspath(state_root)
                        if state_root is not None else None}
        self._ctx = multiprocessing.get_context("fork")
        self._handles: list[_WorkerHandle] = [
            self._spawn(index) for index in range(workers)]
        self.respawns = 0
        self._closed = False

    def _spawn(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_fleet_worker_main, args=(child_conn, self._config),
            name=f"spatchd-fleet-{index}", daemon=True)
        process.start()
        child_conn.close()
        return _WorkerHandle(process, parent_conn, index)

    def shard(self, name: str) -> int:
        return shard_of(name, self.workers)

    def call(self, name: str, job: dict) -> dict:
        """One job round trip to the pinned worker.  A dead worker is
        respawned and reported as ``{"resync": true}`` — the caller's
        full-tree retry then rebuilds the fresh worker's mirror."""
        handle = self._handles[self.shard(name)]
        with handle.lock:
            try:
                handle.conn.send(job)
                reply = handle.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                if self._closed:
                    raise
                try:
                    handle.conn.close()
                except OSError:
                    pass
                self._handles[handle.index] = self._spawn(handle.index)
                self.respawns += 1
                return {"ok": False, "resync": True}
        if not isinstance(reply, dict):
            return {"ok": False, "error": {
                "kind": "internal", "message": "malformed fleet reply"}}
        return reply

    def drop(self, name: str) -> None:
        """Forget a workspace's mirror (parent-side eviction); best-effort."""
        try:
            self.call(name, {"op": "drop", "workspace": name})
        except (EOFError, OSError):
            pass

    def stats(self) -> list[dict]:
        rows = []
        for handle in list(self._handles):
            reply = self.call_handle(handle, {"op": "stats"})
            rows.append(reply.get("stats", {"error": reply.get("error")}))
        return rows

    def call_handle(self, handle: _WorkerHandle, job: dict) -> dict:
        with handle.lock:
            try:
                handle.conn.send(job)
                return handle.conn.recv()
            except (EOFError, OSError):
                return {"ok": False, "error": {
                    "kind": "internal", "message": "fleet worker died"}}

    def close(self) -> None:
        self._closed = True
        for handle in self._handles:
            with handle.lock:
                try:
                    handle.conn.send({"op": "exit"})
                    handle.conn.recv()
                except (EOFError, OSError):
                    pass
                try:
                    handle.conn.close()
                except OSError:
                    pass
        for handle in self._handles:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
