"""Wire protocol and result serialization for the patch service.

The daemon speaks **newline-delimited JSON**: every request and every
response is one JSON object on one ``\\n``-terminated line (JSON string
escaping guarantees no literal newline can appear inside a message, and
``ensure_ascii`` keeps lone surrogates from ``surrogateescape`` file
loading transportable as ``\\udXXX`` escapes, so non-UTF-8 sources
round-trip byte-identically).

Requests are ``{"verb": ..., ...params}`` with an optional ``"id"`` echoed
back; responses are ``{"ok": true, "result": {...}}`` or
``{"ok": false, "error": {"type": ..., "message": ...}}``.  The verbs —
``open_workspace``, ``sync_files``, ``apply``, ``query``, ``stats``,
``ping``, ``shutdown`` — are documented on
:class:`~repro.server.service.PatchService`, which implements them.

Protocol versions
-----------------
**v1** (the default a bare connection starts in) is strictly serial per
connection: one request, one response, in order — ``id`` is optional and
merely echoed.  **v2** is negotiated by a ``hello`` verb
(``{"verb": "hello", "protocol": 2, "token": ...}``) and unlocks
*pipelining*: the client may send any number of id-tagged requests without
waiting, and responses come back **out of order**, correlated by ``id``.
Ordering guarantee under v2: requests that *mutate* a workspace
(``open_workspace``/``sync_files``/``apply``) execute FIFO per
``(connection, workspace)`` — a pipelined sync-then-apply is always seen
in that order — while read-only verbs (``query``/``stats``/``ping``)
dispatch immediately and never queue behind a slow apply.  A v1 client
(no ``hello``) gets the exact v1 contract from a v2 daemon; a v2 client
probing an old daemon gets a ``bad-verb`` error for the ``hello`` and
falls back to v1.

``hello`` also carries auth: daemons started with a shared-secret token
require it from **TCP** clients before any other verb (unix-domain
sockets stay auth-free — filesystem permissions already gate them).
Failures use the stable error types ``auth-required`` (verb before a
successful hello) and ``auth-failed`` (wrong/missing token in a hello).

Result payloads
---------------
:func:`result_payload` renders an application result (a
:class:`~repro.engine.report.PatchResult` or
:class:`~repro.engine.pipeline.PipelineResult`) into the one JSON schema
shared by ``repro-spatch --json`` and the server's ``apply``/``query``
responses, so local and remote runs are comparable byte-for-byte.  The
payload is split into a **deterministic core** — texts, diffs, per-rule
reports, summaries, exit status, everything two byte-identical runs agree
on — and a volatile ``"profile"`` section (timings, cache counters,
reuse breakdowns) that is only attached on request and never part of
parity comparisons.
"""

from __future__ import annotations

import json
from typing import BinaryIO, Iterable, Optional, Sequence

from ..api import SemanticPatch
from ..options import SpatchOptions

#: bump on incompatible wire changes; ``open_workspace`` echoes it so a
#: version-skewed client fails loudly instead of misparsing.  v2 adds the
#: negotiated ``hello`` verb, request-id pipelining and TCP token auth;
#: every v1 message remains valid v2, so un-negotiated connections are
#: served exactly as before
PROTOCOL_VERSION = 2

#: schema tag of the result payload (shared by ``--json`` and the server)
RESULT_SCHEMA = "repro-spatch-result/1"

#: hard cap on one message line (64 MiB): a runaway or malicious client
#: must not balloon the daemon's memory with an unbounded line
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed message, address or patch spec."""


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def dumps(payload: dict) -> str:
    """One canonical JSON line (sorted keys, compact separators, ASCII-only
    so surrogates survive the socket): byte-for-byte comparable output."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def write_message(stream: BinaryIO, payload: dict) -> None:
    stream.write(dumps(payload).encode("ascii") + b"\n")
    stream.flush()


def read_message(stream: BinaryIO) -> Optional[dict]:
    """The next message on ``stream``, or ``None`` on a clean EOF.  Raises
    :class:`ProtocolError` on oversized, truncated or non-JSON lines."""
    line = stream.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_MESSAGE_BYTES} bytes")
    if not line.endswith(b"\n"):
        raise ProtocolError("truncated message (connection died mid-line?)")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("message is not a JSON object")
    return payload


def parse_address(spec: str) -> tuple[str, object]:
    """``("unix", path)`` or ``("tcp", (host, port))`` from an address
    string: ``unix:/run/spatchd.sock`` (or any spec containing a ``/``) is
    a unix-domain socket, ``host:port`` / ``:port`` is TCP."""
    if spec.startswith("unix:"):
        return "unix", spec[len("unix:"):]
    if spec.startswith("tcp:"):
        spec = spec[len("tcp:"):]
    elif "/" in spec:
        return "unix", spec
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ProtocolError(
            f"bad address {spec!r}; expected unix:PATH or HOST:PORT")
    return "tcp", (host or "127.0.0.1", int(port))


# ---------------------------------------------------------------------------
# patch specs and options on the wire
# ---------------------------------------------------------------------------

def patch_specs(patches: Iterable[SemanticPatch]) -> list[dict]:
    """Wire specs for already-parsed patches: each ships as inline source
    text — SMPL, or the patch's frontend format (JSON ops / 'ap' / blocks)
    when it was parsed by one — and the server re-parses, so client and
    server never need a shared filesystem.  Programmatically built patches
    without source text cannot cross the wire."""
    specs = []
    for patch in patches:
        if not patch.ast.source_text:
            raise ProtocolError(
                f"patch {patch.name!r} has no source text; "
                f"programmatic patches cannot be sent to a server")
        kind = getattr(patch.ast, "format", None) or "smpl"
        specs.append({"kind": kind, "name": patch.name,
                      "text": patch.ast.source_text})
    return specs


def options_payload(options: SpatchOptions) -> dict:
    """The wire form of :class:`~repro.options.SpatchOptions` (only fields
    the CLI can set travel; patch-embedded option lines are re-derived
    server-side from the SMPL text)."""
    return {"cxx": options.cxx,
            "apply_isomorphisms": options.apply_isomorphisms,
            "verbose": options.verbose}


def options_from_payload(payload: Optional[dict]) -> Optional[SpatchOptions]:
    if not payload:
        return None
    known = {"cxx", "extra_types", "attribute_names", "apply_isomorphisms",
             "max_dots_statements", "python_scripting",
             "diff_context_lines", "verbose"}
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(f"unknown option field(s): {sorted(unknown)}")
    kwargs = dict(payload)
    for key in ("extra_types", "attribute_names"):
        if key in kwargs:
            kwargs[key] = tuple(kwargs[key])
    try:
        return SpatchOptions(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad options: {exc}") from None


# ---------------------------------------------------------------------------
# result payloads
# ---------------------------------------------------------------------------

def nonguard_matches(patch: SemanticPatch, patch_result) -> int:
    """Match count excluding the patch's idempotence-guard rules (guard
    matches mean "already modernized, stood down", not "applied")."""
    guards = patch.ast.guard_rule_names()
    return sum(report.matches
               for file_result in patch_result
               for report in file_result.rule_reports
               if report.rule not in guards)


def per_patch_pairs(result, patches: Sequence[SemanticPatch]):
    """``(patch, its PatchResult)`` pairs for any result shape: a pipeline
    result carries per-patch views, a plain single-patch result is its own."""
    per_patch = getattr(result, "per_patch", None)
    if per_patch and len(per_patch) == len(patches):
        return list(zip(patches, per_patch))
    return [(patch, result) for patch in patches]


def exit_status(result, patches: Sequence[SemanticPatch]) -> int:
    """The spatch-convention exit code for an application result: 0 when any
    patch matched at a non-guard rule, 1 otherwise (usage errors never get
    this far).  Identical to the local CLI's computation by construction."""
    matched = any(nonguard_matches(patch, patch_result) > 0
                  for patch, patch_result in per_patch_pairs(result, patches))
    return 0 if matched else 1


def _file_payload(file_result, include_diff: bool,
                  include_texts: bool) -> dict:
    payload: dict = {
        "changed": file_result.changed,
        "matches": file_result.total_matches,
        "rules": [{"rule": r.rule, "matches": r.matches,
                   "deletions": r.deletions, "insertions": r.insertions}
                  for r in file_result.rule_reports],
    }
    if include_diff and file_result.changed:
        payload["diff"] = file_result.diff()
    if include_texts and file_result.changed:
        payload["text"] = file_result.text
    return payload


def result_payload(result, patches: Sequence[SemanticPatch], *,
                   include_diff: bool = True,
                   include_texts: bool = False) -> dict:
    """The shared ``--json``/server serialization of one application result.

    Deterministic by construction: no timings, no cache traffic, no reuse
    breakdown — a warm incremental server run and a cold local run over the
    same inputs produce byte-identical payloads (attach the volatile bits
    via :func:`profile_payload` under the separate ``"profile"`` key)."""
    code = exit_status(result, patches)
    payload = {
        "schema": RESULT_SCHEMA,
        "exit_status": code,
        "matched": code == 0,
        "patches": [patch.name for patch in patches],
        "summary": result.summary(),
        "files": {name: _file_payload(file_result, include_diff,
                                      include_texts)
                  for name, file_result in result.files.items()},
        "per_patch": [dict(patch=patch.name, **patch_result.summary())
                      for patch, patch_result
                      in per_patch_pairs(result, patches)],
    }
    return payload


def profile_payload(result, *, cache=None, token_index=None,
                    memo=None) -> dict:
    """The volatile companion of :func:`result_payload`: timings and
    coverage from the run's stats, the incremental reuse breakdown, and the
    cache/prefilter/memo counters the satellite surfaces (pass the
    :class:`~repro.engine.cache.TreeCache` / token index /
    :class:`~repro.engine.memo.TransformMemo` actually used)."""
    payload: dict = {}
    stats = getattr(result, "stats", None)
    if stats is not None:
        payload["stats"] = stats.as_dict()
    incremental = getattr(result, "incremental", None)
    if incremental is not None:
        payload["incremental"] = incremental.as_dict()
    if cache is not None:
        payload["parse_cache"] = cache.counters()
    if token_index is not None:
        payload["token_index"] = token_index.counters()
    if memo is not None:
        payload["memo"] = memo.counters()
    from ..engine.compile import matcher_counters
    from ..obs import registry as _obs

    payload["matcher"] = matcher_counters()
    if _obs.enabled():
        # per-phase wall-time histograms from the metrics registry (parse,
        # prefilter, match, transform, memo, splice, sync) — only phases
        # that actually observed something appear
        phases = _obs.phase_summaries()
        if phases:
            payload["phases"] = phases
    return payload
