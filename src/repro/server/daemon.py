"""``spatchd``: the socket layer over :class:`~repro.server.service.PatchService`.

One daemon process serves any number of clients over a unix-domain or TCP
socket (``socketserver.ThreadingMixIn``: one thread per connection —
per-workspace consistency is the service's job, not the socket layer's).
Framing is newline-delimited JSON (see :mod:`repro.server.protocol`).

A bare connection speaks **protocol v1**: requests handled strictly in
order, one response each.  A ``hello`` negotiates **v2** per connection,
switching it to *pipelined* dispatch: requests are read continuously and
executed on a shared thread pool, responses (correlated by request ``id``)
are written as they finish — out of order.  Two ordering rules make that
safe: mutating verbs (``open_workspace``/``sync_files``/``apply``) are
chained FIFO per ``(connection, workspace)`` — a pipelined sync-then-apply
always executes in that order — and read-only verbs dispatch immediately,
so a stats poll or query never queues behind a slow apply.

``hello`` also carries the shared-secret **auth** handshake: a daemon
started with a token refuses every other verb on TCP connections until a
hello presents the right token (``auth-required``/``auth-failed`` error
types).  Unix-domain sockets stay auth-free — filesystem permissions
already gate them — so local v1 clients interoperate unmodified.

Failure isolation: a request that cannot be parsed, names an unknown verb,
or raises inside the service is answered with an ``ok: false`` envelope
(or, for undecodable framing, dropped with the connection) — the daemon
itself and every other client's workspace state stay up.  A client that
dies mid-line just ends its own connection; nothing it half-sent is ever
executed, because execution starts only after a full line parses.
"""

from __future__ import annotations

import hmac
import os
import socket
import socketserver
import sys
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..obs.journal import Journal, open_journal
from .protocol import (PROTOCOL_VERSION, ProtocolError, read_message,
                       write_message, parse_address)
from .service import PatchService, ServiceError

#: request fields every verb accepts besides its own parameters; ``trace``
#: is the client-generated request trace id, echoed verbatim in the
#: response (success *and* error envelopes) and stamped on journal events
_ENVELOPE_FIELDS = {"verb", "id", "trace"}

#: verb -> (service method, parameter names allowed on the wire)
_VERBS = {
    "open_workspace": ("open_workspace",
                       {"workspace", "root", "watch", "watch_backend",
                        "watch_interval"}),
    "sync_files": ("sync_files", {"workspace", "files", "remove", "hashes"}),
    "apply": ("apply", {"workspace", "patches", "options", "jobs",
                        "prefilter", "diff", "texts", "profile"}),
    "query": ("query", {"workspace", "patches", "options", "jobs",
                        "prefilter", "profile"}),
    "stats": ("stats", {"workspace"}),
    "metrics": ("metrics", set()),
    "ping": ("ping", set()),
    "shutdown": (None, set()),
}

#: verbs whose pipelined execution must stay FIFO per (connection,
#: workspace): each mutates workspace state a later request may depend on.
#: Everything else dispatches immediately (reads never queue behind applies)
_ORDERED_VERBS = {"open_workspace", "sync_files", "apply"}

#: pipelined requests executing concurrently across all v2 connections
_EXECUTOR_THREADS = 32


def _envelope(request: dict) -> dict:
    """The ``id``/``trace`` fields a response echoes back verbatim —
    including error envelopes, so a client can always correlate a failure
    with the request (and trace) that caused it."""
    return {key: request[key] for key in ("id", "trace") if key in request}


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: v1 serial until a hello upgrades it."""

    def setup(self) -> None:
        super().setup()
        #: negotiated protocol level (1 until a successful hello)
        self.protocol = 1
        #: whether this connection may use non-hello verbs (TCP + token
        #: daemons start locked; unix and token-less daemons start open)
        self.authed = not self.server.requires_auth
        #: serializes response writes once dispatch goes out-of-order
        self.write_lock = threading.Lock()
        #: tail of the FIFO chain per workspace name (pipelined mode)
        self.chains: dict = {}

    def handle(self) -> None:
        while True:
            try:
                request = read_message(self.rfile)
            except ProtocolError as exc:
                # framing is unrecoverable mid-stream: answer once and hang up
                self._respond({"ok": False, "error": {
                    "type": "protocol", "message": str(exc)}})
                return
            if request is None:
                return  # clean EOF
            verb = request.get("verb")
            if verb == "hello":
                # the write lock matters on a re-negotiation: pipelined
                # responses may be in flight on this connection already
                with self.write_lock:
                    answered = self._respond(self._hello(request))
                if not answered:
                    return
                continue
            if not self.authed:
                envelope = _envelope(request)
                with self.write_lock:
                    answered = self._respond(
                        {**envelope, "ok": False, "error": {
                            "type": "auth-required",
                            "message": "this daemon requires a hello with "
                                       "the shared-secret token first"}})
                if not answered:
                    return
                continue
            if verb == "shutdown":
                # always inline: pipelining a shutdown behind queued work
                # would just race the executor; respond, stop, hang up
                response, _shutdown = self.server.dispatch(request)
                with self.write_lock:
                    self._respond(response)
                return
            if self.protocol >= 2:
                self._dispatch_pipelined(request)
                continue
            response, shutdown = self.server.dispatch(request)
            if not self._respond(response):
                return
            if shutdown:
                return

    # -- v2: hello and pipelined dispatch ------------------------------------

    def _hello(self, request: dict) -> dict:
        envelope = _envelope(request)
        token = request.get("token")
        if self.server.requires_auth:
            expected = self.server.auth_token
            if not (isinstance(token, str)
                    and hmac.compare_digest(token, expected)):
                return {**envelope, "ok": False, "error": {
                    "type": "auth-failed",
                    "message": "bad or missing auth token"}}
            self.authed = True
        requested = request.get("protocol", 1)
        negotiated = min(PROTOCOL_VERSION, requested) \
            if isinstance(requested, int) and requested >= 2 else 1
        self.protocol = max(self.protocol, negotiated)
        return {**envelope, "ok": True, "result": {
            "protocol": negotiated, "server": PROTOCOL_VERSION,
            "pipelined": negotiated >= 2,
            "auth": "ok" if self.server.requires_auth else "open"}}

    def _dispatch_pipelined(self, request: dict) -> None:
        """Hand one request to the executor.  Mutating verbs join their
        workspace's FIFO chain (each task waits for the previous mutating
        task on the same connection+workspace); reads run immediately."""
        previous = done = None
        if request.get("verb") in _ORDERED_VERBS:
            workspace = request.get("workspace")
            done = threading.Event()
            previous = self.chains.get(workspace)
            self.chains[workspace] = done

        def task() -> None:
            if previous is not None:
                previous.wait()
            try:
                response, _shutdown = self.server.dispatch(request)
            finally:
                if done is not None:
                    done.set()  # never stall the chain, even on a bug
            with self.write_lock:
                self._respond(response)

        self.server.executor.submit(task)

    def _respond(self, response: dict) -> bool:
        try:
            write_message(self.wfile, response)
            return True
        except (BrokenPipeError, ConnectionResetError, ValueError, OSError):
            return False  # client died mid-request; its problem only


class _DaemonMixin:
    """Verb dispatch shared by the TCP and unix server classes."""

    daemon_threads = True  # a stuck handler must not block process exit
    block_on_close = False  # an idle connection must not block server_close
    allow_reuse_address = True

    service: PatchService
    verbose: bool = False
    #: shared-secret for TCP clients (``None`` = open); unix is always open
    auth_token: Optional[str] = None
    requires_auth: bool = False
    executor: ThreadPoolExecutor
    #: structured JSONL request journal (``--journal``); ``None`` = off
    journal: Optional[Journal] = None
    #: slow-request threshold in milliseconds (``--slow-ms``); ``None`` = off
    slow_ms: Optional[float] = None

    def dispatch(self, request: dict) -> tuple[dict, bool]:
        """``(response, shutdown?)`` for one request envelope."""
        started = time.monotonic()
        response, shutdown = self._execute(request)
        self._log_request(request, response, time.monotonic() - started)
        return response, shutdown

    def _log_request(self, request: dict, response: dict,
                     elapsed: float) -> None:
        """One journal event per request (plus a stderr line past the
        ``--slow-ms`` threshold); entirely absent without either flag."""
        duration_ms = elapsed * 1000.0
        slow = self.slow_ms is not None and duration_ms >= self.slow_ms
        if self.journal is None and not slow:
            return
        error = response.get("error") or None
        if self.journal is not None:
            self.journal.emit(
                "slow_request" if slow else "request",
                verb=request.get("verb"), workspace=request.get("workspace"),
                id=request.get("id"), trace=request.get("trace"),
                ok=bool(response.get("ok")),
                duration_ms=round(duration_ms, 3),
                error_type=error.get("type") if error else None)
        if slow:
            trace = request.get("trace")
            print(f"spatchd: slow request: {request.get('verb')} took "
                  f"{duration_ms:.1f}ms"
                  + (f" trace={trace}" if trace else ""),
                  file=sys.stderr, flush=True)

    def _execute(self, request: dict) -> tuple[dict, bool]:
        envelope = _envelope(request)
        verb = request.get("verb")
        if verb not in _VERBS:
            return {**envelope, "ok": False, "error": {
                "type": "bad-verb",
                "message": f"unknown verb {verb!r}; expected one of "
                           f"{', '.join(sorted(_VERBS))}"}}, False
        method_name, allowed = _VERBS[verb]
        unknown = set(request) - allowed - _ENVELOPE_FIELDS
        if unknown:
            return {**envelope, "ok": False, "error": {
                "type": "bad-request",
                "message": f"unknown field(s) for {verb}: "
                           f"{sorted(unknown)}"}}, False
        if verb == "shutdown":
            self.initiate_shutdown()
            return {**envelope, "ok": True, "result": {"stopping": True}}, True
        params = {key: value for key, value in request.items()
                  if key not in _ENVELOPE_FIELDS}
        workspace = params.pop("workspace", None)
        args = [workspace] if workspace is not None \
            else ([] if verb in ("stats", "metrics", "ping") else [None])
        try:
            result = getattr(self.service, method_name)(*args, **params)
            return {**envelope, "ok": True, "result": result}, False
        except ServiceError as exc:
            return {**envelope, "ok": False, "error": {
                "type": exc.kind, "message": str(exc)}}, False
        except (ProtocolError, TypeError, ValueError) as exc:
            return {**envelope, "ok": False, "error": {
                "type": "bad-request", "message": str(exc)}}, False
        except Exception as exc:  # a service bug must not kill the daemon
            if self.verbose:
                traceback.print_exc()
            return {**envelope, "ok": False, "error": {
                "type": "internal",
                "message": f"{type(exc).__name__}: {exc}"}}, False

    def initiate_shutdown(self) -> None:
        """Stop ``serve_forever`` from a handler thread (``shutdown()``
        blocks until the serve loop notices, so it must not run on the
        handler's own stack frame during the response write)."""
        threading.Thread(target=self.shutdown, daemon=True).start()


class _TcpDaemon(_DaemonMixin, socketserver.ThreadingTCPServer):
    pass


if hasattr(socketserver, "UnixStreamServer"):
    class _UnixDaemon(_DaemonMixin, socketserver.ThreadingMixIn,
                      socketserver.UnixStreamServer):
        pass
else:  # pragma: no cover - platforms without AF_UNIX
    _UnixDaemon = None


class PatchDaemon:
    """A listening daemon bound to ``address`` (``unix:PATH`` or
    ``HOST:PORT``), serving ``service`` until :meth:`shutdown` or the
    ``shutdown`` verb.  ``auth_token`` arms the TCP handshake (ignored —
    with a warning to ``verbose`` users' stderr — on unix sockets, which
    filesystem permissions already protect)."""

    def __init__(self, address: str,
                 service: Optional[PatchService] = None, *,
                 verbose: bool = False, auth_token: Optional[str] = None,
                 metrics: Optional[str] = None,
                 journal: Optional[str] = None,
                 slow_ms: Optional[float] = None):
        self.service = service if service is not None else PatchService()
        #: stdlib-only Prometheus endpoint (``--metrics HOST:PORT``)
        self.metrics_server = None
        if metrics is not None:
            from ..obs.metrics_http import MetricsServer

            self.metrics_server = MetricsServer(metrics)
            self.metrics_server.start()
        self.family, self.bind_address = parse_address(address)
        self._unix_path: Optional[str] = None
        if self.family == "unix":
            if _UnixDaemon is None:  # pragma: no cover
                raise OSError("unix-domain sockets are unavailable here")
            self._unix_path = str(self.bind_address)
            if os.path.exists(self._unix_path):
                # a previous daemon's stale socket file; refuse to steal a
                # *live* one
                probe = socket.socket(socket.AF_UNIX)
                try:
                    probe.connect(self._unix_path)
                except OSError:
                    os.unlink(self._unix_path)
                else:
                    probe.close()
                    raise OSError(f"{self._unix_path} is already served")
            self.server = _UnixDaemon(self._unix_path, _Handler)
        else:
            self.server = _TcpDaemon(self.bind_address, _Handler)
        self.server.service = self.service
        self.server.verbose = verbose
        self.server.journal = open_journal(journal)
        self.server.slow_ms = slow_ms
        self.server.auth_token = auth_token
        self.server.requires_auth = (auth_token is not None
                                     and self.family == "tcp")
        self.server.executor = ThreadPoolExecutor(
            max_workers=_EXECUTOR_THREADS, thread_name_prefix="spatchd-v2")

    @property
    def address(self) -> str:
        """The connectable address (TCP reports the actually bound port, so
        ``127.0.0.1:0`` requests resolve to something a client can use)."""
        if self.family == "unix":
            return f"unix:{self._unix_path}"
        host, port = self.server.server_address[:2]
        return f"{host}:{port}"

    def serve_forever(self) -> None:
        try:
            self.server.serve_forever(poll_interval=0.1)
        finally:
            self.close()

    def serve_in_thread(self) -> threading.Thread:
        """Run the serve loop on a background thread (tests, benchmarks)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name=f"spatchd:{self.address}", daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        self.server.shutdown()

    def close(self) -> None:
        self.server.server_close()
        self.server.executor.shutdown(wait=False)
        if self.metrics_server is not None:
            self.metrics_server.close()
        if self.server.journal is not None:
            self.server.journal.close()
        self.service.close()
        if self._unix_path and os.path.exists(self._unix_path):
            try:
                os.unlink(self._unix_path)
            except OSError:  # pragma: no cover - racing cleanup
                pass


def serve(address: str, service: Optional[PatchService] = None, *,
          verbose: bool = False, auth_token: Optional[str] = None,
          metrics: Optional[str] = None, journal: Optional[str] = None,
          slow_ms: Optional[float] = None, stderr=None) -> int:
    """Blocking entry point used by ``repro-spatchd``."""
    stderr = stderr or sys.stderr
    daemon = PatchDaemon(address, service, verbose=verbose,
                         auth_token=auth_token, metrics=metrics,
                         journal=journal, slow_ms=slow_ms)
    if auth_token is not None and daemon.family != "tcp":
        print("spatchd: note: auth token ignored on unix sockets "
              "(filesystem permissions gate them)", file=stderr, flush=True)
    print(f"spatchd: listening on {daemon.address}", file=stderr, flush=True)
    if daemon.metrics_server is not None:
        print(f"spatchd: metrics on http://{daemon.metrics_server.address}"
              f"/metrics", file=stderr, flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        daemon.close()
    print("spatchd: stopped", file=stderr, flush=True)
    return 0
