"""The framework-free core of the patch daemon: warm named workspaces.

:class:`PatchService` is plain Python — no sockets, no JSON — so it can be
driven in-process (tests, embedding) exactly as the daemon drives it.  It
owns a table of named :class:`Workspace` objects, each bundling the warm
state PRs 3–4 built but which previously died with every CLI process:

* an in-memory :class:`~repro.api.CodeBase` (synced from clients by
  content-hash delta, or loaded from a server-side directory),
* a per-workspace :class:`~repro.engine.cache.TreeCache` (so evicting a
  cold workspace frees its parse trees, and cache counters are
  attributable per workspace),
* the lazily built prefilter token index (owned by the code base), and
* the last :class:`~repro.engine.pipeline.PipelineResult`, seeding every
  subsequent ``apply`` through
  :class:`~repro.engine.incremental.IncrementalPipeline` — repeated
  requests against a workspace automatically splice per-file and
  patch-prefix results, and a changed patch list or toggled prefilter
  degrades to a cold run, never to wrong output (the engine's existing
  ``since=`` guarantees; the service adds no new reuse logic of its own).

Concurrency model
-----------------
Every verb that touches a workspace runs under that workspace's lock, so
concurrent clients serialize per workspace (and parallelize across
workspaces) — interleaved ``sync_files``/``apply`` streams behave as *some*
serial order of the same operations, never as a torn mixture.  A request
that fails (bad patch, mid-request crash, malformed spec) raises before or
after — never during — a state mutation: ``apply`` builds its patches
first and only stores the result on success, and ``sync_files`` validates
its payload before touching the code base, so a poisoned request leaves
the workspace exactly as the previous successful request did.

Cold workspaces are evicted LRU once ``max_workspaces`` is exceeded
(busy ones — lock currently held — are skipped in favour of the next
coldest).
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Optional, Sequence

from ..api import CodeBase, SemanticPatch
from ..engine.cache import TreeCache, content_sha1
from ..engine.incremental import IncrementalPipeline
from ..engine.memo import DEFAULT_MEMO_ENTRIES, TransformMemo
from ..engine.pipeline import PipelineResult
from ..options import SpatchOptions
from .protocol import (PROTOCOL_VERSION, options_from_payload,
                       profile_payload, result_payload)

#: pseudo cookbook name expanding to the whole-cookbook pipeline preset
#: (mirrors the CLI's ``--cookbook full_modernization``)
FULL_PIPELINE = "full_modernization"

#: LRU bound on built-patch specs cached per workspace: an authoring loop
#: ships a fresh SMPL revision per request (new content hash, new key), so
#: without a bound the cache would grow with every edit ever made
MAX_CACHED_PATCH_SPECS = 64


class ServiceError(Exception):
    """A request-level failure (unknown workspace, bad patch spec, ...).

    Carries a stable ``kind`` tag so wire clients can dispatch on it
    without parsing messages."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


class Workspace:
    """One named unit of warm server state (see the module docstring)."""

    def __init__(self, name: str, *, cache_entries: int = 512,
                 root: Optional[str] = None):
        self.name = name
        self.codebase = CodeBase()
        self.cache = TreeCache(max_entries=cache_entries)
        self.lock = threading.RLock()
        #: the last successful apply's result: the ``since=`` seed
        self.last: Optional[PipelineResult] = None
        #: server-side directory this workspace mirrors (``None`` for
        #: client-synced workspaces)
        self.root = root
        self.created_at = time.time()
        self.last_used = time.time()
        self.requests = 0
        self.applies = 0
        self.syncs = 0
        #: requests currently executing against this workspace (guarded by
        #: the service lock); eviction skips any workspace with one in
        #: flight, so a dispatched request can never lose its workspace
        #: between lookup and lock acquisition
        self.in_flight = 0
        #: per-workspace LRU cache of built patches keyed by spec identity,
        #: so repeated requests do not re-parse the same SMPL; never shared
        #: across workspaces (patch ASTs then never cross workspace
        #: threads), and bounded so an authoring loop saving a new SMPL
        #: revision per request cannot grow it forever
        self._patches: "OrderedDict[tuple, tuple[SemanticPatch, ...]]" = \
            OrderedDict()
        self._watcher = None
        self._watch_thread: Optional[threading.Thread] = None
        self._watch_stop = threading.Event()

    # -- server-side directory mirroring -----------------------------------

    def load_root(self) -> dict[str, list[str]]:
        """(Re)read the server-side directory into the code base, returning
        the on-disk delta; caller holds the lock."""
        if self.root is None:
            return {"added": [], "changed": [], "removed": []}
        return self.codebase.refresh_from_dir(self.root)

    def start_auto_refresh(self, backend: str, interval: float,
                           log) -> None:
        """Keep a rooted workspace in sync with its directory: a watcher
        thread folds the on-disk delta in whenever the backend reports
        change (the next ``apply`` then re-runs exactly the changed
        files)."""
        from .watch import create_watcher

        if self._watch_thread is not None or self.root is None:
            return
        self._watcher = create_watcher([self.root], backend=backend, log=log)

        def refresh_loop() -> None:
            while not self._watch_stop.is_set():
                try:
                    fired = self._watcher.wait(interval)
                except Exception:
                    return  # watcher torn down under us (workspace closed)
                if not fired or self._watch_stop.is_set():
                    continue
                try:
                    with self.lock:
                        self.load_root()
                except OSError:
                    # racing the editor: rglob saw a path an atomic save
                    # renamed away before read_text reached it.  The next
                    # event re-reads; dying here would silently freeze the
                    # workspace while stats still claim it is watching
                    continue

        self._watch_thread = threading.Thread(
            target=refresh_loop, name=f"refresh:{self.name}", daemon=True)
        self._watch_thread.start()

    def close(self) -> None:
        self._watch_stop.set()
        if self._watcher is not None:
            self._watcher.close()
        # the thread is a daemon and checks the stop flag after every wait;
        # don't join (a poll backend may be mid-sleep)

    # -- stats --------------------------------------------------------------

    def stats_payload(self) -> dict:
        token_index = self.codebase._token_index
        return {
            "name": self.name,
            "files": len(self.codebase),
            "root": self.root,
            "watching": self._watch_thread is not None,
            "requests": self.requests,
            "applies": self.applies,
            "syncs": self.syncs,
            "last_used": self.last_used,
            "has_result": self.last is not None,
            "patches_cached": len(self._patches),
            "parse_cache": self.cache.counters(),
            "token_index": token_index.counters()
            if token_index is not None else None,
        }


class PatchService:
    """Thread-safe implementation of every daemon verb (the daemon layer
    only adds sockets and JSON framing on top)."""

    def __init__(self, *, max_workspaces: int = 8, cache_entries: int = 512,
                 default_jobs: "int | str" = 1, log=None,
                 memo_entries: int = DEFAULT_MEMO_ENTRIES,
                 memo_dir=None):
        self.max_workspaces = max_workspaces
        self.cache_entries = cache_entries
        self.default_jobs = default_jobs
        self.log = log or (lambda message: None)
        self._workspaces: "OrderedDict[str, Workspace]" = OrderedDict()
        self._lock = threading.Lock()
        #: ONE transform memo shared by every workspace: identical vendored
        #: files across workspaces transform once, fleet-wide (parse trees
        #: stay per-workspace; memo entries are plain text + counters, so
        #: sharing them crosses no thread-affinity boundary).  ``memo_dir``
        #: adds the persistent tier, so a restarted daemon warm-starts.
        self.memo = TransformMemo(max_entries=memo_entries, path=memo_dir)
        #: how many live cached specs (across all workspaces) pin each
        #: compiled-patch cache key; the global compile cache is only told
        #: to evict when the last holder lets go
        self._compile_refs: dict[str, int] = {}
        self._compile_lock = threading.Lock()
        self.started_at = time.time()
        self.requests_total = 0
        self.evictions = 0

    # -- workspace table -----------------------------------------------------

    def workspace(self, name: str) -> Workspace:
        """The named workspace, LRU-touched; unknown names are an error (a
        client must ``open_workspace`` first — auto-creating here would turn
        a typo into a silently empty tree)."""
        with self._lock:
            return self._touch_locked(name)

    def _touch_locked(self, name: str) -> Workspace:
        workspace = self._workspaces.get(name)
        if workspace is None:
            raise ServiceError("unknown-workspace",
                               f"no workspace named {name!r}; "
                               f"open_workspace first")
        self._workspaces.move_to_end(name)
        workspace.last_used = time.time()
        workspace.requests += 1
        self.requests_total += 1
        return workspace

    @contextmanager
    def _checkout(self, name: str):
        """A workspace pinned for the duration of one request: the
        in-flight count keeps eviction away between the table lookup and
        the workspace-lock acquisition (the lock alone cannot — a workspace
        returned but not yet locked would look idle to the evictor)."""
        with self._lock:
            workspace = self._touch_locked(name)
            workspace.in_flight += 1
        try:
            yield workspace
        finally:
            with self._lock:
                workspace.in_flight -= 1

    def open_workspace(self, name: str, *, root: Optional[str] = None,
                       watch: bool = False, watch_backend: str = "auto",
                       watch_interval: float = 0.5) -> dict:
        """Create (or re-open) a named workspace.

        ``root`` points the workspace at a server-side directory, loaded
        now and — with ``watch=True`` — auto-refreshed by a filesystem
        watcher; without a root the workspace starts empty and is populated
        by ``sync_files``.  Opening an existing name is idempotent and
        never drops warm state (a differing ``root`` is an error)."""
        if not name or not isinstance(name, str):
            raise ServiceError("bad-request", "workspace name must be a "
                                              "non-empty string")
        with self._lock:
            workspace = self._workspaces.get(name)
            created = workspace is None
            if created:
                workspace = Workspace(name, cache_entries=self.cache_entries,
                                      root=root)
                self._workspaces[name] = workspace
                self._evict_cold_locked()
            self._workspaces.move_to_end(name)
            self.requests_total += 1
        if not created and root is not None and workspace.root != root:
            raise ServiceError("bad-request",
                               f"workspace {name!r} is already open with "
                               f"root {workspace.root!r}")
        with workspace.lock:
            workspace.last_used = time.time()
            if created and root is not None:
                workspace.load_root()
            if watch and root is not None:
                workspace.start_auto_refresh(watch_backend, watch_interval,
                                             self.log)
            return {"workspace": name, "created": created,
                    "files": len(workspace.codebase),
                    "protocol": PROTOCOL_VERSION}

    def _evict_cold_locked(self) -> None:
        """Drop LRU-coldest workspaces past the bound; busy ones — a
        request in flight (checked out but possibly not yet holding the
        workspace lock) or the lock held — are skipped for the
        next-coldest, so eviction never interrupts a client mid-request."""
        names = list(self._workspaces)
        for name in names:
            if len(self._workspaces) <= self.max_workspaces:
                break
            workspace = self._workspaces[name]
            if workspace.in_flight > 0:
                continue
            if not workspace.lock.acquire(blocking=False):
                continue
            try:
                del self._workspaces[name]
                self.evictions += 1
                workspace.close()
                self._release_workspace_specs(workspace)
            finally:
                workspace.lock.release()

    # -- verbs ---------------------------------------------------------------

    def sync_files(self, name: str, *, files: Optional[dict] = None,
                   remove: Optional[Sequence[str]] = None,
                   hashes: Optional[dict] = None) -> dict:
        """Content-hash delta upload.

        ``hashes`` — the client's full ``{name: sha1}`` manifest — makes
        the sync *authoritative*: the response's ``need`` lists files whose
        content the server lacks (missing or hash-mismatched), and server
        files absent from the manifest are removed.  ``files`` upserts
        contents (typically the previous response's ``need``); ``remove``
        deletes explicitly.  All three can be combined; a manifest-only
        round followed by a contents round is the two-phase delta the
        client uses, so an unchanged tree uploads nothing but its hashes.
        Upserts are applied *before* a manifest is evaluated, so one
        request carrying both atomically re-establishes a client's whole
        tree (the anti-torn-mixture half of the client's sync loop)."""
        if files is not None and not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in files.items()):
            raise ServiceError("bad-request",
                               "sync_files files must map names to text")
        with self._checkout(name) as workspace, workspace.lock:
            workspace.syncs += 1
            codebase = workspace.codebase
            added: list[str] = []
            changed: list[str] = []
            removed: list[str] = []
            for filename in list(remove or ()):
                if filename in codebase:
                    del codebase[filename]
                    removed.append(filename)
            if files:
                for filename, text in files.items():
                    if filename not in codebase:
                        codebase[filename] = text
                        added.append(filename)
                    elif codebase[filename] != text:
                        codebase[filename] = text
                        changed.append(filename)
            need: list[str] = []
            if hashes is not None:
                for filename, digest in hashes.items():
                    if filename not in codebase \
                            or content_sha1(codebase[filename]) != digest:
                        need.append(filename)
                for filename in [n for n in codebase.names()
                                 if n not in hashes]:
                    del codebase[filename]
                    removed.append(filename)
            return {"workspace": name, "files": len(codebase),
                    "added": added, "changed": changed, "removed": removed,
                    "need": need}

    def apply(self, name: str, patches: Sequence[dict], *,
              options: Optional[dict] = None, jobs: "int | str | None" = None,
              prefilter: bool = True, diff: bool = True, texts: bool = False,
              profile: bool = False, store: bool = True) -> dict:
        """Apply a patch list to a workspace, reusing warm state.

        ``patches`` is a list of wire specs (``{"kind": "cookbook",
        "name": ...}`` or ``{"kind": "smpl", "text": ..., "name": ...}``,
        applied in order as one pipeline).  The run goes through
        :class:`~repro.engine.incremental.IncrementalPipeline` seeded with
        the workspace's last result — the engine splices unchanged files
        and patch prefixes, or degrades to a cold run when nothing is
        reusable.  The response is the shared :mod:`result payload
        <repro.server.protocol>` (diffs and changed texts on request,
        volatile profile section under ``"profile"``)."""
        with self._checkout(name) as workspace, workspace.lock:
            built = self._build_patches(workspace, patches,
                                        options_from_payload(options))
            workspace.applies += 1
            pipeline = IncrementalPipeline(
                [patch.ast for patch in built],
                options=[patch.options for patch in built],
                names=[patch.name for patch in built],
                jobs=self.default_jobs if jobs is None else jobs,
                prefilter=prefilter, tree_cache=workspace.cache,
                memo=self.memo)
            token_index = workspace.codebase.token_index() if prefilter \
                else None
            result = pipeline.run(workspace.codebase.files,
                                  since=workspace.last,
                                  token_index=token_index)
            if store:
                workspace.last = result
            payload = result_payload(result, built, include_diff=diff,
                                     include_texts=texts)
            payload["workspace"] = name
            if profile:
                payload["profile"] = profile_payload(
                    result, cache=workspace.cache,
                    token_index=workspace.codebase._token_index,
                    memo=self.memo)
            return payload

    def query(self, name: str, patches: Sequence[dict], *,
              options: Optional[dict] = None, jobs: "int | str | None" = None,
              prefilter: bool = True, profile: bool = False) -> dict:
        """Match-only reporting: an ``apply`` that ships no diffs or texts
        and never replaces the workspace's warm result (so an exploratory
        query against a different patch list cannot cool the primary
        cookbook's reuse chain).  It still *reads* the warm state: an
        identical patch list splices everything and answers instantly."""
        return self.apply(name, patches, options=options, jobs=jobs,
                          prefilter=prefilter, diff=False, texts=False,
                          profile=profile, store=False)

    def stats(self, name: Optional[str] = None) -> dict:
        """Service- and per-workspace counters (cache hit/miss/dedup and
        prefilter scan reuse included — the satellite's user-visible
        surface for numbers that previously died with the process)."""
        with self._lock:
            workspaces = list(self._workspaces.values())
            payload = {
                "protocol": PROTOCOL_VERSION,
                "uptime_seconds": time.time() - self.started_at,
                "workspaces": len(workspaces),
                "max_workspaces": self.max_workspaces,
                "requests_total": self.requests_total,
                "evictions": self.evictions,
            }
        from ..engine.compile import compile_cache_info, matcher_counters

        payload["matcher"] = matcher_counters()
        payload["compile_cache"] = compile_cache_info()
        payload["memo"] = self.memo.counters()
        if name is not None:
            with self._checkout(name) as workspace, workspace.lock:
                payload["workspace"] = workspace.stats_payload()
        else:
            rows = []
            for workspace in workspaces:
                with workspace.lock:
                    rows.append(workspace.stats_payload())
            payload["per_workspace"] = rows
        return payload

    def ping(self) -> dict:
        return {"protocol": PROTOCOL_VERSION, "pid": os.getpid()}

    def close(self) -> None:
        """Stop watcher threads and drop all workspaces (daemon shutdown)."""
        with self._lock:
            workspaces = list(self._workspaces.values())
            self._workspaces.clear()
        for workspace in workspaces:
            workspace.close()
            self._release_workspace_specs(workspace)

    # -- patch building ------------------------------------------------------

    def _build_patches(self, workspace: Workspace, specs: Sequence[dict],
                       options: Optional[SpatchOptions],
                       ) -> list[SemanticPatch]:
        """The ordered patch list a request's wire specs name, cached per
        workspace by spec identity (kind, name, content hash, options) so
        steady-state requests skip SMPL re-parsing; caller holds the lock."""
        if not specs:
            raise ServiceError("bad-request", "no patches given")
        built: list[SemanticPatch] = []
        options_key = repr(options)
        for spec in specs:
            if not isinstance(spec, dict) or "kind" not in spec:
                raise ServiceError("bad-patch",
                                   "patch specs must be objects with a "
                                   "'kind' field")
            kind = spec["kind"]
            if kind == "cookbook":
                key = ("cookbook", spec.get("name"), options_key)
            elif kind == "smpl":
                text = spec.get("text")
                if not isinstance(text, str):
                    raise ServiceError("bad-patch",
                                       "smpl specs need a 'text' string")
                key = ("smpl", spec.get("name"), content_sha1(text),
                       options_key)
            else:
                raise ServiceError("bad-patch",
                                   f"unknown patch spec kind {kind!r}")
            cached = workspace._patches.get(key)
            if cached is None:
                cached = tuple(self._parse_spec(spec, options))
                workspace._patches[key] = cached
                self._retain_compiled(cached)
                while len(workspace._patches) > MAX_CACHED_PATCH_SPECS:
                    _key, evicted = workspace._patches.popitem(last=False)
                    # an evicted spec's compiled matchers would only be
                    # rebuilt on a cache miss anyway; dropping them keeps
                    # the compile cache bounded by the specs still live.
                    # Bounded per *service*, not per workspace: the compile
                    # cache is global and fingerprint-keyed, so the drop is
                    # refcounted — another workspace whose cached spec
                    # shares the fingerprint keeps the compiled form hot
                    self._release_compiled(evicted)
            else:
                workspace._patches.move_to_end(key)
            built.extend(cached)
        return built

    def _retain_compiled(self, patches: Sequence[SemanticPatch]) -> None:
        """Pin the compiled-cache keys of one freshly cached spec's patches
        (one reference per live spec-cache entry holding them)."""
        from ..engine.compile import compile_key

        with self._compile_lock:
            for patch in patches:
                key = compile_key(patch.ast, patch.options)
                self._compile_refs[key] = self._compile_refs.get(key, 0) + 1

    def _release_compiled(self, patches: Sequence[SemanticPatch]) -> None:
        """Unpin one evicted spec's patches; a compiled form is only evicted
        from the global cache when no workspace's spec cache holds its
        fingerprint any more."""
        from ..engine.compile import compile_key, evict_compiled

        for patch in patches:
            key = compile_key(patch.ast, patch.options)
            with self._compile_lock:
                remaining = self._compile_refs.get(key, 0) - 1
                if remaining > 0:
                    self._compile_refs[key] = remaining
                    continue
                self._compile_refs.pop(key, None)
                last_holder = remaining == 0
            if last_holder:
                evict_compiled(patch.ast, patch.options)

    def _release_workspace_specs(self, workspace: Workspace) -> None:
        """Unpin everything a dying workspace's spec cache holds (LRU
        eviction and shutdown), letting now-orphaned compiled forms go."""
        for cached in workspace._patches.values():
            self._release_compiled(cached)
        workspace._patches.clear()

    @staticmethod
    def _parse_spec(spec: dict, options: Optional[SpatchOptions],
                    ) -> list[SemanticPatch]:
        from ..cookbook import builders

        if spec["kind"] == "smpl":
            try:
                return [SemanticPatch.from_string(
                    spec["text"], options=options,
                    name=spec.get("name", "<smpl>"))]
            except Exception as exc:
                raise ServiceError("bad-patch",
                                   f"unparsable SMPL "
                                   f"({spec.get('name', '<smpl>')}): {exc}") \
                    from None
        name = spec.get("name")
        if name == FULL_PIPELINE:
            from ..cookbook import full_modernization_pipeline

            return list(full_modernization_pipeline())
        table = builders()
        if name not in table:
            raise ServiceError("bad-patch",
                               f"unknown cookbook patch {name!r}")
        return [table[name]()]
