"""The framework-free core of the patch daemon: warm named workspaces.

:class:`PatchService` is plain Python — no sockets, no JSON — so it can be
driven in-process (tests, embedding) exactly as the daemon drives it.  It
owns a table of named :class:`Workspace` objects, each bundling the warm
state PRs 3–4 built but which previously died with every CLI process:

* an in-memory :class:`~repro.api.CodeBase` (synced from clients by
  content-hash delta, or loaded from a server-side directory),
* a per-workspace :class:`~repro.engine.cache.TreeCache` (so evicting a
  cold workspace frees its parse trees, and cache counters are
  attributable per workspace),
* the lazily built prefilter token index (owned by the code base), and
* the last :class:`~repro.engine.pipeline.PipelineResult`, seeding every
  subsequent ``apply`` through
  :class:`~repro.engine.incremental.IncrementalPipeline` — repeated
  requests against a workspace automatically splice per-file and
  patch-prefix results, and a changed patch list or toggled prefilter
  degrades to a cold run, never to wrong output (the engine's existing
  ``since=`` guarantees; the service adds no new reuse logic of its own).

Concurrency model
-----------------
Every verb that *mutates* a workspace runs under that workspace's lock, so
concurrent clients serialize per workspace (and parallelize across
workspaces) — interleaved ``sync_files``/``apply`` streams behave as *some*
serial order of the same operations, never as a torn mixture.  A request
that fails (bad patch, mid-request crash, malformed spec) raises before or
after — never during — a state mutation: ``apply`` builds its patches
first and only stores the result on success, and ``sync_files`` validates
its payload before touching the code base, so a poisoned request leaves
the workspace exactly as the previous successful request did.

Read-only verbs never queue behind applies: ``query`` runs against an
atomically published snapshot of the file dict (``Workspace._files_view``,
replaced — never mutated — at the end of each mutation while the lock is
held), and ``stats`` reads counters without the workspace lock.  A query
racing a sync sees either the whole pre-sync tree or the whole post-sync
tree; the incremental engine's content-hash verification makes any
``since=`` seed safe regardless of which one it sees.

With ``workers >= 2`` the service routes stored applies to an
:class:`~repro.server.fleet.ApplyFleet` of worker *processes*: each
workspace is pinned to one worker by a stable name shard (so per-workspace
ordering is preserved — one worker, one pipe, FIFO), and N workers give N
truly concurrent applies across workspaces where the GIL previously
allowed one.  ``workers=1`` (the default) keeps the exact in-process
behavior.  With a ``state_root``, workspace snapshots
(:class:`~repro.engine.incremental.PipelineState` with the file tree
embedded) survive daemon restarts: saved after every stored apply,
restored lazily on first touch.

Cold workspaces are evicted LRU once ``max_workspaces`` is exceeded
(busy ones — lock currently held — are skipped in favour of the next
coldest).
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Optional, Sequence

from ..api import CodeBase, SemanticPatch
from ..engine.cache import SharedTreeStore, TreeCache, content_sha1
from ..engine.incremental import IncrementalPipeline, PipelineState
from ..engine.memo import DEFAULT_MEMO_ENTRIES, TransformMemo
from ..engine.pipeline import PipelineResult
from ..errors import patch_error_line
from ..frontends import WIRE_KINDS as FRONTEND_WIRE_KINDS
from ..obs import registry as _obs
from ..options import SpatchOptions
from .protocol import (PROTOCOL_VERSION, options_from_payload,
                       profile_payload, result_payload)

#: pseudo cookbook name expanding to the whole-cookbook pipeline preset
#: (mirrors the CLI's ``--cookbook full_modernization``)
FULL_PIPELINE = "full_modernization"

#: LRU bound on built-patch specs cached per workspace: an authoring loop
#: ships a fresh SMPL revision per request (new content hash, new key), so
#: without a bound the cache would grow with every edit ever made
MAX_CACHED_PATCH_SPECS = 64


class ServiceError(Exception):
    """A request-level failure (unknown workspace, bad patch spec, ...).

    Carries a stable ``kind`` tag so wire clients can dispatch on it
    without parsing messages."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


def spec_key(spec: dict, options_key: str) -> tuple:
    """The cache identity of one wire patch spec (kind, name, content
    hash, options) — shared by the parent's per-workspace spec cache and
    the fleet workers' mirrors, so both layers dedup identically."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ServiceError("bad-patch", "patch specs must be objects with "
                                        "a 'kind' field")
    kind = spec["kind"]
    if kind == "cookbook":
        return ("cookbook", spec.get("name"), options_key)
    if kind == "smpl" or kind in FRONTEND_WIRE_KINDS:
        text = spec.get("text")
        if not isinstance(text, str):
            raise ServiceError("bad-patch",
                               f"{kind} specs need a 'text' string")
        return (kind, spec.get("name"), content_sha1(text), options_key)
    raise ServiceError("bad-patch", f"unknown patch spec kind {kind!r}")


def build_patch_list(specs: Sequence[dict],
                     options: Optional[SpatchOptions]) -> list[SemanticPatch]:
    """Parse an ordered list of wire specs into patches (no caching —
    callers layer their own; raises :class:`ServiceError` on bad specs)."""
    if not specs:
        raise ServiceError("bad-request", "no patches given")
    built: list[SemanticPatch] = []
    for spec in specs:
        spec_key(spec, "")  # validate the shape before parsing anything
        built.extend(PatchService._parse_spec(spec, options))
    return built


def _aggregate_worker_stats(per_worker: Sequence[dict]) -> dict:
    """Fold the fleet's per-worker stat rows into one fleet-wide view:
    counter dicts (memo, tree_store, every mirror's parse cache) sum
    key-wise, workspace lists just count.  This is the satellite fix for
    the fleet-mode profile gap — per-worker counters previously appeared
    only as N disjoint rows a human had to add up."""
    def fold(total: dict, counters: Optional[dict]) -> None:
        for key, value in (counters or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                total[key] = total.get(key, 0) + value

    memo: dict = {}
    tree_store: dict = {}
    parse_cache: dict = {}
    workspaces = 0
    for row in per_worker:
        if not isinstance(row, dict) or "error" in row:
            continue
        fold(memo, row.get("memo"))
        fold(tree_store, row.get("tree_store"))
        workspaces += len(row.get("workspaces") or ())
        for counters in (row.get("parse_caches") or {}).values():
            fold(parse_cache, counters)
    return {"workspaces": workspaces, "memo": memo,
            "tree_store": tree_store, "parse_cache": parse_cache}


class Workspace:
    """One named unit of warm server state (see the module docstring)."""

    def __init__(self, name: str, *, cache_entries: int = 512,
                 root: Optional[str] = None,
                 shared: Optional[SharedTreeStore] = None):
        self.name = name
        self.codebase = CodeBase()
        self.cache = TreeCache(max_entries=cache_entries, shared=shared)
        self.lock = threading.RLock()
        #: the last successful apply's result: the ``since=`` seed
        self.last: Optional[PipelineResult] = None
        #: server-side directory this workspace mirrors (``None`` for
        #: client-synced workspaces)
        self.root = root
        self.created_at = time.time()
        self.last_used = time.time()
        self.requests = 0
        self.applies = 0
        self.syncs = 0
        #: atomically *replaced* (never mutated) snapshot of the file dict,
        #: published at the end of every mutation while the lock is held —
        #: what lock-free readers (``query``) run against
        self._files_view: dict = {}
        #: ``{name: sha1}`` the pinned fleet worker was last brought up to
        #: (``None`` = never spoken to); the delta base for fleet applies
        self.fleet_seen: Optional[dict] = None
        #: whether this workspace was warm-started from a state snapshot
        self.restored = False
        #: requests currently executing against this workspace (guarded by
        #: the service lock); eviction skips any workspace with one in
        #: flight, so a dispatched request can never lose its workspace
        #: between lookup and lock acquisition
        self.in_flight = 0
        #: per-workspace LRU cache of built patches keyed by spec identity,
        #: so repeated requests do not re-parse the same SMPL; never shared
        #: across workspaces (patch ASTs then never cross workspace
        #: threads), and bounded so an authoring loop saving a new SMPL
        #: revision per request cannot grow it forever
        self._patches: "OrderedDict[tuple, tuple[SemanticPatch, ...]]" = \
            OrderedDict()
        #: guards ``_patches`` alone, so the lock-free query path can build
        #: patches without taking the workspace lock (mutating verbs hold
        #: the workspace lock first, then this — one consistent order)
        self._patches_lock = threading.Lock()
        self._watcher = None
        self._watch_thread: Optional[threading.Thread] = None
        self._watch_stop = threading.Event()

    # -- server-side directory mirroring -----------------------------------

    def load_root(self) -> dict[str, list[str]]:
        """(Re)read the server-side directory into the code base, returning
        the on-disk delta; caller holds the lock."""
        if self.root is None:
            return {"added": [], "changed": [], "removed": []}
        delta = self.codebase.refresh_from_dir(self.root)
        self.publish_files()
        return delta

    def publish_files(self) -> None:
        """Publish the current file dict for lock-free readers; caller
        holds the lock (the copy is shallow — texts are shared)."""
        self._files_view = dict(self.codebase.files)

    def start_auto_refresh(self, backend: str, interval: float,
                           log) -> None:
        """Keep a rooted workspace in sync with its directory: a watcher
        thread folds the on-disk delta in whenever the backend reports
        change (the next ``apply`` then re-runs exactly the changed
        files)."""
        from .watch import create_watcher

        if self._watch_thread is not None or self.root is None:
            return
        self._watcher = create_watcher([self.root], backend=backend, log=log)

        def refresh_loop() -> None:
            while not self._watch_stop.is_set():
                try:
                    fired = self._watcher.wait(interval)
                except Exception:
                    return  # watcher torn down under us (workspace closed)
                if not fired or self._watch_stop.is_set():
                    continue
                try:
                    with self.lock:
                        self.load_root()
                except OSError:
                    # racing the editor: rglob saw a path an atomic save
                    # renamed away before read_text reached it.  The next
                    # event re-reads; dying here would silently freeze the
                    # workspace while stats still claim it is watching
                    continue

        self._watch_thread = threading.Thread(
            target=refresh_loop, name=f"refresh:{self.name}", daemon=True)
        self._watch_thread.start()

    def close(self) -> None:
        self._watch_stop.set()
        if self._watcher is not None:
            self._watcher.close()
        # the thread is a daemon and checks the stop flag after every wait;
        # don't join (a poll backend may be mid-sleep)

    # -- stats --------------------------------------------------------------

    def stats_payload(self) -> dict:
        token_index = self.codebase._token_index
        return {
            "name": self.name,
            "files": len(self.codebase),
            "root": self.root,
            "watching": self._watch_thread is not None,
            "requests": self.requests,
            "applies": self.applies,
            "syncs": self.syncs,
            "last_used": self.last_used,
            "has_result": self.last is not None,
            "restored": self.restored,
            "patches_cached": len(self._patches),
            "parse_cache": self.cache.counters(),
            "token_index": token_index.counters()
            if token_index is not None else None,
        }


class PatchService:
    """Thread-safe implementation of every daemon verb (the daemon layer
    only adds sockets and JSON framing on top)."""

    def __init__(self, *, max_workspaces: int = 8, cache_entries: int = 512,
                 default_jobs: "int | str" = 1, log=None,
                 memo_entries: int = DEFAULT_MEMO_ENTRIES,
                 memo_dir=None, workers: int = 1,
                 state_root=None, memo_max_bytes: Optional[int] = None,
                 memo_max_age: Optional[float] = None):
        self.max_workspaces = max_workspaces
        self.cache_entries = cache_entries
        self.default_jobs = default_jobs
        self.log = log or (lambda message: None)
        self._workspaces: "OrderedDict[str, Workspace]" = OrderedDict()
        self._lock = threading.Lock()
        #: ONE transform memo shared by every workspace: identical vendored
        #: files across workspaces transform once, fleet-wide (parse trees
        #: stay per-workspace; memo entries are plain text + counters, so
        #: sharing them crosses no thread-affinity boundary).  ``memo_dir``
        #: adds the persistent tier, so a restarted daemon warm-starts.
        self.memo = TransformMemo(max_entries=memo_entries, path=memo_dir)
        #: content-addressed parse-tree layer behind every workspace's
        #: TreeCache: vendored-identical files parse once service-wide
        self.tree_store = SharedTreeStore()
        #: where workspace snapshots live (``None`` = state dies with the
        #: process, the pre-v2 behavior)
        self.state_root = os.fspath(state_root) \
            if state_root is not None else None
        #: disk-tier GC policy, enforced opportunistically after applies
        self.memo_max_bytes = memo_max_bytes
        self.memo_max_age = memo_max_age
        self._prune_pending = threading.Lock()
        self._applies_since_prune = 0
        #: the apply-fleet of worker processes (``None`` below 2 workers:
        #: in-process execution is the exact pre-v2 path).  Forked *now*,
        #: before any daemon accept thread exists, so children never
        #: inherit a mid-acquire lock.
        self.workers = max(1, int(workers))
        self._fleet = None
        if self.workers >= 2:
            from .fleet import ApplyFleet

            self._fleet = ApplyFleet(self.workers,
                                     cache_entries=cache_entries,
                                     memo_entries=memo_entries,
                                     memo_dir=memo_dir,
                                     state_root=self.state_root)
        #: how many live cached specs (across all workspaces) pin each
        #: compiled-patch cache key; the global compile cache is only told
        #: to evict when the last holder lets go
        self._compile_refs: dict[str, int] = {}
        self._compile_lock = threading.Lock()
        self.started_at = time.time()
        self.requests_total = 0
        self.evictions = 0
        #: unregistered in :meth:`close` — an embedded service must not
        #: leak scrapes of its dead self through the process registry
        self._collector = _obs.REGISTRY.register_collector(
            self._metrics_collector)

    # -- workspace table -----------------------------------------------------

    def workspace(self, name: str) -> Workspace:
        """The named workspace, LRU-touched; unknown names are an error (a
        client must ``open_workspace`` first — auto-creating here would turn
        a typo into a silently empty tree)."""
        with self._lock:
            return self._touch_locked(name)

    def _touch_locked(self, name: str) -> Workspace:
        workspace = self._workspaces.get(name)
        if workspace is None:
            raise ServiceError("unknown-workspace",
                               f"no workspace named {name!r}; "
                               f"open_workspace first")
        self._workspaces.move_to_end(name)
        workspace.last_used = time.time()
        workspace.requests += 1
        self.requests_total += 1
        return workspace

    @contextmanager
    def _checkout(self, name: str):
        """A workspace pinned for the duration of one request: the
        in-flight count keeps eviction away between the table lookup and
        the workspace-lock acquisition (the lock alone cannot — a workspace
        returned but not yet locked would look idle to the evictor)."""
        with self._lock:
            workspace = self._touch_locked(name)
            workspace.in_flight += 1
        try:
            yield workspace
        finally:
            with self._lock:
                workspace.in_flight -= 1

    def open_workspace(self, name: str, *, root: Optional[str] = None,
                       watch: bool = False, watch_backend: str = "auto",
                       watch_interval: float = 0.5) -> dict:
        """Create (or re-open) a named workspace.

        ``root`` points the workspace at a server-side directory, loaded
        now and — with ``watch=True`` — auto-refreshed by a filesystem
        watcher; without a root the workspace starts empty and is populated
        by ``sync_files``.  Opening an existing name is idempotent and
        never drops warm state (a differing ``root`` is an error)."""
        if not name or not isinstance(name, str):
            raise ServiceError("bad-request", "workspace name must be a "
                                              "non-empty string")
        with self._lock:
            workspace = self._workspaces.get(name)
            created = workspace is None
            if created:
                workspace = Workspace(name, cache_entries=self.cache_entries,
                                      root=root, shared=self.tree_store)
                self._workspaces[name] = workspace
                evicted = self._evict_cold_locked()
            else:
                evicted = []
            self._workspaces.move_to_end(name)
            self.requests_total += 1
        self._drop_evicted(evicted)
        if not created and root is not None and workspace.root != root:
            raise ServiceError("bad-request",
                               f"workspace {name!r} is already open with "
                               f"root {workspace.root!r}")
        with workspace.lock:
            workspace.last_used = time.time()
            if created and root is not None:
                workspace.load_root()
            elif created:
                self._restore_workspace(workspace)
            if watch and root is not None:
                workspace.start_auto_refresh(watch_backend, watch_interval,
                                             self.log)
            return {"workspace": name, "created": created,
                    "files": len(workspace.codebase),
                    "restored": workspace.restored,
                    "protocol": PROTOCOL_VERSION}

    # -- restart survival ----------------------------------------------------

    def _state_path(self, name: str) -> Optional[str]:
        if self.state_root is None:
            return None
        from .fleet import state_path

        return state_path(self.state_root, name)

    def _restore_workspace(self, workspace: Workspace) -> None:
        """Warm-start a freshly created client-synced workspace from its
        snapshot (rooted workspaces re-read their directory instead);
        caller holds the workspace lock.  Corrupt or absent snapshots
        restore nothing — the next sync/apply runs cold, never wrong."""
        path = self._state_path(workspace.name)
        if path is None:
            return
        state = PipelineState.load(path)
        if state is None or state.files is None:
            return
        for filename, text in state.files.items():
            workspace.codebase[filename] = text
        workspace.last = state.result
        workspace.cache.restore(state.cache_entries)
        workspace.publish_files()
        workspace.restored = True
        if self._fleet is not None:
            # the pinned worker restores from the same snapshot on first
            # touch: seeding the delta base with the snapshot manifest
            # means the first post-restart apply ships only real edits
            # (any divergence is caught by the job's manifest check)
            workspace.fleet_seen = {
                filename: content_sha1(text)
                for filename, text in state.files.items()}

    def _save_workspace(self, workspace: Workspace) -> None:
        """Snapshot one workspace after a stored apply (in-process mode;
        fleet workers snapshot their own mirrors); caller holds the lock."""
        path = self._state_path(workspace.name)
        if path is None or workspace.root is not None:
            return
        try:
            os.makedirs(self.state_root, exist_ok=True)
            PipelineState(result=workspace.last,
                          cache_entries=workspace.cache.snapshot(),
                          files=dict(workspace.codebase.files)).save(path)
        except Exception:
            pass  # an unwritable state dir must never fail the apply

    def _drop_evicted(self, names) -> None:
        """Tell the fleet to forget evicted workspaces' mirrors — purely
        memory hygiene (a reopened workspace self-heals via the manifest
        check), so it happens off-thread and best-effort."""
        if not names or self._fleet is None:
            return
        fleet = self._fleet

        def drop() -> None:
            for name in names:
                fleet.drop(name)

        threading.Thread(target=drop, name="fleet-drop", daemon=True).start()

    def _evict_cold_locked(self) -> list[str]:
        """Drop LRU-coldest workspaces past the bound; busy ones — a
        request in flight (checked out but possibly not yet holding the
        workspace lock) or the lock held — are skipped for the
        next-coldest, so eviction never interrupts a client mid-request.
        Returns the evicted names (the caller notifies the fleet *after*
        releasing the service lock — a worker mid-apply must not stall
        every other request)."""
        names = list(self._workspaces)
        evicted: list[str] = []
        for name in names:
            if len(self._workspaces) <= self.max_workspaces:
                break
            workspace = self._workspaces[name]
            if workspace.in_flight > 0:
                continue
            if not workspace.lock.acquire(blocking=False):
                continue
            try:
                del self._workspaces[name]
                self.evictions += 1
                evicted.append(name)
                workspace.close()
                self._release_workspace_specs(workspace)
            finally:
                workspace.lock.release()
        return evicted

    # -- verbs ---------------------------------------------------------------

    def sync_files(self, name: str, *, files: Optional[dict] = None,
                   remove: Optional[Sequence[str]] = None,
                   hashes: Optional[dict] = None) -> dict:
        """Content-hash delta upload.

        ``hashes`` — the client's full ``{name: sha1}`` manifest — makes
        the sync *authoritative*: the response's ``need`` lists files whose
        content the server lacks (missing or hash-mismatched), and server
        files absent from the manifest are removed.  ``files`` upserts
        contents (typically the previous response's ``need``); ``remove``
        deletes explicitly.  All three can be combined; a manifest-only
        round followed by a contents round is the two-phase delta the
        client uses, so an unchanged tree uploads nothing but its hashes.
        Upserts are applied *before* a manifest is evaluated, so one
        request carrying both atomically re-establishes a client's whole
        tree (the anti-torn-mixture half of the client's sync loop).

        The sync is **memo-aware**: every uploaded text is remembered in
        the fleet-wide content-addressed blob store, and a manifest entry
        the server lacks is first *recalled* from that store by hash —
        contents any client ever uploaded (or, with ``--memo-dir``, any
        process sharing the directory ever saw) never cross the wire
        again.  Recalled names are reported under ``"recalled"`` and
        excluded from ``"need"``."""
        if files is not None and not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in files.items()):
            raise ServiceError("bad-request",
                               "sync_files files must map names to text")
        with self._checkout(name) as workspace, workspace.lock, \
                _obs.phase("sync"):
            workspace.syncs += 1
            codebase = workspace.codebase
            added: list[str] = []
            changed: list[str] = []
            removed: list[str] = []
            recalled: list[str] = []
            for filename in list(remove or ()):
                if filename in codebase:
                    del codebase[filename]
                    removed.append(filename)
            if files:
                for filename, text in files.items():
                    self.memo.store_text(text)
                    if filename not in codebase:
                        codebase[filename] = text
                        added.append(filename)
                    elif codebase[filename] != text:
                        codebase[filename] = text
                        changed.append(filename)
            need: list[str] = []
            if hashes is not None:
                for filename, digest in hashes.items():
                    if filename in codebase \
                            and content_sha1(codebase[filename]) == digest:
                        continue
                    if isinstance(digest, str):
                        text = self.memo.recall_text(digest)
                        if text is not None:
                            codebase[filename] = text
                            recalled.append(filename)
                            continue
                    need.append(filename)
                for filename in [n for n in codebase.names()
                                 if n not in hashes]:
                    del codebase[filename]
                    removed.append(filename)
            workspace.publish_files()
            return {"workspace": name, "files": len(codebase),
                    "added": added, "changed": changed, "removed": removed,
                    "recalled": recalled, "need": need}

    def apply(self, name: str, patches: Sequence[dict], *,
              options: Optional[dict] = None, jobs: "int | str | None" = None,
              prefilter: bool = True, diff: bool = True, texts: bool = False,
              profile: bool = False, store: bool = True) -> dict:
        """Apply a patch list to a workspace, reusing warm state.

        ``patches`` is a list of wire specs (``{"kind": "cookbook",
        "name": ...}`` or ``{"kind": "smpl", "text": ..., "name": ...}``,
        applied in order as one pipeline).  The run goes through
        :class:`~repro.engine.incremental.IncrementalPipeline` seeded with
        the workspace's last result — the engine splices unchanged files
        and patch prefixes, or degrades to a cold run when nothing is
        reusable.  The response is the shared :mod:`result payload
        <repro.server.protocol>` (diffs and changed texts on request,
        volatile profile section under ``"profile"``).

        With a fleet (``workers >= 2``), stored applies execute in the
        workspace's pinned worker process; the workspace lock is held for
        the round trip, so per-workspace serialization is identical to the
        in-process path."""
        if self._fleet is not None and store:
            return self._apply_fleet(name, patches, options=options,
                                     jobs=jobs, prefilter=prefilter,
                                     diff=diff, texts=texts, profile=profile)
        with self._checkout(name) as workspace, workspace.lock:
            built = self._build_patches(workspace, patches,
                                        options_from_payload(options))
            workspace.applies += 1
            pipeline = IncrementalPipeline(
                [patch.ast for patch in built],
                options=[patch.options for patch in built],
                names=[patch.name for patch in built],
                jobs=self.default_jobs if jobs is None else jobs,
                prefilter=prefilter, tree_cache=workspace.cache,
                memo=self.memo)
            token_index = workspace.codebase.token_index() if prefilter \
                else None
            result = pipeline.run(workspace.codebase.files,
                                  since=workspace.last,
                                  token_index=token_index)
            if store:
                workspace.last = result
                self._save_workspace(workspace)
            payload = result_payload(result, built, include_diff=diff,
                                     include_texts=texts)
            payload["workspace"] = name
            if profile:
                payload["profile"] = profile_payload(
                    result, cache=workspace.cache,
                    token_index=workspace.codebase._token_index,
                    memo=self.memo)
                payload["profile"]["tree_store"] = self.tree_store.counters()
                payload["profile"]["restored"] = workspace.restored
        if store:
            self._maybe_prune_memo()
        return payload

    def _apply_fleet(self, name: str, patches: Sequence[dict], *,
                     options: Optional[dict], jobs: "int | str | None",
                     prefilter: bool, diff: bool, texts: bool,
                     profile: bool) -> dict:
        """Route one stored apply to the pinned fleet worker: ship the
        delta since the worker's last known tree plus the target manifest,
        resend the full tree once if the worker reports divergence."""
        options_from_payload(options)  # validate before any state changes
        with self._checkout(name) as workspace, workspace.lock:
            workspace.applies += 1
            codebase = workspace.codebase
            manifest = codebase.content_hashes()
            seen = workspace.fleet_seen or {}
            job = {"op": "apply", "workspace": name,
                   "upserts": {filename: codebase[filename]
                               for filename, digest in manifest.items()
                               if seen.get(filename) != digest},
                   "removals": [filename for filename in seen
                                if filename not in manifest],
                   "manifest": manifest, "patches": list(patches),
                   "options": options,
                   "jobs": self.default_jobs if jobs is None else jobs,
                   "prefilter": prefilter, "diff": diff, "texts": texts,
                   "profile": profile, "store": True}
            reply = self._fleet.call(name, job)
            if reply.get("resync"):
                job = {**job, "full": True, "removals": [],
                       "upserts": {filename: codebase[filename]
                                   for filename in manifest}}
                reply = self._fleet.call(name, job)
            if not reply.get("ok"):
                workspace.fleet_seen = None  # trust nothing after a failure
                error = reply.get("error") or {}
                raise ServiceError(error.get("kind", "internal"),
                                   error.get("message", "fleet apply failed"))
            workspace.fleet_seen = manifest
        # fold the worker's registry delta into the parent's registry under
        # origin="fleet": the daemon's /metrics then covers matching that
        # happened in worker processes, exactly (per-job before/after)
        _obs.merge_telemetry(reply.get("telemetry"), origin="fleet")
        self._maybe_prune_memo()
        payload = reply["payload"]
        payload["workspace"] = name
        if profile and "profile" in payload:
            payload["profile"]["fleet_worker"] = {
                "index": self._fleet.shard(name), "pid": reply.get("pid")}
        return payload

    def query(self, name: str, patches: Sequence[dict], *,
              options: Optional[dict] = None, jobs: "int | str | None" = None,
              prefilter: bool = True, profile: bool = False) -> dict:
        """Match-only reporting: an ``apply`` that ships no diffs or texts
        and never replaces the workspace's warm result (so an exploratory
        query against a different patch list cannot cool the primary
        cookbook's reuse chain).  It still *reads* the warm state — the
        published file snapshot, the parse cache, the memo and the last
        result — but takes **no workspace lock**: a query never queues
        behind a slow apply, and an apply never waits for a query.  The
        ``since=`` seed is safe against any interleaving because the
        incremental engine re-verifies every content hash before reusing
        anything."""
        with self._checkout(name) as workspace:
            built = self._build_patches(workspace, patches,
                                        options_from_payload(options))
            files = workspace._files_view  # atomic snapshot reference
            since = workspace.last  # immutable once published
            pipeline = IncrementalPipeline(
                [patch.ast for patch in built],
                options=[patch.options for patch in built],
                names=[patch.name for patch in built],
                jobs=self.default_jobs if jobs is None else jobs,
                prefilter=prefilter, tree_cache=workspace.cache,
                memo=self.memo)
            # no token index: it is owned (and lazily built) by the
            # codebase under the workspace lock this path must not take;
            # the prefilter falls back to direct token scans
            result = pipeline.run(files, since=since, token_index=None)
            payload = result_payload(result, built, include_diff=False,
                                     include_texts=False)
            payload["workspace"] = name
            if profile:
                payload["profile"] = profile_payload(
                    result, cache=workspace.cache, memo=self.memo)
                payload["profile"]["tree_store"] = self.tree_store.counters()
            return payload

    def stats(self, name: Optional[str] = None) -> dict:
        """Service- and per-workspace counters (cache hit/miss/dedup and
        prefilter scan reuse included — the satellite's user-visible
        surface for numbers that previously died with the process)."""
        with self._lock:
            workspaces = list(self._workspaces.values())
            payload = {
                "protocol": PROTOCOL_VERSION,
                "uptime_seconds": time.time() - self.started_at,
                "workspaces": len(workspaces),
                "max_workspaces": self.max_workspaces,
                "workers": self.workers,
                "requests_total": self.requests_total,
                "evictions": self.evictions,
            }
        from ..engine.compile import compile_cache_info, matcher_counters

        payload["matcher"] = matcher_counters()
        payload["compile_cache"] = compile_cache_info()
        payload["memo"] = self.memo.counters()
        payload["tree_store"] = self.tree_store.counters()
        # stats never takes a workspace lock (counters are monotonic ints
        # and every embedded counters() call locks its own structure), so
        # a monitoring poll never queues behind a long apply
        if name is not None:
            with self._checkout(name) as workspace:
                payload["workspace"] = workspace.stats_payload()
        else:
            payload["per_workspace"] = [workspace.stats_payload()
                                        for workspace in workspaces]
        if self._fleet is not None:
            per_worker = self._fleet.stats()
            payload["fleet"] = {"workers": self.workers,
                                "respawns": self._fleet.respawns,
                                "per_worker": per_worker,
                                "aggregate": _aggregate_worker_stats(
                                    per_worker)}
        return payload

    def metrics(self) -> dict:
        """The process-wide metrics registry: the JSON snapshot, per-phase
        timing summaries, and the rendered Prometheus text — the ``metrics``
        wire verb and the daemon's HTTP ``/metrics`` endpoint both read
        this one surface."""
        return {"enabled": _obs.enabled(),
                "snapshot": _obs.REGISTRY.snapshot(),
                "phases": _obs.phase_summaries(),
                "prometheus": _obs.REGISTRY.render_prometheus()}

    def _metrics_collector(self):
        """Service-level gauges/counters for the registry: workspace table
        shape, the shared memo and tree store.  A collector (polled at
        scrape time) so the request hot path pays nothing."""
        with self._lock:
            workspaces = len(self._workspaces)
            requests = self.requests_total
            evictions = self.evictions
        yield ("repro_service_workspaces", "gauge",
               "Warm workspaces currently held", {}, float(workspaces))
        yield ("repro_service_requests_total", "counter",
               "Requests the service has handled", {}, float(requests))
        yield ("repro_service_evictions_total", "counter",
               "Workspaces evicted LRU", {}, float(evictions))
        for key, value in self.memo.counters().items():
            if isinstance(value, (int, float)) and key != "max_entries":
                kind = "gauge" if key == "entries" else "counter"
                yield (f"repro_service_memo_{key}", kind,
                       "Shared transform-memo counter", {}, float(value))
        for key, value in self.tree_store.counters().items():
            if isinstance(value, (int, float)) and key != "max_entries":
                kind = "gauge" if key == "entries" else "counter"
                yield (f"repro_service_tree_store_{key}", kind,
                       "Shared parse-tree store counter", {}, float(value))

    def ping(self) -> dict:
        return {"protocol": PROTOCOL_VERSION, "pid": os.getpid()}

    def close(self) -> None:
        """Stop watcher threads, the fleet, and drop all workspaces
        (daemon shutdown)."""
        with self._lock:
            workspaces = list(self._workspaces.values())
            self._workspaces.clear()
        for workspace in workspaces:
            workspace.close()
            self._release_workspace_specs(workspace)
        if self._fleet is not None:
            self._fleet.close()
        _obs.REGISTRY.unregister_collector(self._collector)

    # -- memo GC -------------------------------------------------------------

    def prune_memo(self, max_bytes: Optional[int] = None,
                   max_age: Optional[float] = None) -> dict:
        """Run the memo disk-tier GC now (defaults to the configured
        policy); returns the prune summary."""
        return self.memo.prune(
            max_bytes=self.memo_max_bytes if max_bytes is None else max_bytes,
            max_age=self.memo_max_age if max_age is None else max_age)

    def _maybe_prune_memo(self) -> None:
        """Opportunistic GC: every 64 stored applies, prune the memo
        directory to the configured policy on a background thread (at most
        one prune in flight — an apply must never wait on a directory
        walk)."""
        if self.memo_max_bytes is None and self.memo_max_age is None:
            return
        with self._lock:
            self._applies_since_prune += 1
            if self._applies_since_prune < 64:
                return
            self._applies_since_prune = 0
        if not self._prune_pending.acquire(blocking=False):
            return

        def prune() -> None:
            try:
                self.prune_memo()
            finally:
                self._prune_pending.release()

        threading.Thread(target=prune, name="memo-prune",
                         daemon=True).start()

    # -- patch building ------------------------------------------------------

    def _build_patches(self, workspace: Workspace, specs: Sequence[dict],
                       options: Optional[SpatchOptions],
                       ) -> list[SemanticPatch]:
        """The ordered patch list a request's wire specs name, cached per
        workspace by spec identity (kind, name, content hash, options) so
        steady-state requests skip SMPL re-parsing.  Guarded by the
        workspace's dedicated spec-cache lock, not the workspace lock —
        the lock-free query path builds patches too."""
        if not specs:
            raise ServiceError("bad-request", "no patches given")
        built: list[SemanticPatch] = []
        options_key = repr(options)
        for spec in specs:
            key = spec_key(spec, options_key)
            with workspace._patches_lock:
                cached = workspace._patches.get(key)
                if cached is not None:
                    workspace._patches.move_to_end(key)
            if cached is None:
                # parse outside the lock (SMPL parsing is the slow part);
                # two racing queries may both parse — last writer wins and
                # the loser's refcount is released, so the books balance
                cached = tuple(self._parse_spec(spec, options))
                self._retain_compiled(cached)
                overflow = []
                with workspace._patches_lock:
                    previous = workspace._patches.get(key)
                    if previous is not None:
                        overflow.append(cached)
                        cached = previous
                    else:
                        workspace._patches[key] = cached
                        while len(workspace._patches) > \
                                MAX_CACHED_PATCH_SPECS:
                            # an evicted spec's compiled matchers would only
                            # be rebuilt on a cache miss anyway; the drop is
                            # refcounted service-wide, so another workspace
                            # whose cached spec shares the fingerprint keeps
                            # the compiled form hot
                            overflow.append(
                                workspace._patches.popitem(last=False)[1])
                for evicted in overflow:
                    self._release_compiled(evicted)
            built.extend(cached)
        return built

    def _retain_compiled(self, patches: Sequence[SemanticPatch]) -> None:
        """Pin the compiled-cache keys of one freshly cached spec's patches
        (one reference per live spec-cache entry holding them)."""
        from ..engine.compile import compile_key

        with self._compile_lock:
            for patch in patches:
                key = compile_key(patch.ast, patch.options)
                self._compile_refs[key] = self._compile_refs.get(key, 0) + 1

    def _release_compiled(self, patches: Sequence[SemanticPatch]) -> None:
        """Unpin one evicted spec's patches; a compiled form is only evicted
        from the global cache when no workspace's spec cache holds its
        fingerprint any more."""
        from ..engine.compile import compile_key, evict_compiled

        for patch in patches:
            key = compile_key(patch.ast, patch.options)
            with self._compile_lock:
                remaining = self._compile_refs.get(key, 0) - 1
                if remaining > 0:
                    self._compile_refs[key] = remaining
                    continue
                self._compile_refs.pop(key, None)
                last_holder = remaining == 0
            if last_holder:
                evict_compiled(patch.ast, patch.options)

    def _release_workspace_specs(self, workspace: Workspace) -> None:
        """Unpin everything a dying workspace's spec cache holds (LRU
        eviction and shutdown), letting now-orphaned compiled forms go."""
        with workspace._patches_lock:
            cached_specs = list(workspace._patches.values())
            workspace._patches.clear()
        for cached in cached_specs:
            self._release_compiled(cached)

    @staticmethod
    def _parse_spec(spec: dict, options: Optional[SpatchOptions],
                    ) -> list[SemanticPatch]:
        from ..cookbook import builders

        kind = spec["kind"]
        if kind == "smpl" or kind in FRONTEND_WIRE_KINDS:
            # the error message is the same one-line file:line diagnostic
            # the in-process CLI prints (patch_error_line over the spec's
            # name), so a --server run fails byte-identically to a local one
            name = spec.get("name", f"<{kind}>")
            try:
                return [SemanticPatch.from_text(
                    spec["text"], options=options, name=name,
                    format=kind)]
            except Exception as exc:
                raise ServiceError("bad-patch",
                                   patch_error_line(name, exc)) from None
        name = spec.get("name")
        if name == FULL_PIPELINE:
            from ..cookbook import full_modernization_pipeline

            return list(full_modernization_pipeline())
        table = builders()
        if name not in table:
            raise ServiceError("bad-patch",
                               f"unknown cookbook patch {name!r}")
        return [table[name]()]
