"""``spatchd``: a persistent patch-application service.

A cold ``repro-spatch`` invocation pays full start-up on every run —
re-parsing SMPL, rebuilding token indexes, re-parsing every source file —
and the warm state the incremental layers build
(:class:`~repro.engine.cache.TreeCache`,
:class:`~repro.engine.incremental.IncrementalPipeline` splicing,
:class:`~repro.engine.incremental.PipelineState`) dies with the process.
This package keeps it alive instead, the way editor tooling keeps a
language server warm rather than re-running a batch compiler:

* :mod:`~repro.server.service` — the framework-free, thread-safe core:
  named **workspaces** (code base + parse cache + token index + last
  result) with per-workspace locking and LRU eviction;
* :mod:`~repro.server.protocol` — newline-delimited JSON framing and the
  result serialization shared with ``repro-spatch --json``;
* :mod:`~repro.server.daemon` — the ``socketserver``-based listener
  (``repro-spatchd``; unix-domain or TCP);
* :mod:`~repro.server.client` — :class:`RemoteClient`, backing
  ``repro-spatch --server ADDR``;
* :mod:`~repro.server.watch` — filesystem-watching backends (``watchdog``
  when importable, Linux inotify via ``ctypes``/``selectors``, portable
  polling fallback) used by ``--watch`` and workspace auto-refresh.

Everything imports only the Python standard library; ``watchdog`` is
feature-detected, never required.
"""

from .client import ConnectionLost, RemoteClient, RemoteError
from .daemon import PatchDaemon, serve
from .protocol import (PROTOCOL_VERSION, RESULT_SCHEMA, ProtocolError,
                       exit_status, parse_address, patch_specs,
                       profile_payload, result_payload)
from .service import PatchService, ServiceError, Workspace
from .watch import BACKENDS, create_watcher

__all__ = [
    "ConnectionLost", "RemoteClient", "RemoteError",
    "PatchDaemon", "serve",
    "PROTOCOL_VERSION", "RESULT_SCHEMA", "ProtocolError", "exit_status",
    "parse_address", "patch_specs", "profile_payload", "result_payload",
    "PatchService", "ServiceError", "Workspace",
    "BACKENDS", "create_watcher",
]
