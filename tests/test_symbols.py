"""Tests for the symbol table builder."""

from repro.lang.parser import parse_source
from repro.lang.symbols import build_symbol_table


CODE = """\
#define NP 256

struct particle { double pos[3]; double mass; int type; };
typedef struct { double re, im; } cplx;
typedef double real8;

struct particle P[NP];
double rho[16][16][16];
static int counter = 0;
cplx spectrum[64];

double kernel_sum(const struct particle *p, int n);

double kernel_sum(const struct particle *p, int n) {
    double acc = 0.0;
    int idx = 0;
    for (idx = 0; idx < n; idx++) acc += p[idx].mass;
    return acc;
}

__attribute__((target("avx2")))
double kernel_sum_avx2(const struct particle *p, int n) {
    return 0.0;
}
"""


def table():
    return build_symbol_table(parse_source(CODE, "sym.c"))


class TestStructs:
    def test_struct_fields(self):
        info = table().structs["particle"]
        assert info.field_names() == ["pos", "mass", "type"]
        assert info.field_type("mass") == "double"
        assert info.field_dims("pos") == 1
        assert info.field_extents["pos"] == ["3"]

    def test_typedef_struct_registered(self):
        t = table()
        assert t.typedefs["cplx"] == "cplx"
        assert "cplx" in t.structs

    def test_plain_typedef(self):
        assert table().typedefs["real8"] == "double"


class TestGlobals:
    def test_global_arrays(self):
        t = table()
        assert t.globals["P"].is_array
        assert t.globals["P"].element_struct == "particle"
        assert len(t.globals["rho"].array_dims) == 3

    def test_scalar_global(self):
        assert not table().globals["counter"].is_array

    def test_arrays_of_struct(self):
        arrays = table().arrays_of_struct("particle")
        assert [a.name for a in arrays] == ["P"]

    def test_struct_for_type_through_typedef(self):
        t = table()
        assert t.struct_for_type("cplx") is t.structs["cplx"]
        assert t.struct_for_type("struct particle").name == "particle"
        assert t.struct_for_type("double") is None


class TestFunctions:
    def test_definition_wins_over_prototype(self):
        info = table().functions["kernel_sum"]
        assert info.has_body
        assert info.params[0][1] == "p"

    def test_attributes_recorded(self):
        info = table().functions["kernel_sum_avx2"]
        assert info.attributes == ["target"]

    def test_functions_matching_regex(self):
        matches = table().functions_matching("kernel")
        assert {f.name for f in matches} == {"kernel_sum", "kernel_sum_avx2"}

    def test_locals(self):
        t = table()
        local_names = [v.name for v in t.locals["kernel_sum"]]
        assert "acc" in local_names and "idx" in local_names
        assert all(not v.is_global for v in t.locals["kernel_sum"])

    def test_all_variables_iterates_globals_and_locals(self):
        names = [v.name for v in table().all_variables()]
        assert "P" in names and "acc" in names
