"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro import CodeBase, apply_patch, workloads
from repro.engine.edits import EditSet, PLACE_NEWLINE_AFTER
from repro.eval import Interpreter
from repro.lang import ast_nodes as A
from repro.lang.lexer import TokenKind, tokenize
from repro.lang.parser import parse_source
from repro.lang.printer import to_source
from repro.lang.source import SourceFile


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in {"if", "else", "for", "while", "do", "int", "return",
                        "break", "continue", "double", "void", "const", "bool"})

numbers = st.integers(min_value=0, max_value=999).map(str)


@st.composite
def arith_exprs(draw, depth=2):
    if depth == 0:
        return draw(st.one_of(identifiers, numbers))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arith_exprs(depth=depth - 1))
    right = draw(arith_exprs(depth=depth - 1))
    if draw(st.booleans()):
        return f"({left} {op} {right})"
    return f"{left} {op} {right}"


@st.composite
def simple_functions(draw):
    """A tiny numeric function: declarations, a loop, arithmetic."""
    fname = draw(identifiers)
    var = draw(identifiers.filter(lambda s: s != fname))
    bound = draw(st.integers(min_value=1, max_value=8))
    coeff = draw(st.integers(min_value=1, max_value=9))
    op = draw(st.sampled_from(["+", "*"]))
    return (f"double {fname}(double seed) {{\n"
            f"    double acc = seed;\n"
            f"    for (int {var} = 0; {var} < {bound}; ++{var}) {{\n"
            f"        acc = acc {op} {coeff} + {var};\n"
            f"    }}\n"
            f"    return acc;\n"
            f"}}\n"), fname


# ---------------------------------------------------------------------------
# lexer / parser / printer invariants
# ---------------------------------------------------------------------------

class TestFrontEndProperties:
    @given(arith_exprs())
    @settings(max_examples=60, deadline=None)
    def test_lexer_concatenation_of_token_extents_is_lossless(self, expr):
        text = f"int f(void) {{ return {expr}; }}"
        toks = tokenize(text)
        rebuilt = "".join(text[t.offset:t.end] for t in toks if t.kind is not TokenKind.EOF)
        assert rebuilt.replace(" ", "") == text.replace(" ", "")

    @given(arith_exprs())
    @settings(max_examples=60, deadline=None)
    def test_parse_extents_cover_expression(self, expr):
        text = f"int f(void) {{ return {expr}; }}"
        tree = parse_source(text, "p.c")
        ret = tree.unit.decls[0].body.stmts[0]
        assert tree.node_text(ret.value).replace(" ", "") == expr.replace(" ", "")

    @given(simple_functions())
    @settings(max_examples=30, deadline=None)
    def test_print_reparse_fixpoint(self, fn_and_name):
        code, _ = fn_and_name
        tree = parse_source(code, "p.c")
        printed = to_source(tree.unit)
        reparsed = parse_source(printed, "p2.c")
        assert [type(n).__name__ for n in A.walk(tree.unit)] == \
            [type(n).__name__ for n in A.walk(reparsed.unit)]

    @given(simple_functions(), st.floats(min_value=-5, max_value=5,
                                         allow_nan=False, allow_infinity=False))
    @settings(max_examples=30, deadline=None)
    def test_printer_preserves_interpreted_behaviour(self, fn_and_name, seed):
        code, fname = fn_and_name
        printed = to_source(parse_source(code, "p.c").unit)
        assert Interpreter(code).call(fname, seed) == \
            Interpreter(printed).call(fname, seed)


# ---------------------------------------------------------------------------
# edit-set invariants
# ---------------------------------------------------------------------------

class TestEditProperties:
    @given(st.text(alphabet="abc d;\n", min_size=5, max_size=60),
           st.data())
    @settings(max_examples=60, deadline=None)
    def test_disjoint_deletions_remove_exactly_their_bytes(self, text, data):
        n = len(text)
        start1 = data.draw(st.integers(min_value=0, max_value=n - 1))
        end1 = data.draw(st.integers(min_value=start1 + 1, max_value=n))
        edits = EditSet(source=SourceFile(name="x", text=text))
        edits.delete(start1, end1)
        result = edits.apply()
        # everything outside the deleted range (modulo whole-line cleanup of
        # the emptied lines) is preserved in order
        survivors = [c for c in (text[:start1] + text[end1:]) if not c.isspace()]
        kept = [c for c in result if not c.isspace()]
        assert kept == survivors

    @given(st.lists(st.text(alphabet="xyz", min_size=1, max_size=5), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_insertions_appear_in_output(self, lines):
        text = "int a;\nint b;\n"
        edits = EditSet(source=SourceFile(name="x", text=text))
        edits.insert(6, lines, placement=PLACE_NEWLINE_AFTER)
        out = edits.apply()
        for line in lines:
            assert line in out
        assert out.startswith("int a;") and out.endswith("int b;\n")


# ---------------------------------------------------------------------------
# engine invariants
# ---------------------------------------------------------------------------

class TestEngineProperties:
    @given(st.lists(identifiers, min_size=1, max_size=4, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_pure_match_patch_never_edits(self, names):
        code = "void f(void) { " + " ".join(f"{n}(1);" for n in names) + " }\n"
        patch = "@r@\nidentifier g;\nexpression list el;\n@@\ng(el)\n"
        result = apply_patch(patch, code)
        assert result.text == code

    @given(identifiers, identifiers)
    @settings(max_examples=30, deadline=None)
    def test_rename_patch_renames_all_and_only_call_sites(self, old, new):
        if old == new:
            return
        code = (f"void caller(void) {{ {old}(1); other_{old}(2); {old}(3); }}\n"
                f'void strings(void) {{ log("{old}()"); }}\n')
        # uppercase metavariable: the identifiers strategy only generates
        # lowercase-led names, so old/new can never collide with it
        patch = (f"@r@\nexpression list EL;\n@@\n- {old}(EL)\n+ {new}(EL)\n")
        result = apply_patch(patch, code)
        assert f"{new}(1)" in result.text and f"{new}(3)" in result.text
        assert f"other_{old}(2)" in result.text          # longer identifier untouched
        assert f'log("{old}()")' in result.text           # string literal untouched
        assert not re.search(rf"\b{old}\(1\)", result.text)

    # -- parse -> print round-trip stability over every workload generator ---

    WORKLOAD_GENERATORS = {
        "cuda_app": lambda seed: workloads.cuda_app.generate(
            n_files=1, seed=seed),
        "gadget": lambda seed: workloads.gadget.generate(
            n_files=1, loops_per_file=2, grid_kernels_per_file=2, seed=seed),
        "kokkos_exercise": lambda seed: workloads.kokkos_exercise.generate(
            n_files=1, seed=seed),
        "librsb_like": lambda seed: workloads.librsb_like.generate(
            n_files=1, seed=seed),
        "multiversion_app": lambda seed: workloads.multiversion_app.generate(
            n_files=1, clone_sets_per_file=2, seed=seed),
        "openacc_app": lambda seed: workloads.openacc_app.generate(
            n_files=1, loops_per_file=2, seed=seed),
        "openmp_kernels": lambda seed: workloads.openmp_kernels.generate(
            n_files=1, kernels_per_file=2, regions_per_file=2, seed=seed),
        "rawloops": lambda seed: workloads.rawloops.generate(
            n_files=1, searches_per_file=2, counters_per_file=1, seed=seed),
        "unrolled": lambda seed: workloads.unrolled.generate(
            n_files=1, unrolled_per_file=1, impostors_per_file=1, seed=seed),
    }

    @pytest.mark.parametrize("workload", sorted(WORKLOAD_GENERATORS))
    @given(seed=st.integers(min_value=0, max_value=5))
    @settings(max_examples=4, deadline=None)
    def test_workload_parse_print_round_trip_is_stable(self, workload, seed):
        """On every generated workload: printing a parse tree yields source
        that re-parses to the same node structure, and printing is a fixpoint
        (print(parse(print(parse(x)))) == print(parse(x)))."""
        from repro.options import SpatchOptions

        codebase = self.WORKLOAD_GENERATORS[workload](seed)
        options = SpatchOptions(cxx=17) if workload == "kokkos_exercise" \
            else SpatchOptions()
        for name, text in codebase.items():
            tree = parse_source(text, name, options=options)
            printed = to_source(tree.unit)
            reparsed = parse_source(printed, name, options=options)
            assert [type(n).__name__ for n in A.walk(tree.unit)] == \
                [type(n).__name__ for n in A.walk(reparsed.unit)], (workload, name)
            assert to_source(reparsed.unit) == printed, (workload, name)

    # -- cookbook idempotence ------------------------------------------------

    @pytest.mark.parametrize("cookbook_name", [
        "likwid_instrumentation", "declare_variant", "target_multiversioning",
        "bloat_removal", "reroll_p0", "reroll_p1r1", "mdspan_multiindex",
        "cuda_to_hip", "acc_to_omp", "raw_loop_to_find", "kokkos_lambda",
        "gcc_workaround"])
    def test_cookbook_patches_are_idempotent(self, cookbook_name):
        """Re-applying a cookbook patch to its own output is a no-op: no file
        changes and zero new matches from any transforming rule (pure-match
        guard rules may fire — that is *how* the insertion patches detect
        already-modernized files and stand down)."""
        from test_prefilter import COOKBOOK_WORKLOADS, _cookbook_patch

        workload = COOKBOOK_WORKLOADS[cookbook_name]()
        patch = _cookbook_patch(cookbook_name)
        first = patch.apply(workload)
        assert first.total_matches > 0  # the pairing is meaningful
        once = CodeBase(files={name: fr.text
                               for name, fr in first.files.items()})
        again = patch.apply(once)
        assert not again.changed_files, \
            f"{cookbook_name}: re-application edited " \
            f"{[fr.filename for fr in again.changed_files]}"
        transforming = [rule.name for rule in patch.ast.patch_rules()
                        if not rule.is_pure_match]
        re_matches = {rule: again.matches_of(rule) for rule in transforming
                      if again.matches_of(rule)}
        assert not re_matches, \
            f"{cookbook_name}: transforming rules re-matched: {re_matches}"

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_unroll_removal_equivalence_random_kernels(self, factor, seed):
        from repro.cookbook import unrolling
        from repro.eval import compare_function
        from repro.workloads import unrolled

        codebase = unrolled.generate(n_files=1, unrolled_per_file=1, impostors_per_file=0,
                                     plain_per_file=0, factor=factor, seed=seed)
        transformed = unrolling.reroll_patch_p1_r1(factor=factor).transform(codebase)
        name = [f for f in Interpreter(codebase).function_names()
                if f.startswith("unrolled_op_")][0]
        n = 4 * factor

        def args():
            return ([0.0] * n, [float(i) for i in range(n)], 1.5, 0.5, n)

        report = compare_function(codebase, transformed, name, args, observed_args=(0,))
        assert report.all_equivalent, (report.mismatches, report.errors)
