"""Tests for repro.lang.source (SourceFile, Location)."""

import pytest

from repro.lang.source import Location, SourceFile


@pytest.fixture
def src() -> SourceFile:
    return SourceFile(name="demo.c", text="int a;\n  double b = 1.0;\n\n// c\nint d;\n")


class TestLineQueries:
    def test_num_lines(self, src):
        assert src.num_lines == 5

    def test_line_text(self, src):
        assert src.line_text(1) == "int a;"
        assert src.line_text(2) == "  double b = 1.0;"
        assert src.line_text(3) == ""
        assert src.line_text(5) == "int d;"

    def test_lines_iterator(self, src):
        assert list(src.lines()) == ["int a;", "  double b = 1.0;", "", "// c", "int d;"]

    def test_line_start_end(self, src):
        assert src.line_start(1) == 0
        assert src.line_end(1) == 6
        assert src.text[src.line_start(2):src.line_end(2)] == "  double b = 1.0;"

    def test_empty_file(self):
        empty = SourceFile(name="e.c", text="")
        assert empty.num_lines == 0
        assert empty.count_loc() == 0


class TestLocations:
    def test_location_round_trip(self, src):
        loc = src.location(9)
        assert loc.line == 2
        assert loc.col == 2
        assert src.offset(loc.line, loc.col) == 9

    def test_location_at_start(self, src):
        loc = src.location(0)
        assert (loc.line, loc.col) == (1, 0)

    def test_location_clamped(self, src):
        loc = src.location(10_000)
        assert loc.offset == len(src.text)

    def test_location_ordering(self):
        a = Location(line=1, col=3, offset=3, filename="x.c")
        b = Location(line=2, col=0, offset=10, filename="x.c")
        assert a < b

    def test_str(self, src):
        assert str(src.location(0)) == "demo.c:1:0"


class TestIndentation:
    def test_indentation_of_line(self, src):
        assert src.indentation_of_line(2) == "  "
        assert src.indentation_of_line(1) == ""

    def test_indentation_at_offset(self, src):
        offset = src.offset(2, 5)
        assert src.indentation_at(offset) == "  "


class TestLoc:
    def test_count_loc_skips_blank_and_comments(self, src):
        assert src.count_loc() == 3

    def test_count_loc_block_comments(self):
        text = "/* a\n b\n c */\nint x;\nint y; /* trailing */\n"
        assert SourceFile(name="b.c", text=text).count_loc() == 2

    def test_slice(self, src):
        assert src.slice(0, 3) == "int"
        assert src.slice(-5, 3) == "int"
