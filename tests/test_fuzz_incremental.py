"""Randomized edit-script differential fuzzer for incremental application.

Every hand-written incremental test checks one scenario; this file checks
*sequences*.  A seeded RNG generates an edit script — random tree edits
(change / add / delete / touch) interleaved with patch-list edits (append /
drop / reorder / modify-SMPL) — and replays it as an edit-apply loop where
each step's result seeds the next step's ``since=``.  After every step the
incremental result must be **byte-identical** to a cold run over the same
tree and patch list: texts, per-rule reports (combined and per patch),
coverage stats, exit codes and reuse records, across prefilter on/off ×
jobs 1/4.  The chaining matters: a step may exercise whole-set splicing,
prefix splicing with suffix replay, per-file demotion or a cold fallback,
and any state a previous step corrupted would surface here.

Every step additionally re-runs with the **transform memo** enabled — a
fresh :class:`~repro.engine.memo.TransformMemo` instance over one on-disk
directory shared by the *whole* sweep (every seed, step and configuration
writes and reads the same entry files, like fleet processes sharing a
cache dir).  Each such run exercises both tiers — cold memory tier warm
disk tier on entry, promote-to-memory plus duplicate-content hits within
the step — and must be byte-identical to the cold run: if the memo key
(content hash, patch fingerprint, mode flags) ever under-discriminated,
cross-seed or cross-config contamination would surface here as a
differential failure.  ``REPRO_FUZZ_MEMO_DIR`` pins the directory (the CI
smoke/nightly jobs do; default: a per-test temporary directory).

The patch pool is a rename lattice — ``{token}_{g}() -> {token}_{g+1}()``
— so patches compose into order-sensitive chains (a reorder or a dropped
middle patch genuinely changes the output, not just the bookkeeping).

Seed control:

* default (PR CI / local runs): a quick ``SMOKE_SEEDS``-seed sweep per
  configuration;
* ``REPRO_FUZZ_SECONDS=N``: keep consuming seeds until the time budget is
  spent (the nightly job's mode) — the budget is split across the four
  configurations.

On failure the offending seed (and the op sequence it generated) is
printed so the case can be replayed locally::

    REPRO_FUZZ_SEED=<seed> PYTHONPATH=src python -m pytest \
        tests/test_fuzz_incremental.py -k jobs1
"""

import os
import random
import time

import pytest

from repro import CodeBase, PatchSet, SemanticPatch

from test_incremental import assert_results_identical

#: the rename lattice the random patch lists draw from
TOKENS = ("alpha", "beta", "gamma", "delta")
#: generations per token (a patch rewrites generation g to g+1)
GENERATIONS = 3

#: edit steps per seed (each step = one mutation + one differential check)
STEPS_PER_SEED = 5
#: seeds per configuration in the default quick sweep; 10 is the smallest
#: range whose scripts collectively reach every op (checked by
#: test_fuzz_ops_all_reachable — 5 seeds never generate an ``add``)
SMOKE_SEEDS = 10

#: nightly mode: spend this many seconds sweeping seeds (0 = quick sweep)
FUZZ_SECONDS = float(os.environ.get("REPRO_FUZZ_SECONDS", "0") or 0)
#: replay hook: run exactly this seed (printed by a failing sweep)
FUZZ_SEED = os.environ.get("REPRO_FUZZ_SEED")
#: pin the shared memo directory (CI does; default: per-test tmp dir)
FUZZ_MEMO_DIR = os.environ.get("REPRO_FUZZ_MEMO_DIR")

CONFIGS = [(True, 1), (False, 1), (True, 4), (False, 4)]
CONFIG_IDS = [f"prefilter_{'on' if p else 'off'}-jobs{j}" for p, j in CONFIGS]


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------

def _patch_text(token: str, gen: int) -> str:
    return (f"@r_{token}_{gen}@ @@\n"
            f"- {token}_{gen}();\n"
            f"+ {token}_{gen + 1}();\n")


def _build_patchset(descs: list[tuple[str, int]]) -> PatchSet:
    return PatchSet([SemanticPatch.from_string(_patch_text(token, gen),
                                               name=f"{token}{gen}")
                     for token, gen in descs])


def _new_file(rng: random.Random, index: int) -> str:
    calls = "\n".join(
        f"    {rng.choice(TOKENS)}_{rng.randrange(GENERATIONS)}();"
        for _ in range(rng.randrange(1, 5)))
    return f"void fn_{index}(void) {{\n{calls}\n}}\n"


def _init_case(rng: random.Random,
               ) -> tuple[dict[str, str], list[tuple[str, int]]]:
    """One seed's starting tree and patch list (shared by the differential
    loop and the reachability meta-check so the two cannot drift)."""
    files = {f"f{index}.c": _new_file(rng, index)
             for index in range(rng.randrange(2, 5))}
    descs = [(rng.choice(TOKENS), rng.randrange(GENERATIONS))
             for _ in range(rng.randrange(1, 4))]
    return files, descs


def _mutate(rng: random.Random, files: dict[str, str],
            descs: list[tuple[str, int]], step: int) -> str:
    """One random edit-script step, applied in place; returns the op name."""
    ops = ["change", "add", "touch", "append", "modify"]
    if len(files) > 1:
        ops.append("delete")
    if len(descs) > 1:
        ops.extend(["drop", "reorder"])
    op = rng.choice(ops)
    if op == "change":
        name = rng.choice(sorted(files))
        token = rng.choice(TOKENS)
        files[name] += (f"\nvoid probe_{step}(void) {{\n"
                        f"    {token}_{rng.randrange(GENERATIONS)}();\n}}\n")
    elif op == "add":
        files[f"added_{step}.c"] = _new_file(rng, 100 + step)
    elif op == "delete":
        del files[rng.choice(sorted(files))]
    elif op == "touch":
        name = rng.choice(sorted(files))
        files[name] = files[name][:]  # content-identical rewrite
    elif op == "append":
        descs.append((rng.choice(TOKENS), rng.randrange(GENERATIONS)))
    elif op == "drop":
        descs.pop(rng.randrange(len(descs)))
    elif op == "reorder":
        i, j = rng.sample(range(len(descs)), 2)
        descs[i], descs[j] = descs[j], descs[i]
    elif op == "modify":
        index = rng.randrange(len(descs))
        token, gen = descs[index]
        descs[index] = (token, (gen + 1) % GENERATIONS)
    return op


# ---------------------------------------------------------------------------
# the differential loop
# ---------------------------------------------------------------------------

def _run_fuzz_case(seed: int, prefilter: bool, jobs: int,
                   memo_dir: str) -> None:
    from repro.engine.memo import TransformMemo
    from repro.server.protocol import exit_status

    rng = random.Random(seed)
    files, descs = _init_case(rng)
    history: list[str] = []
    result = None
    for step in range(STEPS_PER_SEED):
        history.append(_mutate(rng, files, descs, step))
        patchset = _build_patchset(descs)
        cold = patchset.apply(CodeBase.from_files(dict(files)),
                              jobs=jobs, prefilter=prefilter)
        incremental = patchset.apply(CodeBase.from_files(dict(files)),
                                     jobs=jobs, prefilter=prefilter,
                                     since=result)
        # a fresh memo instance per step = a fresh process warm-starting
        # from the sweep-shared disk tier (memory tier fills within the run)
        memo = TransformMemo(path=memo_dir)
        memoized = patchset.apply(CodeBase.from_files(dict(files)),
                                  jobs=jobs, prefilter=prefilter, memo=memo)
        try:
            # a None since (first step) is a plain cold run, no wrapper
            assert (incremental.incremental is not None) == (result is not None)
            context = f"seed={seed} step={step} ops={history} descs={descs}"
            assert_results_identical(incremental, cold, context)
            assert_results_identical(memoized, cold, "memo " + context)
            patches = list(patchset)
            assert exit_status(memoized, patches) \
                == exit_status(incremental, patches) \
                == exit_status(cold, patches), context
        except AssertionError:
            print(f"\nFUZZ FAILURE: seed={seed} prefilter={prefilter} "
                  f"jobs={jobs} step={step} ops={history} descs={descs}\n"
                  f"replay: REPRO_FUZZ_SEED={seed} PYTHONPATH=src "
                  f"python -m pytest tests/test_fuzz_incremental.py")
            raise
        result = incremental


@pytest.mark.parametrize("prefilter,jobs", CONFIGS, ids=CONFIG_IDS)
def test_fuzz_edit_scripts(prefilter, jobs, tmp_path):
    memo_dir = FUZZ_MEMO_DIR or str(tmp_path / "memo")
    if FUZZ_SEED is not None:
        _run_fuzz_case(int(FUZZ_SEED), prefilter, jobs, memo_dir)
        return
    if FUZZ_SECONDS > 0:
        deadline = time.monotonic() + FUZZ_SECONDS / len(CONFIGS)
        seed = 0
        while time.monotonic() < deadline:
            _run_fuzz_case(seed, prefilter, jobs, memo_dir)
            seed += 1
        assert seed >= SMOKE_SEEDS, \
            f"budget {FUZZ_SECONDS}s too small to beat the quick sweep"
        print(f"\nfuzz({CONFIG_IDS[CONFIGS.index((prefilter, jobs))]}): "
              f"{seed} seeds x {STEPS_PER_SEED} steps within budget")
    else:
        for seed in range(SMOKE_SEEDS):
            _run_fuzz_case(seed, prefilter, jobs, memo_dir)


def test_fuzz_ops_all_reachable():
    """Meta-check: the quick sweep's seeds collectively exercise *every* op
    — a sweep that never adds a file (or never reorders patches) would
    silently stop covering that incremental path in PR CI."""
    seen: set[str] = set()
    for seed in range(SMOKE_SEEDS):
        rng = random.Random(seed)
        files, descs = _init_case(rng)
        for step in range(STEPS_PER_SEED):
            seen.add(_mutate(rng, files, descs, step))
    assert {"append", "drop", "reorder", "modify",
            "change", "add", "delete", "touch"} <= seen, seen
